"""DVFS-aware power modeling — beyond the paper's fixed frequency.

The paper's machine ran at one operating point, so its Equation-1
coefficients silently embed the frequency and voltage.  A governor that
actually *uses* the estimates to drive DVFS (the adaptation the paper
motivates) changes the operating point under the model's feet, and a
nominal-trained suite then misestimates badly: per-cycle features
shrink with frequency but the coefficients don't know the voltage
dropped too.

Two remedies are provided, mirroring the design space of the follow-up
literature:

* :class:`DvfsSuiteBank` — one suite per operating point, trained from
  runs captured at that p-state, selected at estimation time.  Exact
  but needs per-state calibration runs.
* :func:`train_frequency_aware_cpu_model` — a single CPU model over
  rate-per-second features (which carry the operating point, no new
  hardware event), trained on runs pooled across states.

The measured outcome of the comparison (see
``benchmarks/bench_dvfs_models.py``) is itself a finding: within the
paper's cross-term-free polynomial family, a single model cannot
separate "activity" from "operating point" — dynamic power is
``V(f)^2 * f * activity``, a *product* the family cannot express — so
the frequency-aware model lands at ~10-20 % CPU error where the
per-state bank stays under ~1 %.  That is the quantitative reason
per-state calibration became standard practice in the follow-up
literature.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.events import Subsystem
from repro.core.features import FeatureSet
from repro.core.models import PolynomialModel
from repro.core.suite import TrickleDownSuite
from repro.core.traces import CounterTrace, MeasuredRun, concat_runs
from repro.core.training import ModelTrainer


class DvfsModelingError(ValueError):
    """Raised for inconsistent DVFS modeling inputs."""


class DvfsSuiteBank:
    """Per-operating-point trickle-down suites.

    The bank maps a p-state index to the suite trained at that point;
    estimation dispatches on the machine's current state (which a
    governor knows, having set it).
    """

    def __init__(self, suites: "Mapping[int, TrickleDownSuite]") -> None:
        if not suites:
            raise DvfsModelingError("bank needs at least one suite")
        self.suites = dict(suites)

    @property
    def pstates(self) -> "tuple[int, ...]":
        return tuple(sorted(self.suites))

    def suite_for(self, pstate: int) -> TrickleDownSuite:
        try:
            return self.suites[pstate]
        except KeyError:
            raise DvfsModelingError(
                f"no suite trained for p-state {pstate}; have {self.pstates}"
            ) from None

    def predict_total(self, pstate: int, trace: CounterTrace) -> np.ndarray:
        return self.suite_for(pstate).predict_total(trace)

    @classmethod
    def train(
        cls,
        runs_per_state: "Mapping[int, Mapping[str, MeasuredRun]]",
        trainer: "ModelTrainer | None" = None,
    ) -> "DvfsSuiteBank":
        """Fit one suite per p-state from per-state training runs."""
        trainer = trainer or ModelTrainer()
        return cls(
            {
                int(pstate): trainer.train(dict(runs))
                for pstate, runs in runs_per_state.items()
            }
        )


def train_frequency_aware_cpu_model(
    runs: "list[MeasuredRun]",
) -> PolynomialModel:
    """One CPU model valid across operating points.

    Training data must pool runs from *different* p-states (otherwise
    the frequency information is constant and unidentifiable).  Expect
    an order of magnitude more error than a per-state bank: the model
    family has no cross terms, and DVFS power is a product of state and
    activity.
    """
    if len(runs) < 2:
        raise DvfsModelingError(
            "need runs from at least two operating points"
        )
    pstates = {run.metadata.get("pstate", 0) for run in runs}
    if len(pstates) < 2:
        raise DvfsModelingError(
            "all runs share one p-state; the frequency term is "
            "unidentifiable — capture training runs at different points"
        )
    pooled = concat_runs(list(runs))
    # Rates per *second* (not per cycle) carry the operating point:
    # dynamic power ~ V^2 f x activity, and V tracks f on the ladder,
    # so a quadratic in active-GHz and uop throughput fits across
    # states without observing the voltage.
    features = FeatureSet.of("active_clock_ghz", "guops_per_second")
    return PolynomialModel.fit(
        features,
        2,
        pooled.counters,
        pooled.power.power(Subsystem.CPU),
    )
