"""Per-cycle feature construction from counter traces.

The paper normalises every event count by the cycle count of its window
("this corrects for slight differences in sampling rate", Section 3.3)
and sums per-CPU terms across the SMP.  Features here follow that
convention: a feature maps a :class:`~repro.core.traces.CounterTrace`
to one value per sample, computed as the sum over CPUs of the per-CPU
per-cycle (or per-million-cycle) rate.

Features declare which events they consume so the training pipeline can
enforce trickle-down purity: a model for the paper's methodology may
only use CPU-visible events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.events import Event, TRICKLE_DOWN_EVENTS
from repro.core.traces import CounterTrace

#: Scale used for rare events, as in the paper's Equation 3
#: (transactions per million cycles keeps coefficients readable).
PER_MCYCLE = 1.0e6


@dataclass(frozen=True)
class Feature:
    """A named mapping from a counter trace to one value per sample."""

    name: str
    events: "tuple[Event, ...]"
    compute: Callable[[CounterTrace], np.ndarray]

    @property
    def is_trickle_down(self) -> bool:
        """True if every consumed event is CPU-visible."""
        return all(event in TRICKLE_DOWN_EVENTS for event in self.events)

    def __call__(self, trace: CounterTrace) -> np.ndarray:
        values = np.asarray(self.compute(trace), dtype=float)
        if values.shape != (trace.n_samples,):
            raise ValueError(
                f"feature {self.name!r} returned shape {values.shape}, "
                f"expected ({trace.n_samples},)"
            )
        return values


def _per_cycle_sum(trace: CounterTrace, event: Event, scale: float) -> np.ndarray:
    """Sum over CPUs of (event count / cycle count) * scale."""
    cycles = trace.per_cpu(Event.CYCLES)
    counts = trace.per_cpu(event)
    return (counts / cycles).sum(axis=1) * scale


def per_cycle(event: Event, scale: float = 1.0, name: str | None = None) -> Feature:
    """Feature: sum over CPUs of event occurrences per cycle."""
    feature_name = name or f"{event.value}_per_cycle"
    if scale == PER_MCYCLE:
        feature_name = name or f"{event.value}_per_mcycle"
    return Feature(
        name=feature_name,
        events=(event, Event.CYCLES),
        compute=lambda trace, e=event, s=scale: _per_cycle_sum(trace, e, s),
    )


def active_fraction() -> Feature:
    """Sum over CPUs of the non-halted cycle fraction (0..NumCPUs).

    This is the paper's ``PercentActive_i`` summed over processors
    (Equation 1).
    """

    def compute(trace: CounterTrace) -> np.ndarray:
        cycles = trace.per_cpu(Event.CYCLES)
        halted = trace.per_cpu(Event.HALTED_CYCLES)
        return (1.0 - halted / cycles).sum(axis=1)

    return Feature(
        name="active_fraction",
        events=(Event.CYCLES, Event.HALTED_CYCLES),
        compute=compute,
    )


def clock_ghz() -> Feature:
    """Sum over CPUs of observed clock frequency (GHz).

    Frequency is directly observable from the cycles counter and the
    window duration, so a DVFS-aware model may use it without any new
    hardware event — the key to modeling across operating points.
    """

    def compute(trace: CounterTrace) -> np.ndarray:
        cycles = trace.per_cpu(Event.CYCLES)
        return (cycles / trace.durations[:, None]).sum(axis=1) / 1.0e9

    return Feature(
        name="clock_ghz",
        events=(Event.CYCLES,),
        compute=compute,
    )


def active_clock_ghz() -> Feature:
    """Sum over CPUs of (active fraction x clock GHz).

    The physically meaningful DVFS regressor: un-gated cycles per
    second.  Dynamic power is ~ V^2 f x activity, and on a realistic
    ladder V falls with f, so a quadratic in this feature tracks power
    across operating points.
    """

    def compute(trace: CounterTrace) -> np.ndarray:
        cycles = trace.per_cpu(Event.CYCLES)
        halted = trace.per_cpu(Event.HALTED_CYCLES)
        active_cycles_per_s = (cycles - halted) / trace.durations[:, None]
        return active_cycles_per_s.sum(axis=1) / 1.0e9

    return Feature(
        name="active_clock_ghz",
        events=(Event.CYCLES, Event.HALTED_CYCLES),
        compute=compute,
    )


def guops_per_second() -> Feature:
    """Sum over CPUs of fetched uops per second (in billions).

    Unlike uops *per cycle*, this rate scales down with DVFS, carrying
    the frequency information a cross-state model needs.
    """

    def compute(trace: CounterTrace) -> np.ndarray:
        uops = trace.per_cpu(Event.FETCHED_UOPS)
        return (uops / trace.durations[:, None]).sum(axis=1) / 1.0e9

    return Feature(
        name="guops_per_second",
        events=(Event.FETCHED_UOPS,),
        compute=compute,
    )


def rate(event: Event, name: str | None = None) -> Feature:
    """Feature: system-wide events per second (wall-clock rate)."""
    return Feature(
        name=name or f"{event.value}_per_s",
        events=(event,),
        compute=lambda trace, e=event: trace.rate(e),
    )


#: The feature vocabulary of the paper's Section 3.3, ready to use.
PAPER_FEATURES: "dict[str, Feature]" = {
    feature.name: feature
    for feature in (
        active_fraction(),
        clock_ghz(),
        active_clock_ghz(),
        guops_per_second(),
        per_cycle(Event.FETCHED_UOPS),
        per_cycle(Event.L3_MISSES, PER_MCYCLE),
        per_cycle(Event.TLB_MISSES, PER_MCYCLE),
        per_cycle(Event.BUS_TRANSACTIONS, PER_MCYCLE),
        per_cycle(Event.DMA_ACCESSES, PER_MCYCLE),
        per_cycle(Event.UNCACHEABLE_ACCESSES, PER_MCYCLE),
        per_cycle(Event.INTERRUPTS, PER_MCYCLE),
        per_cycle(Event.DISK_INTERRUPTS, PER_MCYCLE),
        per_cycle(Event.NETWORK_INTERRUPTS, PER_MCYCLE),
    )
}


def get_feature(name: str) -> Feature:
    """Look up a paper feature by name (KeyError lists options)."""
    try:
        return PAPER_FEATURES[name]
    except KeyError:
        raise KeyError(
            f"unknown feature {name!r}; available: "
            + ", ".join(sorted(PAPER_FEATURES))
        ) from None


class FeatureSet:
    """An ordered collection of features forming a design space."""

    def __init__(self, features: "list[Feature] | tuple[Feature, ...]") -> None:
        if not features:
            raise ValueError("a feature set needs at least one feature")
        names = [f.name for f in features]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate feature names: {names}")
        self.features = tuple(features)

    @classmethod
    def of(cls, *names: str) -> "FeatureSet":
        return cls([get_feature(name) for name in names])

    @property
    def names(self) -> "tuple[str, ...]":
        return tuple(f.name for f in self.features)

    @property
    def is_trickle_down(self) -> bool:
        return all(f.is_trickle_down for f in self.features)

    def __len__(self) -> int:
        return len(self.features)

    def __iter__(self):
        return iter(self.features)

    def matrix(self, trace: CounterTrace) -> np.ndarray:
        """Raw feature matrix, shape ``(n_samples, n_features)``."""
        return np.column_stack([feature(trace) for feature in self.features])
