"""Least-squares fitting for the paper's model forms.

The paper restricts itself to regression forms cheap enough for runtime
use: linear models first, single- or multi-input quadratics when linear
accuracy is insufficient (Section 3.3.1).  Quadratics expand each input
to (x, x^2) without cross terms, exactly the shape of Equations 2-5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class RegressionError(ValueError):
    """Raised when a regression cannot be performed."""


@dataclass(frozen=True)
class FitDiagnostics:
    """Quality measures of a fitted model on its training data."""

    r_squared: float
    avg_abs_error_pct: float
    rmse_w: float
    n_samples: int
    condition_number: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"R^2={self.r_squared:.4f}, avg|err|={self.avg_abs_error_pct:.2f}%, "
            f"RMSE={self.rmse_w:.3f}W, n={self.n_samples}"
        )


def polynomial_design(raw: np.ndarray, degree: int) -> np.ndarray:
    """Expand raw features to a design matrix with intercept.

    Columns: [1, x1, x2, ..., x1^2, x2^2, ...] up to ``degree`` (no
    cross terms, matching the paper's quadratics).
    """
    raw = np.asarray(raw, dtype=float)
    if raw.ndim != 2:
        raise RegressionError("raw feature matrix must be 2-D")
    if degree < 0:
        raise RegressionError("degree must be >= 0")
    n = raw.shape[0]
    columns = [np.ones(n)]
    for power in range(1, degree + 1):
        columns.append(raw**power)
    if degree == 0:
        return np.ones((n, 1))
    return np.column_stack(columns)


def fit_least_squares(
    design: np.ndarray, target: np.ndarray
) -> "tuple[np.ndarray, FitDiagnostics]":
    """Ordinary least squares with diagnostics.

    Raises :class:`RegressionError` for degenerate problems (too few
    samples, non-finite values).
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    if design.ndim != 2 or target.ndim != 1:
        raise RegressionError("design must be 2-D and target 1-D")
    n, p = design.shape
    if target.shape[0] != n:
        raise RegressionError("design and target lengths differ")
    if n < p:
        raise RegressionError(f"need at least {p} samples to fit {p} parameters")
    if not (np.all(np.isfinite(design)) and np.all(np.isfinite(target))):
        raise RegressionError("non-finite values in regression inputs")

    coeffs, _, _, singular_values = np.linalg.lstsq(design, target, rcond=None)
    predicted = design @ coeffs
    residual = target - predicted
    total_var = float(np.sum((target - target.mean()) ** 2))
    r_squared = 1.0 - float(np.sum(residual**2)) / total_var if total_var > 0 else 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(residual) / np.abs(target)
    rel = rel[np.isfinite(rel)]
    avg_abs_error_pct = float(rel.mean() * 100.0) if rel.size else 0.0
    smin = float(singular_values.min()) if singular_values.size else 0.0
    condition = float(singular_values.max() / smin) if smin > 0 else np.inf
    diagnostics = FitDiagnostics(
        r_squared=r_squared,
        avg_abs_error_pct=avg_abs_error_pct,
        rmse_w=float(np.sqrt(np.mean(residual**2))),
        n_samples=n,
        condition_number=condition,
    )
    return coeffs, diagnostics
