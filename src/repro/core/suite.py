"""A complete set of fitted subsystem models.

The suite is the paper's deliverable: five models that together
estimate complete-system power from six processor-visible performance
events, with no power-sensing hardware in the loop.
"""

from __future__ import annotations

import json
from typing import Mapping

import numpy as np

from repro.core.events import SUBSYSTEMS, Subsystem
from repro.core.models import SubsystemPowerModel
from repro.core.traces import CounterTrace


class TrickleDownSuite:
    """Per-subsystem power models plus total-system estimation."""

    def __init__(
        self,
        models: "Mapping[Subsystem, SubsystemPowerModel]",
        recipe_name: str = "custom",
    ) -> None:
        if not models:
            raise ValueError("suite needs at least one subsystem model")
        self.models = dict(models)
        self.recipe_name = recipe_name

    @property
    def subsystems(self) -> "tuple[Subsystem, ...]":
        return tuple(s for s in SUBSYSTEMS if s in self.models)

    def model(self, subsystem: Subsystem) -> SubsystemPowerModel:
        try:
            return self.models[subsystem]
        except KeyError:
            raise KeyError(
                f"suite has no model for {subsystem}; has: "
                + ", ".join(str(s) for s in self.subsystems)
            ) from None

    def predict(self, subsystem: Subsystem, trace: CounterTrace) -> np.ndarray:
        """Predicted power of one subsystem per sample (Watts)."""
        return self.model(subsystem).predict(trace)

    def predict_all(self, trace: CounterTrace) -> "dict[Subsystem, np.ndarray]":
        """Predicted power of every modelled subsystem."""
        return {s: self.models[s].predict(trace) for s in self.subsystems}

    def predict_total(self, trace: CounterTrace) -> np.ndarray:
        """Complete-system power estimate per sample (Watts)."""
        return np.sum(list(self.predict_all(trace).values()), axis=0)

    def describe(self) -> str:
        """All model equations, paper style."""
        lines = [f"Trickle-down suite (recipe: {self.recipe_name})"]
        for subsystem in self.subsystems:
            lines.append(f"  {subsystem.value:>8}: {self.models[subsystem].describe()}")
        return "\n".join(lines)

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "recipe": self.recipe_name,
            "models": {s.value: m.to_dict() for s, m in self.models.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrickleDownSuite":
        return cls(
            models={
                Subsystem(name): SubsystemPowerModel.from_dict(model)
                for name, model in data["models"].items()
            },
            recipe_name=data.get("recipe", "custom"),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "TrickleDownSuite":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
