"""A complete set of fitted subsystem models.

The suite is the paper's deliverable: five models that together
estimate complete-system power from six processor-visible performance
events, with no power-sensing hardware in the loop.
"""

from __future__ import annotations

import json
from typing import Mapping

import numpy as np

from repro.core.events import SUBSYSTEMS, Subsystem
from repro.core.models import ConstantModel, PolynomialModel, SubsystemPowerModel
from repro.core.traces import CounterTrace


class _CompiledSuite:
    """A suite flattened to one shared design matrix.

    Evaluating model-by-model rebuilds per-model feature and design
    matrices from the same trace; the compiled form computes each
    distinct feature once, assembles a single design matrix
    ``[1, x1..xF, xj^2 ...]`` and evaluates every subsystem in one
    matrix product against a stacked coefficient matrix (zero where a
    subsystem does not use a column).  Attribution reuses the same
    design columns, so enabling it costs one multiply per term instead
    of a second design build per model.
    """

    def __init__(self, suite: "TrickleDownSuite") -> None:
        self.subsystems = suite.subsystems
        features: list = []  # distinct Feature objects, first-use order
        index: "dict[str, int]" = {}  # feature name -> position in features
        squared: "list[int]" = []  # feature positions needing a ^2 column
        sq_index: "dict[int, int]" = {}
        for subsystem in self.subsystems:
            model = suite.models[subsystem]
            if not isinstance(model, PolynomialModel):
                continue
            for feature in model.features:
                if feature.name not in index:
                    index[feature.name] = len(features)
                    features.append(feature)
                if model.degree >= 2:
                    position = index[feature.name]
                    if position not in sq_index:
                        sq_index[position] = len(squared)
                        squared.append(position)
        self.features = tuple(features)
        self._squared = np.asarray(squared, dtype=int)
        n_columns = 1 + len(features) + len(squared)
        coefficients = np.zeros((n_columns, len(self.subsystems)))
        terms: "list[list[tuple[str, int, float]]]" = []
        for j, subsystem in enumerate(self.subsystems):
            model = suite.models[subsystem]
            if isinstance(model, ConstantModel):
                coefficients[0, j] = model.value
                terms.append([("constant", 0, model.value)])
                continue
            coefficients[0, j] = float(model.coefficients[0])
            model_terms = [("intercept", 0, float(model.coefficients[0]))]
            k = 1
            for power in range(1, model.degree + 1):
                for feature in model.features:
                    position = index[feature.name]
                    column = (
                        1 + position
                        if power == 1
                        else 1 + len(features) + sq_index[position]
                    )
                    coefficient = float(model.coefficients[k])
                    coefficients[column, j] = coefficient
                    name = (
                        feature.name if power == 1 else f"{feature.name}^{power}"
                    )
                    model_terms.append((name, column, coefficient))
                    k += 1
            terms.append(model_terms)
        self.coefficients = coefficients
        self._terms = terms

    def evaluate(
        self, trace: CounterTrace, attribute: bool = False
    ) -> "tuple[dict[Subsystem, np.ndarray], dict[Subsystem, dict[str, np.ndarray]] | None]":
        columns = [np.ones(trace.n_samples)]
        if self.features:
            raw = np.column_stack([feature(trace) for feature in self.features])
            columns.append(raw)
            if self._squared.size:
                columns.append(raw[:, self._squared] ** 2)
        design = np.column_stack(columns)
        # Accumulate term-by-term instead of `design @ coefficients`:
        # BLAS kernels change accumulation order with the batch shape,
        # so the same sample can round differently inside a large batch
        # than alone.  Elementwise multiply-add is per-element
        # deterministic at any length, which keeps per-row results
        # independent of how a stream is framed — the streaming
        # service's bit-identity guarantee (tests/test_serve.py).  Each
        # subsystem touches only its own few nonzero terms, so this is
        # no more work than the dense product it replaces.
        predictions: "dict[Subsystem, np.ndarray]" = {}
        for j, s in enumerate(self.subsystems):
            acc: "np.ndarray | None" = None
            for _name, column, coefficient in self._terms[j]:
                term = design[:, column] * coefficient
                acc = term if acc is None else acc + term
            predictions[s] = acc
        if not attribute:
            return predictions, None
        terms = {
            s: {
                name: design[:, column] * coefficient
                for name, column, coefficient in self._terms[j]
            }
            for j, s in enumerate(self.subsystems)
        }
        return predictions, terms


class TrickleDownSuite:
    """Per-subsystem power models plus total-system estimation."""

    def __init__(
        self,
        models: "Mapping[Subsystem, SubsystemPowerModel]",
        recipe_name: str = "custom",
    ) -> None:
        if not models:
            raise ValueError("suite needs at least one subsystem model")
        self.models = dict(models)
        self.recipe_name = recipe_name

    @property
    def subsystems(self) -> "tuple[Subsystem, ...]":
        return tuple(s for s in SUBSYSTEMS if s in self.models)

    def model(self, subsystem: Subsystem) -> SubsystemPowerModel:
        try:
            return self.models[subsystem]
        except KeyError:
            raise KeyError(
                f"suite has no model for {subsystem}; has: "
                + ", ".join(str(s) for s in self.subsystems)
            ) from None

    def predict(self, subsystem: Subsystem, trace: CounterTrace) -> np.ndarray:
        """Predicted power of one subsystem per sample (Watts)."""
        return self.model(subsystem).predict(trace)

    def predict_all(self, trace: CounterTrace) -> "dict[Subsystem, np.ndarray]":
        """Predicted power of every modelled subsystem."""
        return self.evaluate(trace)[0]

    def evaluate(
        self, trace: CounterTrace, attribute: bool = False
    ) -> "tuple[dict[Subsystem, np.ndarray], dict[Subsystem, dict[str, np.ndarray]] | None]":
        """Batched per-subsystem prediction, optionally with attribution.

        One shared design-matrix pass evaluates every model at once
        (each distinct feature computed a single time, one matrix
        product for all subsystems); ``attribute=True`` additionally
        returns the per-term watt decomposition from the same design
        columns.  Returns ``(predictions, terms)`` with ``terms`` of
        the :meth:`attribute_all` shape, or ``None`` when not
        requested.  Model kinds the compiler does not recognise fall
        back to per-model evaluation.
        """
        compiled = self._compiled()
        if compiled is not None:
            return compiled.evaluate(trace, attribute=attribute)
        predictions = {s: self.models[s].predict(trace) for s in self.subsystems}
        return predictions, (self.attribute_all(trace) if attribute else None)

    def _compiled(self) -> "_CompiledSuite | None":
        """Lazily built batched evaluator (``None`` for unknown kinds).

        Models are treated as frozen once the first prediction runs; a
        fitted suite is immutable in practice (:meth:`scaled` returns a
        copy rather than editing coefficients in place).
        """
        try:
            return self._compiled_cache
        except AttributeError:
            pass
        if all(
            type(model) in (ConstantModel, PolynomialModel)
            for model in self.models.values()
        ):
            self._compiled_cache: "_CompiledSuite | None" = _CompiledSuite(self)
        else:
            self._compiled_cache = None
        return self._compiled_cache

    def predict_total(self, trace: CounterTrace) -> np.ndarray:
        """Complete-system power estimate per sample (Watts)."""
        return np.sum(list(self.predict_all(trace).values()), axis=0)

    def attribute(
        self, subsystem: Subsystem, trace: CounterTrace
    ) -> "dict[str, np.ndarray]":
        """One subsystem's per-term watt decomposition (per sample)."""
        return self.model(subsystem).attribute(trace)

    def attribute_all(
        self, trace: CounterTrace
    ) -> "dict[Subsystem, dict[str, np.ndarray]]":
        """Per-term watt decomposition of every modelled subsystem.

        For each subsystem the term arrays sum exactly to
        :meth:`predict` — the estimate rearranged by *which counter
        term carries the watts*, the question the paper's Section 5
        mcf diagnosis answers.
        """
        return {s: self.models[s].attribute(trace) for s in self.subsystems}

    def scaled(
        self,
        factor: float,
        subsystems: "tuple[Subsystem, ...] | None" = None,
    ) -> "TrickleDownSuite":
        """A copy with every coefficient of the chosen models scaled.

        A deliberately mis-calibrated suite: scaling all coefficients
        by ``factor`` scales each model's prediction by ``factor``,
        i.e. a uniform ``(factor - 1) * 100`` % error against the
        machine it was fitted on.  Used to inject drift for testing the
        online monitor (``repro-power monitor --perturb``) without
        touching the stored calibration.
        """
        if not np.isfinite(factor):
            raise ValueError("scale factor must be finite")
        chosen = set(self.subsystems if subsystems is None else subsystems)
        models = {}
        for subsystem, model in self.models.items():
            data = model.to_dict()
            if subsystem in chosen:
                if data.get("kind") == "constant":
                    data["value"] = data["value"] * factor
                elif data.get("kind") == "polynomial":
                    data["coefficients"] = [
                        c * factor for c in data["coefficients"]
                    ]
                else:  # pragma: no cover - future model kinds
                    raise ValueError(
                        f"cannot scale model kind {data.get('kind')!r}"
                    )
            models[subsystem] = SubsystemPowerModel.from_dict(data)
        return TrickleDownSuite(models, recipe_name=f"{self.recipe_name}*{factor:g}")

    def describe(self) -> str:
        """All model equations, paper style."""
        lines = [f"Trickle-down suite (recipe: {self.recipe_name})"]
        for subsystem in self.subsystems:
            lines.append(f"  {subsystem.value:>8}: {self.models[subsystem].describe()}")
        return "\n".join(lines)

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "recipe": self.recipe_name,
            "models": {s.value: m.to_dict() for s, m in self.models.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrickleDownSuite":
        return cls(
            models={
                Subsystem(name): SubsystemPowerModel.from_dict(model)
                for name, model in data["models"].items()
            },
            recipe_name=data.get("recipe", "custom"),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "TrickleDownSuite":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
