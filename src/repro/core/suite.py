"""A complete set of fitted subsystem models.

The suite is the paper's deliverable: five models that together
estimate complete-system power from six processor-visible performance
events, with no power-sensing hardware in the loop.
"""

from __future__ import annotations

import json
from typing import Mapping

import numpy as np

from repro.core.events import SUBSYSTEMS, Subsystem
from repro.core.models import SubsystemPowerModel
from repro.core.traces import CounterTrace


class TrickleDownSuite:
    """Per-subsystem power models plus total-system estimation."""

    def __init__(
        self,
        models: "Mapping[Subsystem, SubsystemPowerModel]",
        recipe_name: str = "custom",
    ) -> None:
        if not models:
            raise ValueError("suite needs at least one subsystem model")
        self.models = dict(models)
        self.recipe_name = recipe_name

    @property
    def subsystems(self) -> "tuple[Subsystem, ...]":
        return tuple(s for s in SUBSYSTEMS if s in self.models)

    def model(self, subsystem: Subsystem) -> SubsystemPowerModel:
        try:
            return self.models[subsystem]
        except KeyError:
            raise KeyError(
                f"suite has no model for {subsystem}; has: "
                + ", ".join(str(s) for s in self.subsystems)
            ) from None

    def predict(self, subsystem: Subsystem, trace: CounterTrace) -> np.ndarray:
        """Predicted power of one subsystem per sample (Watts)."""
        return self.model(subsystem).predict(trace)

    def predict_all(self, trace: CounterTrace) -> "dict[Subsystem, np.ndarray]":
        """Predicted power of every modelled subsystem."""
        return {s: self.models[s].predict(trace) for s in self.subsystems}

    def predict_total(self, trace: CounterTrace) -> np.ndarray:
        """Complete-system power estimate per sample (Watts)."""
        return np.sum(list(self.predict_all(trace).values()), axis=0)

    def attribute(
        self, subsystem: Subsystem, trace: CounterTrace
    ) -> "dict[str, np.ndarray]":
        """One subsystem's per-term watt decomposition (per sample)."""
        return self.model(subsystem).attribute(trace)

    def attribute_all(
        self, trace: CounterTrace
    ) -> "dict[Subsystem, dict[str, np.ndarray]]":
        """Per-term watt decomposition of every modelled subsystem.

        For each subsystem the term arrays sum exactly to
        :meth:`predict` — the estimate rearranged by *which counter
        term carries the watts*, the question the paper's Section 5
        mcf diagnosis answers.
        """
        return {s: self.models[s].attribute(trace) for s in self.subsystems}

    def scaled(
        self,
        factor: float,
        subsystems: "tuple[Subsystem, ...] | None" = None,
    ) -> "TrickleDownSuite":
        """A copy with every coefficient of the chosen models scaled.

        A deliberately mis-calibrated suite: scaling all coefficients
        by ``factor`` scales each model's prediction by ``factor``,
        i.e. a uniform ``(factor - 1) * 100`` % error against the
        machine it was fitted on.  Used to inject drift for testing the
        online monitor (``repro-power monitor --perturb``) without
        touching the stored calibration.
        """
        if not np.isfinite(factor):
            raise ValueError("scale factor must be finite")
        chosen = set(self.subsystems if subsystems is None else subsystems)
        models = {}
        for subsystem, model in self.models.items():
            data = model.to_dict()
            if subsystem in chosen:
                if data.get("kind") == "constant":
                    data["value"] = data["value"] * factor
                elif data.get("kind") == "polynomial":
                    data["coefficients"] = [
                        c * factor for c in data["coefficients"]
                    ]
                else:  # pragma: no cover - future model kinds
                    raise ValueError(
                        f"cannot scale model kind {data.get('kind')!r}"
                    )
            models[subsystem] = SubsystemPowerModel.from_dict(data)
        return TrickleDownSuite(models, recipe_name=f"{self.recipe_name}*{factor:g}")

    def describe(self) -> str:
        """All model equations, paper style."""
        lines = [f"Trickle-down suite (recipe: {self.recipe_name})"]
        for subsystem in self.subsystems:
            lines.append(f"  {subsystem.value:>8}: {self.models[subsystem].describe()}")
        return "\n".join(lines)

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "recipe": self.recipe_name,
            "models": {s.value: m.to_dict() for s, m in self.models.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrickleDownSuite":
        return cls(
            models={
                Subsystem(name): SubsystemPowerModel.from_dict(model)
                for name, model in data["models"].items()
            },
            recipe_name=data.get("recipe", "custom"),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "TrickleDownSuite":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
