"""The paper's training recipe.

Section 3.2.2: each subsystem model is trained on *one* workload trace
chosen for high utilisation and variation of that subsystem, then
validated on the full workload set.  The recipe object captures the
paper's final event selection (Section 4.2):

=========  =====================================  ==========  =========
Subsystem  Features                               Form        Train on
=========  =====================================  ==========  =========
CPU        active fraction, fetched uops/cycle    linear      gcc
Memory     bus transactions/Mcycle                quadratic   mcf
Disk       disk interrupts/Mcycle, DMA/Mcycle     quadratic   DiskLoad
I/O        interrupts/Mcycle                      quadratic   DiskLoad
Chipset    (none)                                 constant    idle
=========  =====================================  ==========  =========

The rejected intermediate — the L3-miss memory model of Equation 2,
which works on mesa and fails on mcf — is provided as
``L3_MEMORY_RECIPE`` for the ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic as _monotonic

from repro import obs
from repro.core.events import Subsystem
from repro.core.features import FeatureSet
from repro.core.models import ConstantModel, PolynomialModel, SubsystemPowerModel
from repro.core.suite import TrickleDownSuite
from repro.core.traces import MeasuredRun


class TrainingError(ValueError):
    """Raised when training inputs do not match the recipe."""


@dataclass(frozen=True)
class ModelSpec:
    """How to build one subsystem's model."""

    subsystem: Subsystem
    form: str  # "constant" | "linear" | "quadratic"
    feature_names: "tuple[str, ...]"
    train_workload: str

    def __post_init__(self) -> None:
        if self.form not in ("constant", "linear", "quadratic"):
            raise ValueError(f"unknown model form {self.form!r}")
        if self.form != "constant" and not self.feature_names:
            raise ValueError(f"{self.form} model needs features")


@dataclass(frozen=True)
class TrainingRecipe:
    """A full per-subsystem training prescription."""

    name: str
    specs: "tuple[ModelSpec, ...]" = field(default_factory=tuple)

    def __post_init__(self) -> None:
        subsystems = [spec.subsystem for spec in self.specs]
        if len(set(subsystems)) != len(subsystems):
            raise ValueError("recipe has duplicate subsystem specs")

    def spec_for(self, subsystem: Subsystem) -> ModelSpec:
        for spec in self.specs:
            if spec.subsystem is subsystem:
                return spec
        raise KeyError(f"recipe {self.name!r} has no spec for {subsystem}")

    @property
    def training_workloads(self) -> "tuple[str, ...]":
        """Distinct workloads the recipe needs traces for."""
        return tuple(dict.fromkeys(spec.train_workload for spec in self.specs))


#: The paper's final models (Equations 1, 3, 4, 5 + constant chipset).
PAPER_RECIPE = TrainingRecipe(
    name="paper",
    specs=(
        ModelSpec(
            Subsystem.CPU,
            "linear",
            ("active_fraction", "fetched_uops_per_cycle"),
            "gcc",
        ),
        ModelSpec(
            Subsystem.MEMORY,
            "quadratic",
            ("bus_transactions_per_mcycle",),
            "mcf",
        ),
        ModelSpec(
            Subsystem.DISK,
            "quadratic",
            ("disk_interrupts_per_mcycle", "dma_accesses_per_mcycle"),
            "DiskLoad",
        ),
        ModelSpec(
            Subsystem.IO,
            "quadratic",
            ("interrupts_per_mcycle",),
            "DiskLoad",
        ),
        ModelSpec(Subsystem.CHIPSET, "constant", (), "idle"),
    ),
)

#: The rejected L3-miss memory model (Equation 2): trained on mesa,
#: fails under mcf — reproduced as an ablation.
L3_MEMORY_RECIPE = TrainingRecipe(
    name="l3-memory",
    specs=(
        ModelSpec(
            Subsystem.MEMORY,
            "quadratic",
            ("l3_misses_per_mcycle",),
            "mesa",
        ),
    ),
)


class ModelTrainer:
    """Fits a recipe against a set of training runs."""

    def __init__(self, recipe: TrainingRecipe = PAPER_RECIPE) -> None:
        self.recipe = recipe

    def train_one(self, spec: ModelSpec, run: MeasuredRun) -> SubsystemPowerModel:
        """Fit one subsystem model from one training run."""
        measured = run.power.power(spec.subsystem)
        if spec.form == "constant":
            return ConstantModel.fit(run.counters, measured)
        features = FeatureSet.of(*spec.feature_names)
        if not features.is_trickle_down:
            raise TrainingError(
                f"{spec.subsystem} model uses subsystem-local events; "
                "trickle-down models may only use CPU-visible counters"
            )
        degree = 1 if spec.form == "linear" else 2
        return PolynomialModel.fit(features, degree, run.counters, measured)

    def train(self, runs: "dict[str, MeasuredRun]") -> TrickleDownSuite:
        """Fit every subsystem model; ``runs`` maps workload name to
        its training trace (extra entries are ignored)."""
        models: "dict[Subsystem, SubsystemPowerModel]" = {}
        for spec in self.recipe.specs:
            try:
                run = runs[spec.train_workload]
            except KeyError:
                raise TrainingError(
                    f"recipe {self.recipe.name!r} needs a training run of "
                    f"{spec.train_workload!r} for the {spec.subsystem} model; "
                    f"got runs for: {', '.join(sorted(runs)) or 'none'}"
                ) from None
            with obs.span(
                "train.fit",
                subsystem=spec.subsystem.value,
                workload=spec.train_workload,
                form=spec.form,
            ):
                t0 = _monotonic()
                models[spec.subsystem] = self.train_one(spec, run)
                if obs.enabled():
                    reg = obs.registry()
                    reg.observe(
                        "model_fit_seconds",
                        _monotonic() - t0,
                        {"subsystem": spec.subsystem.value},
                    )
                    reg.inc(
                        "models_trained_total",
                        1.0,
                        {"subsystem": spec.subsystem.value},
                    )
        return TrickleDownSuite(models, recipe_name=self.recipe.name)
