"""Subsystem power models: constant, linear, quadratic, multi-input.

Model objects are pure functions of a counter trace once fitted; they
carry their feature set and coefficients and can be serialised, printed
in the paper's equation style, and composed into a
:class:`~repro.core.suite.TrickleDownSuite`.
"""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np

from repro.core.features import FeatureSet, get_feature
from repro.core.regression import (
    FitDiagnostics,
    RegressionError,
    fit_least_squares,
    polynomial_design,
)
from repro.core.traces import CounterTrace


class SubsystemPowerModel(abc.ABC):
    """Predicts one subsystem's power from performance counters."""

    @abc.abstractmethod
    def predict(self, trace: CounterTrace) -> np.ndarray:
        """Predicted power per sample (Watts)."""

    @abc.abstractmethod
    def attribute(self, trace: CounterTrace) -> "dict[str, np.ndarray]":
        """Per-term watt contributions, one array per sample.

        Terms are the model's additive pieces (intercept, each linear
        and quadratic counter term); their sum equals :meth:`predict`
        exactly — the decomposition is how a miss gets diagnosed (the
        paper's mcf analysis, Section 5).
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable equation, in the paper's style."""

    @abc.abstractmethod
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""

    @property
    @abc.abstractmethod
    def n_parameters(self) -> int:
        """Fitted parameter count (model complexity)."""

    @staticmethod
    def from_dict(data: Mapping) -> "SubsystemPowerModel":
        kind = data.get("kind")
        if kind == "constant":
            return ConstantModel(float(data["value"]))
        if kind == "polynomial":
            return PolynomialModel(
                features=FeatureSet.of(*data["features"]),
                degree=int(data["degree"]),
                coefficients=np.asarray(data["coefficients"], dtype=float),
            )
        raise ValueError(f"unknown model kind {kind!r}")


class ConstantModel(SubsystemPowerModel):
    """The paper's chipset model: a fitted constant (Section 4.2.5)."""

    def __init__(self, value: float) -> None:
        if not np.isfinite(value):
            raise ValueError("constant model value must be finite")
        self.value = float(value)

    @property
    def n_parameters(self) -> int:
        return 1

    def predict(self, trace: CounterTrace) -> np.ndarray:
        return np.full(trace.n_samples, self.value)

    def attribute(self, trace: CounterTrace) -> "dict[str, np.ndarray]":
        return {"constant": np.full(trace.n_samples, self.value)}

    def describe(self) -> str:
        return f"P = {self.value:.2f} W (constant)"

    def to_dict(self) -> dict:
        return {"kind": "constant", "value": self.value}

    @classmethod
    def fit(cls, trace: CounterTrace, power: np.ndarray) -> "ConstantModel":
        power = np.asarray(power, dtype=float)
        if power.shape != (trace.n_samples,):
            raise RegressionError("power series length must match the trace")
        return cls(float(power.mean()))


class PolynomialModel(SubsystemPowerModel):
    """Linear (degree 1) or quadratic (degree 2) model without cross
    terms — the shape of the paper's Equations 1-5.

    Coefficient layout: ``[intercept, linear..., quadratic...]`` in
    feature order.
    """

    def __init__(
        self,
        features: FeatureSet,
        degree: int,
        coefficients: np.ndarray,
        diagnostics: FitDiagnostics | None = None,
    ) -> None:
        if degree not in (1, 2):
            raise ValueError("degree must be 1 (linear) or 2 (quadratic)")
        expected = 1 + degree * len(features)
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (expected,):
            raise ValueError(
                f"expected {expected} coefficients for degree {degree} with "
                f"{len(features)} features; got {coefficients.shape}"
            )
        self.features = features
        self.degree = degree
        self.coefficients = coefficients
        self.diagnostics = diagnostics

    @property
    def n_parameters(self) -> int:
        return len(self.coefficients)

    @property
    def intercept(self) -> float:
        return float(self.coefficients[0])

    def predict(self, trace: CounterTrace) -> np.ndarray:
        design = polynomial_design(self.features.matrix(trace), self.degree)
        return design @ self.coefficients

    @property
    def term_names(self) -> "tuple[str, ...]":
        """Term labels matching the coefficient layout (and
        :meth:`describe`): intercept, then each feature per power."""
        names = ["intercept"]
        for power in range(1, self.degree + 1):
            for name in self.features.names:
                names.append(name if power == 1 else f"{name}^{power}")
        return tuple(names)

    def attribute(self, trace: CounterTrace) -> "dict[str, np.ndarray]":
        design = polynomial_design(self.features.matrix(trace), self.degree)
        return {
            name: design[:, k] * self.coefficients[k]
            for k, name in enumerate(self.term_names)
        }

    def describe(self) -> str:
        terms = [f"{self.intercept:.3g}"]
        k = 1
        for power in range(1, self.degree + 1):
            for name in self.features.names:
                coeff = self.coefficients[k]
                variable = name if power == 1 else f"{name}^{power}"
                sign = "+" if coeff >= 0 else "-"
                terms.append(f"{sign} {abs(coeff):.3g}*{variable}")
                k += 1
        return "P = " + " ".join(terms)

    def to_dict(self) -> dict:
        return {
            "kind": "polynomial",
            "features": list(self.features.names),
            "degree": self.degree,
            "coefficients": self.coefficients.tolist(),
        }

    @classmethod
    def fit(
        cls,
        features: FeatureSet,
        degree: int,
        trace: CounterTrace,
        power: np.ndarray,
    ) -> "PolynomialModel":
        """Least-squares fit of the model to one training trace."""
        power = np.asarray(power, dtype=float)
        if power.shape != (trace.n_samples,):
            raise RegressionError("power series length must match the trace")
        design = polynomial_design(features.matrix(trace), degree)
        coefficients, diagnostics = fit_least_squares(design, power)
        return cls(features, degree, coefficients, diagnostics)


def linear_model(trace: CounterTrace, power: np.ndarray, *names: str) -> PolynomialModel:
    """Convenience: fit a linear model on named paper features."""
    return PolynomialModel.fit(FeatureSet.of(*names), 1, trace, power)


def quadratic_model(
    trace: CounterTrace, power: np.ndarray, *names: str
) -> PolynomialModel:
    """Convenience: fit a quadratic model on named paper features."""
    return PolynomialModel.fit(FeatureSet.of(*names), 2, trace, power)


__all__ = [
    "SubsystemPowerModel",
    "ConstantModel",
    "PolynomialModel",
    "linear_model",
    "quadratic_model",
    "get_feature",
]
