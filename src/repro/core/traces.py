"""Trace containers: counter samples, power samples, measured runs.

A *sample* corresponds to one counter-sampling window (nominally one
second of execution, ~1.5 billion instructions per processor).  Counter
counts are per-CPU totals over the window and are cleared at each read;
power values are the average of all DAQ samples in the window, aligned
to the counter windows via the synchronisation pulse.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.core.events import Event, Subsystem


class TraceError(ValueError):
    """Raised for malformed or misaligned traces."""


@dataclass
class CounterTrace:
    """Per-CPU performance-counter samples.

    Attributes:
        timestamps: window end times (seconds), shape ``(n_samples,)``.
        durations: actual window lengths (seconds, jittered around the
            nominal sampling period), shape ``(n_samples,)``.
        counts: mapping of event to an ``(n_samples, n_cpus)`` array of
            counts accumulated during each window.
    """

    timestamps: np.ndarray
    durations: np.ndarray
    counts: dict[Event, np.ndarray]

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        self.durations = np.asarray(self.durations, dtype=float)
        if self.timestamps.ndim != 1:
            raise TraceError("timestamps must be one-dimensional")
        if self.timestamps.shape != self.durations.shape:
            raise TraceError("timestamps and durations must match in length")
        n = len(self.timestamps)
        for event, array in list(self.counts.items()):
            array = np.asarray(array, dtype=float)
            if array.ndim != 2 or array.shape[0] != n:
                raise TraceError(
                    f"counts[{event}] must have shape (n_samples, n_cpus); "
                    f"got {array.shape} for {n} samples"
                )
            self.counts[event] = array
        if np.any(self.durations <= 0):
            raise TraceError("window durations must be positive")

    @property
    def n_samples(self) -> int:
        return len(self.timestamps)

    @property
    def n_cpus(self) -> int:
        if not self.counts:
            return 0
        return next(iter(self.counts.values())).shape[1]

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(self.counts)

    def per_cpu(self, event: Event) -> np.ndarray:
        """Counts per window per CPU, shape ``(n_samples, n_cpus)``."""
        try:
            return self.counts[event]
        except KeyError:
            raise TraceError(f"trace does not record event {event!r}") from None

    def total(self, event: Event) -> np.ndarray:
        """Counts per window summed over CPUs, shape ``(n_samples,)``."""
        return self.per_cpu(event).sum(axis=1)

    def rate(self, event: Event) -> np.ndarray:
        """System-wide event rate (events/second) per window."""
        return self.total(event) / self.durations

    def slice(self, start: int, stop: int | None = None) -> "CounterTrace":
        """A new trace restricted to samples ``[start:stop]``."""
        sl = np.s_[start:stop]
        return CounterTrace(
            timestamps=self.timestamps[sl],
            durations=self.durations[sl],
            counts={e: a[sl] for e, a in self.counts.items()},
        )


@dataclass
class PowerTrace:
    """Per-subsystem measured power, aligned to counter windows.

    Attributes:
        timestamps: window end times (seconds), shape ``(n_samples,)``.
        watts: mapping of subsystem to an ``(n_samples,)`` array of
            average power over each window.
    """

    timestamps: np.ndarray
    watts: dict[Subsystem, np.ndarray]

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        if self.timestamps.ndim != 1:
            raise TraceError("timestamps must be one-dimensional")
        n = len(self.timestamps)
        for subsystem, array in list(self.watts.items()):
            array = np.asarray(array, dtype=float)
            if array.shape != (n,):
                raise TraceError(
                    f"watts[{subsystem}] must have shape ({n},); got {array.shape}"
                )
            self.watts[subsystem] = array

    @property
    def n_samples(self) -> int:
        return len(self.timestamps)

    @property
    def subsystems(self) -> tuple[Subsystem, ...]:
        return tuple(self.watts)

    def power(self, subsystem: Subsystem) -> np.ndarray:
        try:
            return self.watts[subsystem]
        except KeyError:
            raise TraceError(
                f"trace does not measure subsystem {subsystem!r}"
            ) from None

    def total(self) -> np.ndarray:
        """Total system power per window (sum of all measured domains)."""
        if not self.watts:
            raise TraceError("power trace has no subsystems")
        return np.sum(list(self.watts.values()), axis=0)

    def mean(self, subsystem: Subsystem) -> float:
        return float(self.power(subsystem).mean())

    def std(self, subsystem: Subsystem) -> float:
        return float(self.power(subsystem).std(ddof=0))

    def slice(self, start: int, stop: int | None = None) -> "PowerTrace":
        sl = np.s_[start:stop]
        return PowerTrace(
            timestamps=self.timestamps[sl],
            watts={s: a[sl] for s, a in self.watts.items()},
        )


@dataclass
class MeasuredRun:
    """One instrumented run of a workload: counters + aligned power.

    This is the unit of data the training and validation pipeline
    consumes; the simulator's :func:`repro.simulator.simulate_workload`
    produces one, and real hardware instrumentation could too.
    """

    workload: str
    counters: CounterTrace
    power: PowerTrace
    seed: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.counters.n_samples != self.power.n_samples:
            raise TraceError(
                "counter and power traces have different sample counts "
                f"({self.counters.n_samples} vs {self.power.n_samples}); "
                "did synchronisation fail?"
            )

    @property
    def n_samples(self) -> int:
        return self.counters.n_samples

    @property
    def duration_s(self) -> float:
        return float(self.counters.durations.sum())

    def drop_warmup(self, n_windows: int = 2) -> "MeasuredRun":
        """Discard the first windows (program initialisation, data load)."""
        if n_windows >= self.n_samples:
            raise TraceError(
                f"cannot drop {n_windows} windows from a {self.n_samples}-sample run"
            )
        return MeasuredRun(
            workload=self.workload,
            counters=self.counters.slice(n_windows),
            power=self.power.slice(n_windows),
            seed=self.seed,
            metadata=dict(self.metadata),
        )

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serialisable representation of the run."""
        return {
            "workload": self.workload,
            "seed": self.seed,
            "metadata": self.metadata,
            "timestamps": self.counters.timestamps.tolist(),
            "durations": self.counters.durations.tolist(),
            "counts": {
                e.value: a.tolist() for e, a in self.counters.counts.items()
            },
            "watts": {s.value: a.tolist() for s, a in self.power.watts.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MeasuredRun":
        timestamps = np.asarray(data["timestamps"], dtype=float)
        return cls(
            workload=data["workload"],
            seed=int(data.get("seed", 0)),
            metadata=dict(data.get("metadata", {})),
            counters=CounterTrace(
                timestamps=timestamps,
                durations=np.asarray(data["durations"], dtype=float),
                counts={
                    Event(name): np.asarray(a, dtype=float)
                    for name, a in data["counts"].items()
                },
            ),
            power=PowerTrace(
                timestamps=timestamps,
                watts={
                    Subsystem(name): np.asarray(a, dtype=float)
                    for name, a in data["watts"].items()
                },
            ),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str) -> "MeasuredRun":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def concat_runs(runs: "list[MeasuredRun] | tuple[MeasuredRun, ...]") -> MeasuredRun:
    """Concatenate runs sample-wise (for multi-trace training sets)."""
    if not runs:
        raise TraceError("cannot concatenate zero runs")
    events = set(runs[0].counters.counts)
    subsystems = set(runs[0].power.watts)
    for run in runs[1:]:
        if set(run.counters.counts) != events or set(run.power.watts) != subsystems:
            raise TraceError("runs record different events/subsystems")
    offsets = np.cumsum([0.0] + [r.counters.timestamps[-1] for r in runs[:-1]])
    timestamps = np.concatenate(
        [r.counters.timestamps + off for r, off in zip(runs, offsets)]
    )
    return MeasuredRun(
        workload="+".join(dict.fromkeys(r.workload for r in runs)),
        seed=runs[0].seed,
        counters=CounterTrace(
            timestamps=timestamps,
            durations=np.concatenate([r.counters.durations for r in runs]),
            counts={
                e: np.vstack([r.counters.counts[e] for r in runs]) for e in events
            },
        ),
        power=PowerTrace(
            timestamps=timestamps,
            watts={
                s: np.concatenate([r.power.watts[s] for r in runs])
                for s in subsystems
            },
        ),
    )


def iter_subsystem_series(run: MeasuredRun) -> Iterator[tuple[Subsystem, np.ndarray]]:
    """Yield (subsystem, measured power series) pairs for a run."""
    for subsystem in run.power.subsystems:
        yield subsystem, run.power.power(subsystem)
