"""The paper's primary contribution: trickle-down power modeling.

Everything in this package is substrate-independent: it consumes
performance-counter traces and measured power traces (from the bundled
simulator or from any other source) and produces per-subsystem power
models following the methodology of Bircher & John (ISPASS 2007).
"""

from repro.core.events import Event, Subsystem, TRICKLE_DOWN_EVENTS
from repro.core.traces import CounterTrace, MeasuredRun, PowerTrace
from repro.core.features import FeatureSet, PAPER_FEATURES
from repro.core.models import (
    ConstantModel,
    PolynomialModel,
    SubsystemPowerModel,
)
from repro.core.training import ModelTrainer, TrainingRecipe, PAPER_RECIPE
from repro.core.validation import ValidationReport, average_error, validate_suite
from repro.core.suite import TrickleDownSuite
from repro.core.estimator import SystemPowerEstimator

__all__ = [
    "Event",
    "Subsystem",
    "TRICKLE_DOWN_EVENTS",
    "CounterTrace",
    "MeasuredRun",
    "PowerTrace",
    "FeatureSet",
    "PAPER_FEATURES",
    "ConstantModel",
    "PolynomialModel",
    "SubsystemPowerModel",
    "ModelTrainer",
    "TrainingRecipe",
    "PAPER_RECIPE",
    "ValidationReport",
    "average_error",
    "validate_suite",
    "TrickleDownSuite",
    "SystemPowerEstimator",
]
