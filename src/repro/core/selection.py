"""Automated performance-event selection for subsystem power models.

The paper selects its six events manually: start from the trickle-down
propagation intuition, then keep whichever event gives the lowest
average error and the best-looking trace (Section 3.3).  This module
systematises that procedure as greedy forward selection with held-out
validation:

1. candidate features are the trickle-down vocabulary;
2. at each step, add the feature whose inclusion most reduces the
   *validation* error (training on one designated run, validating on
   all runs, exactly the paper's protocol);
3. stop when no candidate improves by at least ``min_gain_pct`` — the
   parsimony the paper needs for runtime-cheap models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.events import Subsystem
from repro.core.features import Feature, FeatureSet, PAPER_FEATURES
from repro.core.models import PolynomialModel
from repro.core.regression import RegressionError
from repro.core.traces import MeasuredRun
from repro.core.validation import average_error


@dataclass
class SelectionStep:
    """One greedy step: the feature added and the error it achieved."""

    feature_name: str
    validation_error_pct: float


@dataclass
class SelectionResult:
    """Outcome of a greedy forward selection."""

    subsystem: Subsystem
    degree: int
    steps: "list[SelectionStep]" = field(default_factory=list)
    model: "PolynomialModel | None" = None

    @property
    def selected_names(self) -> "tuple[str, ...]":
        return tuple(step.feature_name for step in self.steps)

    @property
    def final_error_pct(self) -> float:
        if not self.steps:
            raise ValueError("selection produced no steps")
        return self.steps[-1].validation_error_pct

    def describe(self) -> str:
        lines = [
            f"greedy selection for {self.subsystem.value} (degree {self.degree}):"
        ]
        for i, step in enumerate(self.steps, 1):
            lines.append(
                f"  {i}. +{step.feature_name:35} -> "
                f"{step.validation_error_pct:6.2f}% avg error"
            )
        return "\n".join(lines)


class EventSelector:
    """Greedy forward selection over the trickle-down vocabulary."""

    def __init__(
        self,
        candidates: "list[Feature] | None" = None,
        degree: int = 2,
        max_features: int = 3,
        min_gain_pct: float = 0.10,
    ) -> None:
        if degree not in (1, 2):
            raise ValueError("degree must be 1 or 2")
        if max_features < 1:
            raise ValueError("max_features must be >= 1")
        if min_gain_pct < 0:
            raise ValueError("min_gain_pct must be non-negative")
        self.candidates = list(candidates or PAPER_FEATURES.values())
        for feature in self.candidates:
            if not feature.is_trickle_down:
                raise ValueError(
                    f"candidate {feature.name!r} uses subsystem-local events"
                )
        self.degree = degree
        self.max_features = max_features
        self.min_gain_pct = min_gain_pct

    def _evaluate(
        self,
        names: "tuple[str, ...]",
        subsystem: Subsystem,
        train: MeasuredRun,
        validation: "list[MeasuredRun]",
    ) -> "tuple[float, PolynomialModel] | None":
        """Average validation error of a feature combination."""
        try:
            model = PolynomialModel.fit(
                FeatureSet.of(*names),
                self.degree,
                train.counters,
                train.power.power(subsystem),
            )
        except RegressionError:
            return None
        errors = [
            average_error(model.predict(run.counters), run.power.power(subsystem))
            for run in validation
        ]
        return float(np.mean(errors)), model

    def select(
        self,
        subsystem: Subsystem,
        train: MeasuredRun,
        validation: "list[MeasuredRun]",
    ) -> SelectionResult:
        """Run greedy forward selection for one subsystem.

        Args:
            subsystem: power domain to model.
            train: the high-variation training run (paper Section 3.2.2).
            validation: the full workload set to judge transfer on.
        """
        if not validation:
            raise ValueError("selection needs at least one validation run")
        result = SelectionResult(subsystem=subsystem, degree=self.degree)
        selected: "tuple[str, ...]" = ()
        best_error = np.inf
        best_model = None

        while len(selected) < self.max_features:
            round_best = None
            for feature in self.candidates:
                if feature.name in selected:
                    continue
                outcome = self._evaluate(
                    selected + (feature.name,), subsystem, train, validation
                )
                if outcome is None:
                    continue
                error, model = outcome
                if round_best is None or error < round_best[0]:
                    round_best = (error, feature.name, model)
            if round_best is None:
                break
            error, name, model = round_best
            if error > best_error - self.min_gain_pct:
                break  # no candidate helps enough
            selected = selected + (name,)
            best_error, best_model = error, model
            result.steps.append(
                SelectionStep(feature_name=name, validation_error_pct=error)
            )
        result.model = best_model
        if not result.steps:
            raise RegressionError(
                f"no usable feature found for {subsystem} among "
                f"{[f.name for f in self.candidates]}"
            )
        return result
