"""Per-processor power attribution in an SMP.

The paper stresses (Section 4.2.1) that its CPU model is the first
performance-counter power model applied per-processor in an SMP, and
motivates it with power-aware billing of shared/virtualised machines:
each physical processor's power must be attributable even though only
the sum is measured.  This module applies the fitted CPU model's
structure per CPU and splits the shared subsystem estimates in
proportion to each CPU's induced activity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.events import Event, Subsystem
from repro.core.models import PolynomialModel
from repro.core.suite import TrickleDownSuite
from repro.core.traces import CounterTrace


@dataclass(frozen=True)
class CpuAttribution:
    """Per-CPU power shares for one trace."""

    #: Shape (n_samples, n_cpus): Watts attributed to each CPU.
    cpu_watts: np.ndarray
    #: Shape (n_samples, n_cpus): shared-subsystem Watts attributed by
    #: induced activity (memory/I/O/disk dynamic power).
    induced_watts: np.ndarray

    @property
    def total_per_cpu(self) -> np.ndarray:
        """Mean attributed power per CPU over the trace (Watts)."""
        return (self.cpu_watts + self.induced_watts).mean(axis=0)


class PowerAccountant:
    """Splits suite estimates across physical processors."""

    def __init__(self, suite: TrickleDownSuite) -> None:
        cpu_model = suite.model(Subsystem.CPU)
        if not isinstance(cpu_model, PolynomialModel):
            raise TypeError(
                "per-CPU attribution needs the polynomial CPU model "
                f"(got {type(cpu_model).__name__})"
            )
        self.suite = suite
        self.cpu_model = cpu_model

    def _per_cpu_cpu_power(self, trace: CounterTrace) -> np.ndarray:
        """Apply the CPU model's structure per processor.

        The fitted model is P = c0 + c1*sum(active_i) + c2*sum(upc_i);
        by linearity each CPU owns c0/N + c1*active_i + c2*upc_i.
        """
        cycles = trace.per_cpu(Event.CYCLES)
        halted = trace.per_cpu(Event.HALTED_CYCLES)
        uops = trace.per_cpu(Event.FETCHED_UOPS)
        active = 1.0 - halted / cycles
        upc = uops / cycles
        coeffs = self.cpu_model.coefficients
        names = self.cpu_model.features.names
        per_cpu = np.full(active.shape, coeffs[0] / active.shape[1])
        for k, name in enumerate(names, start=1):
            if name == "active_fraction":
                per_cpu = per_cpu + coeffs[k] * active
            elif name == "fetched_uops_per_cycle":
                per_cpu = per_cpu + coeffs[k] * upc
            else:
                raise ValueError(
                    f"cannot attribute feature {name!r} per CPU; expected the "
                    "paper's Equation-1 features"
                )
        if self.cpu_model.degree == 2:
            for k, name in enumerate(names, start=1 + len(names)):
                base = active if name == "active_fraction" else upc
                per_cpu = per_cpu + coeffs[k] * base**2
        return per_cpu

    def attribute(self, trace: CounterTrace) -> CpuAttribution:
        """Split the suite's estimates across CPUs for a trace.

        Shared-subsystem *dynamic* power (above each model's intercept)
        is split proportionally to each CPU's bus transactions — the
        activity that induced it; the static part is split evenly
        (infrastructure cost).
        """
        cpu_watts = self._per_cpu_cpu_power(trace)
        n_samples, n_cpus = cpu_watts.shape

        bus = trace.per_cpu(Event.BUS_TRANSACTIONS).astype(float)
        totals = bus.sum(axis=1, keepdims=True)
        shares = np.divide(
            bus, totals, out=np.full_like(bus, 1.0 / n_cpus), where=totals > 0
        )

        induced = np.zeros((n_samples, n_cpus))
        for subsystem in (Subsystem.MEMORY, Subsystem.IO, Subsystem.DISK):
            if subsystem not in self.suite.models:
                continue
            model = self.suite.models[subsystem]
            predicted = model.predict(trace)
            intercept = getattr(model, "intercept", None)
            if intercept is None:
                intercept = float(predicted.min())
            dynamic = np.clip(predicted - intercept, 0.0, None)
            induced += dynamic[:, None] * shares
            induced += intercept / n_cpus
        return CpuAttribution(cpu_watts=cpu_watts, induced_watts=induced)


@dataclass(frozen=True)
class ProcessBill:
    """One process's share of a run's energy."""

    thread_id: int
    runtime_s: float
    cpu_energy_j: float
    induced_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.cpu_energy_j + self.induced_energy_j


class ProcessBillingError(ValueError):
    """Raised when billing inputs are inconsistent."""


def bill_processes(
    suite: TrickleDownSuite,
    trace: CounterTrace,
    process_stats: "dict[int, object]",
    machine_time_s: "float | None" = None,
) -> "list[ProcessBill]":
    """Split a run's estimated energy across processes.

    The paper's motivation (Section 4.2.1): shared-machine billing must
    charge per process even though only aggregate power is measured or
    estimated.  The split follows the structure of the fitted models:

    * the CPU model's **active-fraction energy** is divided by each
      process's runtime (who kept the clock un-gated);
    * the CPU model's **uop energy** is divided by fetched uops;
    * **induced** (memory/I/O/disk dynamic) energy is divided by each
      process's memory-bus transactions (who caused the traffic);
    * **infrastructure** energy (model intercepts, halted baseline,
      chipset) is divided by runtime, like rent.

    Args:
        suite: the fitted trickle-down models.
        trace: the run's counter trace (gives the aggregate estimate).
        process_stats: ``thread_id -> ProcessStats`` from the server's
            OS-virtualised accounting.
        machine_time_s: wall-clock covered by the stats; defaults to
            the trace duration.

    Returns bills ordered by total energy, largest first.
    """
    if not process_stats:
        raise ProcessBillingError("no process statistics to bill")
    machine_time_s = machine_time_s or float(np.sum(trace.durations))
    if machine_time_s <= 0:
        raise ProcessBillingError("machine time must be positive")

    # Aggregate estimated energy, split into the model components.
    cpu_model = suite.model(Subsystem.CPU)
    if not isinstance(cpu_model, PolynomialModel):
        raise ProcessBillingError("billing needs the polynomial CPU model")
    cpu_series = cpu_model.predict(trace)
    durations = trace.durations
    cpu_energy = float(np.sum(cpu_series * durations))

    names = cpu_model.features.names
    coeffs = cpu_model.coefficients
    active = 1.0 - trace.per_cpu(Event.HALTED_CYCLES) / trace.per_cpu(Event.CYCLES)
    upc = trace.per_cpu(Event.FETCHED_UOPS) / trace.per_cpu(Event.CYCLES)
    component = {"intercept": float(coeffs[0] * np.sum(durations))}
    for k, name in enumerate(names, start=1):
        series = active.sum(axis=1) if name == "active_fraction" else upc.sum(axis=1)
        component[name] = float(np.sum(coeffs[k] * series * durations))
    # Quadratic terms (if any) are folded into their feature's bucket.
    if cpu_model.degree == 2:
        for k, name in enumerate(names, start=1 + len(names)):
            series = (
                active.sum(axis=1) if name == "active_fraction" else upc.sum(axis=1)
            )
            component[name] = component.get(name, 0.0) + float(
                np.sum(coeffs[k] * series**2 * durations)
            )

    induced_energy = 0.0
    infrastructure_energy = component["intercept"]
    for subsystem in (Subsystem.MEMORY, Subsystem.IO, Subsystem.DISK,
                      Subsystem.CHIPSET):
        if subsystem not in suite.models:
            continue
        model = suite.models[subsystem]
        predicted = model.predict(trace)
        intercept = getattr(model, "intercept", None)
        if intercept is None:
            intercept = float(predicted.min())
        infrastructure_energy += intercept * machine_time_s
        induced_energy += float(
            np.sum(np.clip(predicted - intercept, 0.0, None) * durations)
        )
    del cpu_energy  # component-level split replaces the aggregate

    # Shares.
    total_runtime = sum(s.runtime_s for s in process_stats.values())
    total_uops = sum(s.fetched_uops for s in process_stats.values())
    total_bus = sum(s.bus_transactions for s in process_stats.values())
    if total_runtime <= 0:
        raise ProcessBillingError("no process ran during the billed window")

    bills = []
    for stats in process_stats.values():
        runtime_share = stats.runtime_s / total_runtime
        uop_share = stats.fetched_uops / total_uops if total_uops > 0 else 0.0
        bus_share = (
            stats.bus_transactions / total_bus if total_bus > 0 else runtime_share
        )
        cpu_e = (
            component.get("active_fraction", 0.0) * runtime_share
            + component.get("fetched_uops_per_cycle", 0.0) * uop_share
            + infrastructure_energy * runtime_share
        )
        bills.append(
            ProcessBill(
                thread_id=stats.thread_id,
                runtime_s=stats.runtime_s,
                cpu_energy_j=cpu_e,
                induced_energy_j=induced_energy * bus_share,
            )
        )
    bills.sort(key=lambda bill: -bill.total_energy_j)
    return bills
