"""Performance-event taxonomy and the trickle-down propagation graph.

The paper selects six processor-visible events (plus cycles and halted
cycles) out of the ~45 the Pentium 4 exposes, chosen by following how
power-inducing events propagate outward from the CPU (its Figure 1):

    CPU --L3 miss / TLB miss / bus access--> memory
    CPU --uncacheable access / interrupt--> chipset / I/O
    I/O --DMA / interrupt--> memory, disk, network

Two classes of events exist in this reproduction:

* **Trickle-down events** (``TRICKLE_DOWN_EVENTS``): observable at the
  processor, the only inputs the paper's models may use.
* **Local events**: observable only with instrumentation at the
  subsystem (DRAM bank states, disk modes, I/O bytes switched).  The
  simulator uses them for ground-truth power and the baseline models
  (Janzen, Zedlewski) consume them; trickle-down models must not.
"""

from __future__ import annotations

import enum


class Subsystem(str, enum.Enum):
    """The five separately measured power domains of the target server."""

    CPU = "cpu"
    CHIPSET = "chipset"
    MEMORY = "memory"
    IO = "io"
    DISK = "disk"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Canonical ordering used by tables in the paper.
SUBSYSTEMS: tuple[Subsystem, ...] = (
    Subsystem.CPU,
    Subsystem.CHIPSET,
    Subsystem.MEMORY,
    Subsystem.IO,
    Subsystem.DISK,
)


class Event(str, enum.Enum):
    """Performance events recorded by the counter infrastructure.

    The first block matches the paper's Section 3.3 selection; the
    second block contains events that exist on the machine but are
    *local* to a subsystem — available to baseline models only.
    """

    # -- Processor-visible (trickle-down) events -----------------------
    CYCLES = "cycles"
    HALTED_CYCLES = "halted_cycles"
    FETCHED_UOPS = "fetched_uops"
    L3_MISSES = "l3_misses"  # load misses, as in the paper's Eq. 2
    TLB_MISSES = "tlb_misses"
    DMA_ACCESSES = "dma_accesses"  # DMA/Other: DMA snoops + coherence
    BUS_TRANSACTIONS = "bus_transactions"  # all FSB transactions
    UNCACHEABLE_ACCESSES = "uncacheable_accesses"
    INTERRUPTS = "interrupts"  # all vectors, serviced by this CPU
    DISK_INTERRUPTS = "disk_interrupts"  # via /proc/interrupts attribution
    NETWORK_INTERRUPTS = "network_interrupts"  # /proc/interrupts, NIC vector

    # -- Subsystem-local events (ground truth / baselines only) --------
    DRAM_READS = "dram_reads"
    DRAM_WRITES = "dram_writes"
    DRAM_ACTIVATIONS = "dram_activations"
    DRAM_ACTIVE_TIME = "dram_active_time"
    PREFETCH_TRANSACTIONS = "prefetch_transactions"
    WRITEBACK_TRANSACTIONS = "writeback_transactions"
    IO_BYTES = "io_bytes"
    IO_TRANSACTIONS = "io_transactions"
    DISK_SEEK_TIME = "disk_seek_time"
    DISK_TRANSFER_TIME = "disk_transfer_time"
    DISK_BYTES = "disk_bytes"
    OS_DISK_SECTORS = "os_disk_sectors"
    OS_CONTEXT_SWITCHES = "os_context_switches"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Events a trickle-down model is allowed to consume (paper Section 3.3).
TRICKLE_DOWN_EVENTS: frozenset[Event] = frozenset(
    {
        Event.CYCLES,
        Event.HALTED_CYCLES,
        Event.FETCHED_UOPS,
        Event.L3_MISSES,
        Event.TLB_MISSES,
        Event.DMA_ACCESSES,
        Event.BUS_TRANSACTIONS,
        Event.UNCACHEABLE_ACCESSES,
        Event.INTERRUPTS,
        Event.DISK_INTERRUPTS,
        Event.NETWORK_INTERRUPTS,
    }
)

#: Events measurable only at the subsystem itself.
LOCAL_EVENTS: frozenset[Event] = frozenset(Event) - TRICKLE_DOWN_EVENTS

#: The trickle-down propagation graph of the paper's Figure 1:
#: (source event, subsystems whose power it induces).
TRICKLE_DOWN_PATHS: tuple[tuple[Event, tuple[Subsystem, ...]], ...] = (
    (Event.L3_MISSES, (Subsystem.MEMORY,)),
    (Event.TLB_MISSES, (Subsystem.MEMORY, Subsystem.CHIPSET, Subsystem.IO, Subsystem.DISK)),
    (Event.DMA_ACCESSES, (Subsystem.MEMORY, Subsystem.CHIPSET, Subsystem.IO)),
    (Event.BUS_TRANSACTIONS, (Subsystem.MEMORY, Subsystem.CHIPSET)),
    (Event.UNCACHEABLE_ACCESSES, (Subsystem.CHIPSET, Subsystem.IO)),
    (Event.INTERRUPTS, (Subsystem.IO, Subsystem.DISK)),
)


def is_trickle_down(event: Event) -> bool:
    """True if ``event`` can be observed from the processor."""
    return event in TRICKLE_DOWN_EVENTS


def render_propagation_diagram() -> str:
    """ASCII rendering of the paper's Figure 1 (event propagation)."""
    lines = [
        "            Propagation of Performance Events (Figure 1)",
        "",
        "  CPU ---L3 Miss---------------------> Memory",
        "  CPU ---TLB Miss--------------------> Memory -> Chipset -> I/O -> Disk",
        "  CPU <--DMA Access------------------- I/O (snooped on memory bus)",
        "  CPU ---Mem Bus Transaction---------> Chipset -> Memory",
        "  CPU ---Uncacheable Access----------> Chipset -> I/O",
        "  CPU <--Interrupt-------------------- I/O / Disk / Network",
        "",
        "  trickle-down (CPU-visible) events: "
        + ", ".join(sorted(e.value for e in TRICKLE_DOWN_EVENTS)),
    ]
    return "\n".join(lines)
