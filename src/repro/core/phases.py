"""Power-phase detection from performance counters.

The paper's Section 2.4 surveys phase detection and cites Isci's result
that counter-based metrics beat control-flow metrics for *power*
phases.  This extension implements that idea on top of the trickle-down
feature set: samples are embedded as normalised counter-rate vectors,
clustered online with a leader-follower algorithm (threshold on
Euclidean distance, as in Dhodapkar & Smith), and each phase carries
the power statistics of its members — giving an adaptation policy a
compact "which power regime am I in" signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FeatureSet
from repro.core.traces import CounterTrace


@dataclass
class Phase:
    """A detected phase: a centroid in feature space plus members."""

    phase_id: int
    centroid: np.ndarray
    member_indices: "list[int]" = field(default_factory=list)
    power_samples: "list[float]" = field(default_factory=list)

    @property
    def n_members(self) -> int:
        return len(self.member_indices)

    @property
    def mean_power_w(self) -> float:
        if not self.power_samples:
            raise ValueError("phase has no power samples")
        return float(np.mean(self.power_samples))

    @property
    def power_std_w(self) -> float:
        return float(np.std(self.power_samples)) if self.power_samples else 0.0


class PhaseDetector:
    """Leader-follower clustering of counter-rate vectors.

    Args:
        features: feature set defining the embedding (defaults to the
            paper's six-event vocabulary).
        threshold: normalised distance above which a sample founds a
            new phase.  Lower = more, finer phases.
    """

    def __init__(self, features: FeatureSet, threshold: float = 0.25) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.features = features
        self.threshold = threshold
        self.phases: "list[Phase]" = []
        self._scale: "np.ndarray | None" = None

    def _normalise(self, matrix: np.ndarray) -> np.ndarray:
        """Scale features to comparable magnitude (robust max-abs)."""
        if self._scale is None:
            scale = np.percentile(np.abs(matrix), 95, axis=0)
            scale[scale == 0] = 1.0
            self._scale = scale
        return matrix / self._scale

    def fit(
        self, trace: CounterTrace, power: "np.ndarray | None" = None
    ) -> "list[int]":
        """Assign every sample of a trace to a phase.

        Returns the per-sample phase ids.  ``power`` (same length)
        attaches power statistics to the phases.
        """
        matrix = self._normalise(self.features.matrix(trace))
        if power is not None:
            power = np.asarray(power, dtype=float)
            if power.shape != (trace.n_samples,):
                raise ValueError("power series must match the trace length")
        assignments = []
        for i, vector in enumerate(matrix):
            phase = self._assign(vector)
            phase.member_indices.append(i)
            if power is not None:
                phase.power_samples.append(float(power[i]))
            assignments.append(phase.phase_id)
        return assignments

    def _assign(self, vector: np.ndarray) -> Phase:
        """Leader-follower step: nearest centroid or a new phase."""
        best, best_distance = None, np.inf
        for phase in self.phases:
            distance = float(np.linalg.norm(vector - phase.centroid))
            if distance < best_distance:
                best, best_distance = phase, distance
        if best is not None and best_distance <= self.threshold:
            # Running-mean centroid update keeps phases adaptive.
            n = best.n_members
            best.centroid = (best.centroid * n + vector) / (n + 1)
            return best
        phase = Phase(phase_id=len(self.phases), centroid=vector.copy())
        self.phases.append(phase)
        return phase

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def stability(self, assignments: "list[int]") -> float:
        """Fraction of consecutive samples staying in the same phase.

        Dhodapkar & Smith's phase-stability criterion: higher means the
        detector produces usable (non-thrashing) phases.
        """
        if len(assignments) < 2:
            return 1.0
        same = sum(a == b for a, b in zip(assignments, assignments[1:]))
        return same / (len(assignments) - 1)


def power_phase_table(detector: PhaseDetector) -> "list[tuple[int, int, float, float]]":
    """(phase id, members, mean power, power std) rows, largest first."""
    rows = [
        (p.phase_id, p.n_members, p.mean_power_w, p.power_std_w)
        for p in detector.phases
        if p.power_samples
    ]
    rows.sort(key=lambda row: -row[1])
    return rows
