"""Runtime complete-system power estimation.

:class:`SystemPowerEstimator` is the online face of a fitted suite: it
accepts one counter sample at a time (as a power-management daemon
would read them once per second), converts it into a single-sample
trace, and returns the per-subsystem estimate.  This is the object a
dynamic-adaptation policy (DVFS governor, power capper, thermal
manager) would hold — see ``examples/datacenter_power_cap.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import monotonic as _monotonic

import numpy as np

from repro import obs
from repro.core.events import Event, Subsystem
from repro.core.suite import TrickleDownSuite
from repro.core.traces import CounterTrace
from repro.obs.attribution import Attribution


@dataclass(frozen=True)
class PowerEstimate:
    """One estimation step's output.

    ``attribution`` is the optional per-term watt decomposition (see
    :mod:`repro.obs.attribution`), attached when the estimator runs
    with ``attribute=True``.
    """

    timestamp_s: float
    subsystem_w: "dict[Subsystem, float]"
    total_w: float
    attribution: "Attribution | None" = None

    def __str__(self) -> str:
        parts = ", ".join(
            f"{s.value}={w:.1f}W" for s, w in self.subsystem_w.items()
        )
        text = f"t={self.timestamp_s:.1f}s total={self.total_w:.1f}W ({parts})"
        if self.attribution is not None:
            top = self.attribution.top_terms(n=3)
            if top:
                text += "; top terms: " + ", ".join(
                    f"{term}={watts:.1f}W" for term, watts in top
                )
        return text


#: Default estimate-history bound.  A long-running daemon estimating
#: once per second keeps a little over an hour of history; older
#: estimates fall off the front instead of growing memory forever.
DEFAULT_MAX_HISTORY = 4096


class SystemPowerEstimator:
    """Streaming estimator over a fitted trickle-down suite.

    ``max_history`` bounds the retained :class:`PowerEstimate` history
    (a deque; the oldest estimates are evicted first).  Pass ``None``
    for the old unbounded behaviour — only sensible for short batch
    sessions that read the full history afterwards.

    ``attribute=True`` attaches an :class:`Attribution` (per-term watt
    decomposition) to every estimate.  Disabled — the default — the
    cost is a single bool check per estimate, the same pattern as the
    ``Server.run_ticks`` telemetry hooks.
    """

    def __init__(
        self,
        suite: TrickleDownSuite,
        max_history: "int | None" = DEFAULT_MAX_HISTORY,
        attribute: bool = False,
    ) -> None:
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be >= 1 (or None for unbounded)")
        self.suite = suite
        self.attribute = bool(attribute)
        self._history: "deque[PowerEstimate]" = deque(maxlen=max_history)

    @property
    def max_history(self) -> "int | None":
        return self._history.maxlen

    @property
    def history(self) -> "tuple[PowerEstimate, ...]":
        return tuple(self._history)

    def estimate(
        self,
        counts: "dict[Event, np.ndarray | list]",
        duration_s: float = 1.0,
        timestamp_s: float | None = None,
    ) -> PowerEstimate:
        """Estimate power from one counter sample.

        Args:
            counts: per-event arrays of per-CPU counts for one window
                (shape ``(n_cpus,)`` each).  Must include every event
                the suite's features consume.
            duration_s: window length in seconds.
            timestamp_s: window end time; defaults to a running count.
        """
        obs_t0 = _monotonic() if obs.enabled() else None
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if timestamp_s is None:
            timestamp_s = (
                self._history[-1].timestamp_s + duration_s if self._history else duration_s
            )
        trace = CounterTrace(
            timestamps=np.asarray([timestamp_s]),
            durations=np.asarray([duration_s]),
            counts={
                event: np.asarray(values, dtype=float).reshape(1, -1)
                for event, values in counts.items()
            },
        )
        predictions, terms = self.suite.evaluate(trace, attribute=self.attribute)
        per_subsystem = {s: float(series[0]) for s, series in predictions.items()}
        estimate = PowerEstimate(
            timestamp_s=float(timestamp_s),
            subsystem_w=per_subsystem,
            total_w=float(sum(per_subsystem.values())),
            attribution=(
                self._sample_attribution(terms, 0) if terms is not None else None
            ),
        )
        self._history.append(estimate)
        if obs_t0 is not None:
            reg = obs.registry()
            reg.inc("estimator_samples_total")
            reg.observe("estimator_latency_seconds", _monotonic() - obs_t0)
        return estimate

    def estimate_trace(self, trace: CounterTrace) -> "list[PowerEstimate]":
        """Batch estimation over a full counter trace.

        The whole trace is evaluated in one batched design-matrix pass
        (:meth:`TrickleDownSuite.evaluate`, attribution included), and
        the per-sample objects are assembled from plain-python columns
        — no per-sample numpy scalar indexing.
        """
        with obs.span("estimator.estimate_trace", n_samples=len(trace.timestamps)):
            predictions, terms = self.suite.evaluate(trace, attribute=self.attribute)
        obs.inc("estimator_samples_total", float(len(trace.timestamps)))
        subsystems = list(predictions)
        columns = [predictions[s].tolist() for s in subsystems]
        term_columns = (
            {
                subsystem.value: [
                    (name, vector.tolist()) for name, vector in sub_terms.items()
                ]
                for subsystem, sub_terms in terms.items()
            }
            if terms is not None
            else None
        )
        estimates = []
        for i, timestamp in enumerate(trace.timestamps.tolist()):
            values = [column[i] for column in columns]
            estimates.append(
                PowerEstimate(
                    timestamp_s=timestamp,
                    subsystem_w=dict(zip(subsystems, values)),
                    total_w=sum(values),
                    attribution=(
                        Attribution(
                            terms_w={
                                subsystem: {name: column[i] for name, column in items}
                                for subsystem, items in term_columns.items()
                            }
                        )
                        if term_columns is not None
                        else None
                    ),
                )
            )
        self._history.extend(estimates)
        return estimates

    # -- attribution ---------------------------------------------------

    @staticmethod
    def _sample_attribution(terms, index: int) -> Attribution:
        return Attribution(
            terms_w={
                subsystem.value: {
                    term: float(vec[index]) for term, vec in sub_terms.items()
                }
                for subsystem, sub_terms in terms.items()
            }
        )
