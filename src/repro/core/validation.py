"""Model validation: the paper's Equation 6 and Tables 3/4 machinery.

Average error is the mean over samples of |modeled - measured| /
measured (Equation 6).  For subsystems dominated by a DC offset the
paper also reports the error after subtracting the idle power (disk:
1.75 % DC-adjusted; I/O: 32 % DC-adjusted vs. < 1 % raw), so both
variants are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.events import SUBSYSTEMS, Subsystem
from repro.core.suite import TrickleDownSuite
from repro.core.traces import CounterTrace, MeasuredRun, PowerTrace


def average_error(modeled: np.ndarray, measured: np.ndarray) -> float:
    """The paper's Equation 6, in percent."""
    modeled = np.asarray(modeled, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if modeled.shape != measured.shape or modeled.ndim != 1:
        raise ValueError("modeled and measured must be 1-D and equal length")
    if modeled.size == 0:
        raise ValueError("cannot average errors over zero samples")
    if np.any(measured <= 0):
        raise ValueError("measured power must be positive")
    return float(np.mean(np.abs(modeled - measured) / measured) * 100.0)


def dc_adjusted_error(
    modeled: np.ndarray, measured: np.ndarray, dc_offset_w: float
) -> float:
    """Equation 6 applied after removing a DC offset from both sides.

    This is how the paper quotes the disk model (subtract the 21.6 W of
    idle rotation power first); it punishes models that only get the
    offset right.  Samples whose measured dynamic power is ~zero are
    excluded (relative error is undefined there).
    """
    modeled = np.asarray(modeled, dtype=float) - dc_offset_w
    measured = np.asarray(measured, dtype=float) - dc_offset_w
    keep = np.abs(measured) > 1.0e-3
    if not np.any(keep):
        raise ValueError("no samples with measurable dynamic power")
    return float(
        np.mean(np.abs(modeled[keep] - measured[keep]) / np.abs(measured[keep]))
        * 100.0
    )


@dataclass
class ValidationReport:
    """Per-workload, per-subsystem average errors (percent)."""

    errors: "dict[str, dict[Subsystem, float]]" = field(default_factory=dict)

    @property
    def workloads(self) -> "tuple[str, ...]":
        return tuple(self.errors)

    def error(self, workload: str, subsystem: Subsystem) -> float:
        return self.errors[workload][subsystem]

    def subsystem_average(
        self, subsystem: Subsystem, workloads: "tuple[str, ...] | None" = None
    ) -> float:
        """Mean error of one model across workloads (a table footer)."""
        names = workloads or self.workloads
        return float(np.mean([self.errors[w][subsystem] for w in names]))

    def subsystem_std(
        self, subsystem: Subsystem, workloads: "tuple[str, ...] | None" = None
    ) -> float:
        names = workloads or self.workloads
        return float(np.std([self.errors[w][subsystem] for w in names]))

    def worst_case(self, subsystem: Subsystem) -> "tuple[str, float]":
        """(workload, error) with the largest error for a subsystem."""
        worst = max(self.errors, key=lambda w: self.errors[w][subsystem])
        return worst, self.errors[worst][subsystem]

    def overall_average(self) -> float:
        """Grand mean across all workloads and subsystems."""
        values = [
            error
            for per_subsystem in self.errors.values()
            for error in per_subsystem.values()
        ]
        return float(np.mean(values))


def validate_suite(
    suite: TrickleDownSuite,
    runs: "dict[str, MeasuredRun] | list[MeasuredRun]",
) -> ValidationReport:
    """Equation-6 errors of every model on every run."""
    if isinstance(runs, dict):
        run_list = list(runs.values())
    else:
        run_list = list(runs)
    if not run_list:
        raise ValueError("validation needs at least one run")
    report = ValidationReport()
    telemetry = obs.enabled()
    with obs.span("validate.suite", n_runs=len(run_list)):
        for run in run_list:
            per_subsystem = {}
            for subsystem in SUBSYSTEMS:
                if subsystem not in suite.models:
                    continue
                modeled = suite.predict(subsystem, run.counters)
                measured = run.power.power(subsystem)
                per_subsystem[subsystem] = average_error(modeled, measured)
            report.errors[run.workload] = per_subsystem
            if telemetry:
                # Mirrors the paper's Tables 3/4 cells, one gauge per
                # (workload, subsystem), so a telemetry dump carries the
                # reproduction's headline numbers.
                reg = obs.registry()
                for subsystem, error in per_subsystem.items():
                    reg.gauge(
                        "validation_error_pct",
                        error,
                        {
                            "workload": run.workload,
                            "subsystem": subsystem.value,
                        },
                    )
    return report


def holdout_validation(
    trainer,
    runs: "dict[str, MeasuredRun]",
    train_fraction: float,
) -> ValidationReport:
    """Train on the first fraction of each training run, validate on all.

    Answers "how much instrumented measurement time does the recipe
    need?" — a deployment question the paper leaves open (its training
    traces are full runs).  Only the samples in the leading
    ``train_fraction`` of each *training* workload are used for
    fitting; validation uses every run in full.
    """
    if not 0.0 < train_fraction <= 1.0:
        raise ValueError("train_fraction must be in (0, 1]")
    truncated = {}
    for name in trainer.recipe.training_workloads:
        try:
            run = runs[name]
        except KeyError:
            raise ValueError(
                f"holdout validation needs a run of {name!r}"
            ) from None
        keep = max(4, int(run.n_samples * train_fraction))
        truncated[name] = MeasuredRun(
            workload=run.workload,
            counters=run.counters.slice(0, keep),
            power=run.power.slice(0, keep),
            seed=run.seed,
            metadata=dict(run.metadata),
        )
    suite = trainer.train(truncated)
    return validate_suite(suite, runs)


def temporal_cross_validation(
    trainer,
    runs: "dict[str, MeasuredRun]",
    n_folds: int = 4,
) -> "list[ValidationReport]":
    """K-fold over time: train with one time-slice of each training run
    held out, validate on everything.

    The spread across folds measures how sensitive the recipe is to
    *which* part of the staggered trace it saw — low spread means the
    training protocol (high utilisation + variation) is doing its job.
    """
    if n_folds < 2:
        raise ValueError("need at least two folds")
    reports = []
    for fold in range(n_folds):
        reduced = {}
        for name in trainer.recipe.training_workloads:
            run = runs[name]
            n = run.n_samples
            lo = fold * n // n_folds
            hi = (fold + 1) * n // n_folds
            keep = [i for i in range(n) if not lo <= i < hi]
            if len(keep) < 4:
                raise ValueError("runs too short for the requested folds")
            idx = np.asarray(keep)
            reduced[name] = MeasuredRun(
                workload=run.workload,
                counters=CounterTrace(
                    timestamps=run.counters.timestamps[idx],
                    durations=run.counters.durations[idx],
                    counts={e: a[idx] for e, a in run.counters.counts.items()},
                ),
                power=PowerTrace(
                    timestamps=run.power.timestamps[idx],
                    watts={s: a[idx] for s, a in run.power.watts.items()},
                ),
                seed=run.seed,
                metadata=dict(run.metadata),
            )
        reports.append(validate_suite(trainer.train(reduced), runs))
    return reports
