"""Baseline power models using subsystem-local or OS events.

The paper's related work (Section 2.2) estimates subsystem power from
events measured *at the subsystem* — DRAM state residency (Janzen),
disk mode residency (Zedlewski), or OS counters (Heath).  These models
are implemented here so the benchmarks can compare them against the
trickle-down approach: the local models are at least as accurate but
require per-subsystem instrumentation, which is exactly the cost the
paper's approach avoids.
"""

from repro.baselines.janzen import JanzenMemoryModel
from repro.baselines.zedlewski import ZedlewskiDiskModel
from repro.baselines.heath import HeathOsModel

__all__ = ["JanzenMemoryModel", "ZedlewskiDiskModel", "HeathOsModel"]
