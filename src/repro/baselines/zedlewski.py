"""Zedlewski-style disk power model (local events).

"Modeling Hard-Disk Power Consumption" (FAST 2003) shows disk power is
determined by mode residency: time spent seeking, reading/writing, and
at standby rotation.  The simulator exposes seek and transfer residency
as local events; this baseline fits the mode-power coefficients from
them.  The paper's trickle-down disk model replaces these local
residencies with disk-controller interrupts and DMA events seen at the
processor.
"""

from __future__ import annotations

import numpy as np

from repro.core.events import Event, Subsystem
from repro.core.regression import FitDiagnostics, fit_least_squares
from repro.core.traces import CounterTrace, MeasuredRun


class ZedlewskiDiskModel:
    """Disk power from seek/transfer time residency."""

    def __init__(self, coefficients: np.ndarray) -> None:
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (3,):
            raise ValueError("expected [rotation, seek, transfer] coefficients")
        self.coefficients = coefficients
        self.diagnostics: "FitDiagnostics | None" = None

    @staticmethod
    def _design(trace: CounterTrace) -> np.ndarray:
        # Residencies are recorded as seconds of activity per window;
        # dividing by the window duration yields utilisation fractions.
        seek = trace.total(Event.DISK_SEEK_TIME) / trace.durations
        transfer = trace.total(Event.DISK_TRANSFER_TIME) / trace.durations
        return np.column_stack([np.ones(trace.n_samples), seek, transfer])

    @classmethod
    def fit(cls, run: MeasuredRun) -> "ZedlewskiDiskModel":
        design = cls._design(run.counters)
        coefficients, diagnostics = fit_least_squares(
            design, run.power.power(Subsystem.DISK)
        )
        model = cls(coefficients)
        model.diagnostics = diagnostics
        return model

    def predict(self, trace: CounterTrace) -> np.ndarray:
        return self._design(trace) @ self.coefficients

    #: Term labels matching the coefficient layout.
    TERM_NAMES = ("rotation", "seek", "transfer")

    def attribute(self, trace: CounterTrace) -> "dict[str, np.ndarray]":
        """Per-term watts; terms sum exactly to :meth:`predict`."""
        design = self._design(trace)
        return {
            name: design[:, k] * self.coefficients[k]
            for k, name in enumerate(self.TERM_NAMES)
        }

    def describe(self) -> str:
        rotation, seek, transfer = self.coefficients
        return (
            f"P = {rotation:.2f} + {seek:.3g}*seek_util + "
            f"{transfer:.3g}*transfer_util  [local disk modes]"
        )
