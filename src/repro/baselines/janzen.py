"""Janzen-style DRAM power model (local events).

"Calculating Memory System Power for DDR SDRAM" (Micron Designline,
2001) computes DRAM power from read/write counts and state residency —
events visible only at the memory controller.  This baseline fits the
same linear form on the simulator's DRAM-local event counters
(``DRAM_READS``, ``DRAM_WRITES``, ``DRAM_ACTIVATIONS``); it is the
"sensor at the subsystem" alternative the paper's memory model replaces
with CPU-visible bus transactions.
"""

from __future__ import annotations

import numpy as np

from repro.core.events import Event
from repro.core.regression import FitDiagnostics, fit_least_squares
from repro.core.traces import CounterTrace, MeasuredRun


class JanzenMemoryModel:
    """Linear DRAM power from local read/write/activation rates."""

    def __init__(self, coefficients: np.ndarray) -> None:
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (4,):
            raise ValueError("expected [idle, read, write, activation] coefficients")
        self.coefficients = coefficients
        self.diagnostics: "FitDiagnostics | None" = None

    @staticmethod
    def _design(trace: CounterTrace) -> np.ndarray:
        rates = np.column_stack(
            [
                trace.rate(Event.DRAM_READS),
                trace.rate(Event.DRAM_WRITES),
                trace.rate(Event.DRAM_ACTIVATIONS),
            ]
        )
        return np.column_stack([np.ones(trace.n_samples), rates / 1.0e6])

    @classmethod
    def fit(cls, run: MeasuredRun) -> "JanzenMemoryModel":
        from repro.core.events import Subsystem

        design = cls._design(run.counters)
        coefficients, diagnostics = fit_least_squares(
            design, run.power.power(Subsystem.MEMORY)
        )
        model = cls(coefficients)
        model.diagnostics = diagnostics
        return model

    def predict(self, trace: CounterTrace) -> np.ndarray:
        return self._design(trace) @ self.coefficients

    #: Term labels matching the coefficient layout.
    TERM_NAMES = ("idle", "reads", "writes", "activations")

    def attribute(self, trace: CounterTrace) -> "dict[str, np.ndarray]":
        """Per-term watts; terms sum exactly to :meth:`predict`."""
        design = self._design(trace)
        return {
            name: design[:, k] * self.coefficients[k]
            for k, name in enumerate(self.TERM_NAMES)
        }

    def describe(self) -> str:
        idle, read, write, act = self.coefficients
        return (
            f"P = {idle:.2f} + {read:.3g}*reads/us + {write:.3g}*writes/us "
            f"+ {act:.3g}*activations/us  [local DRAM events]"
        )
