"""Heath-style OS-event power model.

Heath et al. (ASPLOS 2006, Mercury/Freon) model CPU and disk power from
operating-system counters (utilisation, disk sectors transferred).
This works, but reading OS counters costs system calls per sample where
reading on-chip counters costs a few register accesses — the overhead
argument of the paper's Section 2.2.2.  The model here consumes the
simulator's OS-level events (``OS_DISK_SECTORS``, scheduler activity)
and also exposes an estimated per-sample overhead so benchmarks can
compare sampling costs.
"""

from __future__ import annotations

import numpy as np

from repro.core.events import Event, Subsystem
from repro.core.regression import FitDiagnostics, fit_least_squares
from repro.core.traces import CounterTrace, MeasuredRun

#: Approximate cost of reading one OS counter via procfs (cycles):
#: open/read/close plus kernel formatting.  On-chip counter reads cost
#: ~100 cycles of register access per event.
OS_COUNTER_READ_CYCLES = 60000.0
ONCHIP_COUNTER_READ_CYCLES = 100.0


class HeathOsModel:
    """CPU + disk power from OS-visible activity counters."""

    def __init__(self, cpu_coeffs: np.ndarray, disk_coeffs: np.ndarray) -> None:
        self.cpu_coeffs = np.asarray(cpu_coeffs, dtype=float)
        self.disk_coeffs = np.asarray(disk_coeffs, dtype=float)
        if self.cpu_coeffs.shape != (2,) or self.disk_coeffs.shape != (2,):
            raise ValueError("expected [idle, slope] per subsystem")
        self.cpu_diagnostics: "FitDiagnostics | None" = None
        self.disk_diagnostics: "FitDiagnostics | None" = None

    @staticmethod
    def _cpu_utilization(trace: CounterTrace) -> np.ndarray:
        cycles = trace.per_cpu(Event.CYCLES)
        halted = trace.per_cpu(Event.HALTED_CYCLES)
        return (1.0 - halted / cycles).mean(axis=1)

    @staticmethod
    def _disk_sector_rate(trace: CounterTrace) -> np.ndarray:
        return trace.rate(Event.OS_DISK_SECTORS) / 1.0e3

    @classmethod
    def fit(cls, cpu_run: MeasuredRun, disk_run: MeasuredRun) -> "HeathOsModel":
        cpu_design = np.column_stack(
            [
                np.ones(cpu_run.n_samples),
                cls._cpu_utilization(cpu_run.counters),
            ]
        )
        cpu_coeffs, cpu_diag = fit_least_squares(
            cpu_design, cpu_run.power.power(Subsystem.CPU)
        )
        disk_design = np.column_stack(
            [
                np.ones(disk_run.n_samples),
                cls._disk_sector_rate(disk_run.counters),
            ]
        )
        disk_coeffs, disk_diag = fit_least_squares(
            disk_design, disk_run.power.power(Subsystem.DISK)
        )
        model = cls(cpu_coeffs, disk_coeffs)
        model.cpu_diagnostics = cpu_diag
        model.disk_diagnostics = disk_diag
        return model

    def predict_cpu(self, trace: CounterTrace) -> np.ndarray:
        utilization = self._cpu_utilization(trace)
        return self.cpu_coeffs[0] + self.cpu_coeffs[1] * utilization

    def predict_disk(self, trace: CounterTrace) -> np.ndarray:
        sectors = self._disk_sector_rate(trace)
        return self.disk_coeffs[0] + self.disk_coeffs[1] * sectors

    def attribute(self, trace: CounterTrace) -> "dict[str, np.ndarray]":
        """Per-term watts, namespaced per modelled subsystem.

        The terms sum exactly to ``predict_cpu + predict_disk`` (this
        model covers two power domains, so its terms carry a
        ``cpu:``/``disk:`` prefix instead of being flat).
        """
        n = trace.n_samples
        utilization = self._cpu_utilization(trace)
        sectors = self._disk_sector_rate(trace)
        return {
            "cpu:idle": np.full(n, self.cpu_coeffs[0]),
            "cpu:utilization": self.cpu_coeffs[1] * utilization,
            "disk:idle": np.full(n, self.disk_coeffs[0]),
            "disk:sector_rate": self.disk_coeffs[1] * sectors,
        }

    @staticmethod
    def sampling_overhead_cycles(n_counters: int, os_based: bool) -> float:
        """Per-sample cost of reading ``n_counters`` counters."""
        if n_counters < 0:
            raise ValueError("n_counters must be non-negative")
        per_read = OS_COUNTER_READ_CYCLES if os_based else ONCHIP_COUNTER_READ_CYCLES
        return n_counters * per_read

    def describe(self) -> str:
        return (
            f"CPU: P = {self.cpu_coeffs[0]:.2f} + {self.cpu_coeffs[1]:.2f}*util; "
            f"Disk: P = {self.disk_coeffs[0]:.2f} + "
            f"{self.disk_coeffs[1]:.3g}*ksectors/s  [OS events]"
        )
