"""Data-acquisition card: 10 kHz sampling averaged per counter window.

The DAQ nominally takes ten thousand samples per second per channel and
the offline tooling averages all samples between two synchronisation
pulses.  The simulator integrates true power per tick (its ticks are
coarser than 100 us), so the window average is exact up to acquisition
noise; the noise of the averaged window is the per-sample noise
attenuated by sqrt(samples per window), plus a small common-mode
electrical residual that does not average out.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.events import Subsystem
from repro.core.traces import PowerTrace
from repro.measurement.sensors import PowerSensors
from repro.simulator.config import MeasurementConfig

#: Correlated electrical noise that survives window averaging (relative).
_RESIDUAL_NOISE_REL = 0.0015


class DataAcquisition:
    """Per-window energy integration with acquisition noise."""

    def __init__(
        self,
        sensors: PowerSensors,
        config: MeasurementConfig,
        rng: np.random.Generator,
    ) -> None:
        self.sensors = sensors
        self.config = config
        self._rng = rng
        self._window_energy = {s: 0.0 for s in sensors.subsystems}
        #: Flattened analog chain for the per-tick fast path:
        #: (subsystem, gain, drift phase) per channel.
        self._chain = tuple(
            (s, sensors.gain(s), sensors._drift_phase[s])
            for s in sensors.subsystems
        )
        self._two_pi = 2.0 * math.pi
        self._window_start_s = 0.0
        self._timestamps: list[float] = []
        self._means: dict[Subsystem, list[float]] = {
            s: [] for s in sensors.subsystems
        }

    def record_tick(
        self, true_power_w: "dict[Subsystem, float]", now_s: float, dt_s: float
    ) -> None:
        """Integrate one tick of true power through the analog chain.

        Inlines :meth:`PowerSensors.observe` with the same arithmetic
        (gain then drift, identical association); the time-dependent
        part of the drift angle is shared by every channel, so it is
        computed once per tick instead of once per channel.
        """
        angle = self._two_pi * now_s / PowerSensors._DRIFT_PERIOD_S
        drift_rel = self.config.drift_rel
        window_energy = self._window_energy
        sin = math.sin
        for subsystem, gain, phase in self._chain:
            drift = 1.0 + drift_rel * sin(angle + phase)
            window_energy[subsystem] += true_power_w[subsystem] * gain * drift * dt_s

    def close_window(self, pulse_time_s: float) -> None:
        """A sync pulse arrived: emit the averaged window."""
        duration = pulse_time_s - self._window_start_s
        if duration <= 0:
            raise ValueError("sync pulses must advance in time")
        samples_in_window = max(1.0, self.config.daq_rate_hz * duration)
        averaged_noise_rel = self.config.daq_noise_rel / math.sqrt(samples_in_window)
        for subsystem in self.sensors.subsystems:
            mean = self._window_energy[subsystem] / duration
            noise_rel = math.hypot(averaged_noise_rel, _RESIDUAL_NOISE_REL)
            mean *= 1.0 + noise_rel * float(self._rng.standard_normal())
            self._means[subsystem].append(mean)
            self._window_energy[subsystem] = 0.0
        self._timestamps.append(pulse_time_s)
        self._window_start_s = pulse_time_s

    def finish(self) -> PowerTrace:
        if not self._timestamps:
            raise ValueError("no measurement windows closed; missing sync pulses?")
        return PowerTrace(
            timestamps=np.asarray(self._timestamps),
            watts={
                s: np.asarray(values) for s, values in self._means.items()
            },
        )
