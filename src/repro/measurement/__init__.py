"""Power-measurement apparatus: sense resistors, DAQ, synchronisation.

The paper measures each subsystem through a series sense resistor whose
voltage drop a data-acquisition card in a second workstation samples at
10 kHz; samples are averaged per one-second counter window, aligned via
a serial-port synchronisation pulse.  This package simulates that
apparatus, including per-domain gain error, slow drift and acquisition
noise.
"""

from repro.measurement.sensors import PowerSensors
from repro.measurement.daq import DataAcquisition
from repro.measurement.sync import align_windows

__all__ = ["PowerSensors", "DataAcquisition", "align_windows"]
