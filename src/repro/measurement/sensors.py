"""Sense-resistor front end.

Each power domain is measured through a series resistor; because the
supply voltage is regulated, the voltage drop is proportional to the
subsystem's current and hence power.  Real resistors have tolerance
(per-domain gain error, fixed for a run) and the analog chain drifts
slowly with temperature.  Both imperfections are applied here, before
the DAQ's per-sample noise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.events import Subsystem
from repro.simulator.config import MeasurementConfig


class PowerSensors:
    """Applies per-domain gain and drift to true power readings."""

    #: Thermal drift period (seconds) — slow compared with any run.
    _DRIFT_PERIOD_S = 900.0

    def __init__(
        self,
        subsystems: "tuple[Subsystem, ...] | list[Subsystem]",
        config: MeasurementConfig,
        rng: np.random.Generator,
    ) -> None:
        self.subsystems = tuple(subsystems)
        self.config = config
        self._gains = {
            s: 1.0 + float(rng.normal(0.0, config.gain_error_rel))
            for s in self.subsystems
        }
        self._drift_phase = {
            s: float(rng.uniform(0.0, 2.0 * math.pi)) for s in self.subsystems
        }

    def gain(self, subsystem: Subsystem) -> float:
        return self._gains[subsystem]

    def observe(
        self, subsystem: Subsystem, true_power_w: float, now_s: float
    ) -> float:
        """The analog-chain reading for one instant (pre-DAQ)."""
        if true_power_w < 0:
            raise ValueError("true power must be non-negative")
        drift = 1.0 + self.config.drift_rel * math.sin(
            2.0 * math.pi * now_s / self._DRIFT_PERIOD_S + self._drift_phase[subsystem]
        )
        return true_power_w * self._gains[subsystem] * drift
