"""Synchronisation of counter and power streams.

On the real apparatus the two data sources run on different machines:
the target sends a byte over a serial port at each counter sampling and
the DAQ records the transmit line, so the offline tools can match power
windows to counter windows by pulse signature.  In the simulator both
streams are driven from one clock and share pulse times exactly, but
offline data (saved runs, external traces) may still arrive misaligned,
so the alignment utility is provided and used by the pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.core.traces import CounterTrace, PowerTrace, TraceError


def align_windows(
    counters: CounterTrace,
    power: PowerTrace,
    tolerance_s: float = 0.05,
) -> "tuple[CounterTrace, PowerTrace]":
    """Match counter windows to power windows by pulse timestamp.

    Both traces are trimmed to the windows whose timestamps agree
    within ``tolerance_s`` (pulse matching).  Raises
    :class:`~repro.core.traces.TraceError` if fewer than two windows
    align — that means the synchronisation signal was lost.
    """
    if tolerance_s <= 0:
        raise ValueError("tolerance_s must be positive")
    ct, pt = counters.timestamps, power.timestamps
    matches: "list[tuple[int, int]]" = []
    j = 0
    for i, t in enumerate(ct):
        while j < len(pt) and pt[j] < t - tolerance_s:
            j += 1
        if j < len(pt) and abs(pt[j] - t) <= tolerance_s:
            matches.append((i, j))
            j += 1
    if len(matches) < 2:
        raise TraceError(
            "synchronisation failed: fewer than two counter/power windows align"
        )
    ci = np.asarray([m[0] for m in matches])
    pi = np.asarray([m[1] for m in matches])
    aligned_counters = CounterTrace(
        timestamps=counters.timestamps[ci],
        durations=counters.durations[ci],
        counts={e: a[ci] for e, a in counters.counts.items()},
    )
    aligned_power = PowerTrace(
        timestamps=power.timestamps[pi],
        watts={s: a[pi] for s, a in power.watts.items()},
    )
    return aligned_counters, aligned_power
