"""Open-loop traffic generation: users to per-second thread demand.

A datacenter's offered load is not a thread count — it is people.  The
model here maps a (simulated) user population per zone to per-second
worker-thread demand the way capacity planners do: a diurnal activity
wave with per-zone phase offsets (time zones), multiplicative flash
crowds with ramp-up/ramp-down, and regional failover — a zone going
dark hands its active users to the surviving zones, weighted by their
population.  The generator is open-loop: demand never reacts to what
the datacenter manages to serve, which is exactly what makes dropped
thread-seconds a meaningful score.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class ZoneSpec:
    """One availability zone: a node count and a user population.

    ``phase_s`` offsets the diurnal wave (a zone serving a different
    time zone peaks later).
    """

    name: str
    n_nodes: int
    users: float
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"zone {self.name!r} needs at least one node")
        if self.users <= 0:
            raise ValueError(f"zone {self.name!r} needs a positive population")


@dataclass(frozen=True)
class FlashCrowd:
    """A transient demand spike: active users multiply by ``magnitude``.

    ``zone=None`` hits every zone at once (a global event); ``ramp_s``
    is the linear rise and fall time at the window edges.
    """

    start_s: float
    duration_s: float
    magnitude: float = 2.0
    zone: "str | None" = None
    ramp_s: float = 30.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("flash crowd needs a positive duration")
        if self.magnitude < 1.0:
            raise ValueError("magnitude below 1 is not a crowd")
        if self.ramp_s < 0:
            raise ValueError("ramp must be non-negative")

    def envelope(self, t: np.ndarray) -> np.ndarray:
        """0..1 trapezoid over the crowd's window."""
        ramp = max(self.ramp_s, 1.0e-9)
        rise = (t - self.start_s) / ramp
        fall = (self.start_s + self.duration_s - t) / ramp
        return np.clip(np.minimum(np.minimum(rise, fall), 1.0), 0.0, 1.0)


@dataclass(frozen=True)
class ZoneOutage:
    """A regional failure: the zone serves nothing for the window and
    its active users fail over to the surviving zones."""

    zone: str
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("outage needs a positive duration")


@dataclass
class TrafficModel:
    """Per-second offered thread demand for every zone.

    Args:
        zones: the zone layout (unique names).
        users_per_thread: how many concurrently active users one
            worker thread serves (the capacity-planning constant that
            turns millions of users into thousands of threads).
        period_s: diurnal period (compressed day).
        trough_fraction: fraction of the population active at the
            bottom of the wave.
        noise: multiplicative demand noise (std as a fraction).
        flash_crowds: transient spikes.
        outages: regional failover windows.
        seed: RNG seed; identical inputs give identical demand.
    """

    zones: "tuple[ZoneSpec, ...]"
    users_per_thread: float = 25_000.0
    period_s: float = 600.0
    trough_fraction: float = 0.35
    noise: float = 0.05
    flash_crowds: "tuple[FlashCrowd, ...]" = field(default_factory=tuple)
    outages: "tuple[ZoneOutage, ...]" = field(default_factory=tuple)
    seed: int = 7

    def __post_init__(self) -> None:
        self.zones = tuple(self.zones)
        self.flash_crowds = tuple(self.flash_crowds)
        self.outages = tuple(self.outages)
        if not self.zones:
            raise ValueError("need at least one zone")
        names = [zone.name for zone in self.zones]
        if len(set(names)) != len(names):
            raise ValueError(f"zone names must be unique; got {names}")
        if self.users_per_thread <= 0:
            raise ValueError("users_per_thread must be positive")
        if not 0.0 < self.trough_fraction <= 1.0:
            raise ValueError("trough_fraction must be in (0, 1]")
        if self.noise < 0:
            raise ValueError("noise must be non-negative")
        for crowd in self.flash_crowds:
            if crowd.zone is not None and crowd.zone not in names:
                raise ValueError(f"flash crowd names unknown zone {crowd.zone!r}")
        for outage in self.outages:
            if outage.zone not in names:
                raise ValueError(f"outage names unknown zone {outage.zone!r}")

    @property
    def total_users(self) -> float:
        return float(sum(zone.users for zone in self.zones))

    def demand(self, duration_s: int) -> "dict[str, np.ndarray]":
        """Offered thread demand per zone, shape ``(duration_s,)`` ints."""
        if duration_s < 1:
            raise ValueError("duration must be at least one second")
        t = np.arange(duration_s, dtype=float)
        rng = np.random.default_rng(self.seed)
        mid = (1.0 + self.trough_fraction) / 2.0
        amp = (1.0 - self.trough_fraction) / 2.0
        active = np.empty((len(self.zones), duration_s))
        for i, zone in enumerate(self.zones):
            wave = mid - amp * np.cos(
                2.0 * np.pi * (t + zone.phase_s) / self.period_s
            )
            factor = np.ones(duration_s)
            for crowd in self.flash_crowds:
                if crowd.zone is None or crowd.zone == zone.name:
                    factor *= 1.0 + (crowd.magnitude - 1.0) * crowd.envelope(t)
            jitter = 1.0 + self.noise * rng.standard_normal(duration_s)
            active[i] = np.clip(
                zone.users * wave * factor * jitter, 0.0, None
            )
        # Regional failover: a dark zone's active users land on the
        # survivors, split by population.  Overlapping outages stack
        # (a zone dark in any covering window serves nothing).
        index = {zone.name: i for i, zone in enumerate(self.zones)}
        dark = np.zeros((len(self.zones), duration_s), dtype=bool)
        for outage in self.outages:
            window = (t >= outage.start_s) & (
                t < outage.start_s + outage.duration_s
            )
            dark[index[outage.zone]] |= window
        if dark.any():
            moved = np.where(dark, active, 0.0).sum(axis=0)
            weights = np.array([zone.users for zone in self.zones])
            live_weight = np.where(dark, 0.0, weights[:, None]).sum(axis=0)
            for i in range(len(self.zones)):
                share = np.where(
                    (~dark[i]) & (live_weight > 0),
                    weights[i] / np.maximum(live_weight, 1.0e-12),
                    0.0,
                )
                active[i] = np.where(dark[i], 0.0, active[i]) + moved * share
        threads = np.rint(active / self.users_per_thread).astype(np.int64)
        return {
            zone.name: threads[i] for i, zone in enumerate(self.zones)
        }
