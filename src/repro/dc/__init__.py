"""Datacenter-scale energy-proportional power management.

The paper positions its estimator as the sensor for ensemble-level
policies (Section 2.3: node power-down, enclosure budgeting).  This
package closes that loop at datacenter scale, following Subramaniam &
Feng's subsystem-level approach to energy proportionality:

* :mod:`repro.dc.traffic` — an open-loop traffic generator mapping a
  user population to per-second thread demand (diurnal waves, flash
  crowds, regional failover across zones);
* :mod:`repro.dc.policies` — subsystem-level power management: per-node
  DVFS coordination (through :class:`~repro.core.dvfs.DvfsSuiteBank`
  sensing), memory/disk nap states, cluster-wide power capping with
  budget redistribution between zones;
* :mod:`repro.dc.scoring` — energy-proportionality metrics (dynamic
  range, proportionality gap) and estimated-vs-true policy regret;
* :mod:`repro.dc.datacenter` — the simulated datacenter: one fleet
  cluster per zone, thousands of nodes as lanes, every policy acting
  on *estimated* power and scored against ground truth.
"""

from repro.dc.datacenter import (
    Datacenter,
    DatacenterReport,
    ZoneCalibration,
    run_scenario,
    train_zone_bank,
)
from repro.dc.policies import (
    BudgetAllocator,
    NodePowerTable,
    PolicyConfig,
    SubsystemManager,
)
from repro.dc.scoring import (
    energy_proportionality,
    policy_regret,
    scenario_objective,
)
from repro.dc.traffic import FlashCrowd, TrafficModel, ZoneOutage, ZoneSpec

__all__ = [
    "BudgetAllocator",
    "Datacenter",
    "DatacenterReport",
    "FlashCrowd",
    "NodePowerTable",
    "PolicyConfig",
    "SubsystemManager",
    "TrafficModel",
    "ZoneCalibration",
    "ZoneOutage",
    "ZoneSpec",
    "energy_proportionality",
    "policy_regret",
    "run_scenario",
    "scenario_objective",
    "train_zone_bank",
]
