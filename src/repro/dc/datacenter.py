"""The simulated datacenter: zones of fleet lanes under estimated-power
policies, scored against ground truth.

One :class:`~repro.cluster.Cluster` per zone (fleet engine by default,
so a thousand nodes step as lanes of a few ``FleetServer`` passes); per
second the loop is

1. the open-loop :class:`~repro.dc.traffic.TrafficModel` offers each
   zone its thread demand;
2. zone managers request worst-case watts and the
   :class:`~repro.dc.policies.BudgetAllocator` splits the datacenter
   cap (redistributing a dark zone's share to the survivors);
3. each zone's :class:`~repro.dc.policies.SubsystemManager` places
   roles, pstates and loads under its budget;
4. the simulator advances every node one second and produces *true*
   per-node power;
5. the sensor path estimates power from the nodes' performance
   counters through the per-pstate :class:`~repro.core.dvfs.DvfsSuiteBank`
   (the trickle-down estimator is the only power meter the policy has);
6. a :class:`~repro.obs.fleet.FleetDriftMonitor` watches estimated vs
   true per zone — a firing zone falls back to worst-case sensing.

Because the policy steers on estimates while the simulator knows the
truth, the run can report both an energy-proportionality score and the
*regret* of estimate-driven control (same scenario re-run with the
ground-truth sensor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.cluster import BOOT_TIME_S, Cluster, StaticManager
from repro.core.dvfs import DvfsSuiteBank
from repro.core.traces import CounterTrace, concat_runs
from repro.core.training import PAPER_RECIPE, ModelTrainer, TrainingRecipe
from repro.dc.policies import (
    BudgetAllocator,
    NodePowerTable,
    PolicyConfig,
    SubsystemManager,
)
from repro.dc.scoring import (
    DEFAULT_DROP_PENALTY_J,
    energy_proportionality,
    policy_regret,
    scenario_objective,
)
from repro.dc.traffic import TrafficModel
from repro.simulator.config import SystemConfig, fast_config
from repro.simulator.fleet import FleetServer
from repro.workloads.registry import get_workload


# -- calibration -------------------------------------------------------


@dataclass(frozen=True)
class ZoneCalibration:
    """Everything the datacenter's sensing and capping needs per node.

    ``bank`` estimates live power per pstate; ``table`` bounds it
    (worst-case admission currency); ``reference_peak_w`` is the raw
    un-margined full-load node power at p0 — the peak used for the
    energy-proportionality ideal line, shared across policies so their
    EP scores are comparable.
    """

    bank: DvfsSuiteBank
    table: NodePowerTable
    reference_peak_w: float


def _effective_capacities(config: SystemConfig, capacity: int) -> "tuple[int, ...]":
    """Threads a node can serve at each pstate: capacity scaled by
    frequency (service threads need cycles), never below one."""
    nominal = config.cpu.dvfs_states[0].frequency_hz
    return tuple(
        max(1, int(math.floor(capacity * state.frequency_hz / nominal)))
        for state in config.cpu.dvfs_states
    )


def train_zone_bank(
    config: "SystemConfig | None" = None,
    *,
    duration_s: float = 16.0,
    seed: int = 1234,
    service_workload: str = "SPECjbb",
    margin: float = 0.10,
) -> ZoneCalibration:
    """Calibrate the datacenter's power sensor and worst-case table.

    For every pstate on the ladder, a small calibration fleet runs one
    lane per load level (0..capacity threads) of the service workload;
    the pooled lanes train that pstate's trickle-down suite, and the
    full-load lane's worst measurement window (plus ``margin``) becomes
    the pstate's admission bound.
    """
    config = config or fast_config()
    if duration_s < 2.0 * config.measurement.sample_period_s:
        raise ValueError("calibration needs at least two sampling windows")
    spec = get_workload(service_workload)
    spec = replace(
        spec,
        threads=tuple(
            replace(plan, start_time_s=0.0) for plan in spec.threads
        ),
    )
    capacity = len(spec.threads)
    recipe = TrainingRecipe(
        name="dc-pooled",
        specs=tuple(
            replace(s, train_workload="pooled") for s in PAPER_RECIPE.specs
        ),
    )
    trainer = ModelTrainer(recipe=recipe)
    suites = {}
    peaks = []
    reference_peak = 0.0
    for pstate in range(len(config.cpu.dvfs_states)):
        fleet = FleetServer(
            config,
            spec,
            [seed + 100 * pstate + lane for lane in range(capacity + 1)],
        )
        for lane in range(capacity + 1):
            fleet.set_lane_threads(lane, lane)
        fleet.set_all_pstates(pstate)
        runs = fleet.run(duration_s)
        pooled = concat_runs(runs)
        suites[pstate] = trainer.train({"pooled": pooled})
        # Worst-case node watts at this pstate: the full-load lane's
        # highest measurement window.
        full = runs[-1]
        totals = np.zeros(len(full.power.timestamps))
        for watts in full.power.watts.values():
            totals = totals + np.asarray(watts, dtype=float)
        peak = float(totals.max())
        peaks.append(peak * (1.0 + margin))
        if pstate == 0:
            reference_peak = peak
    table = NodePowerTable(
        peak_w=tuple(peaks),
        eff_capacity=_effective_capacities(config, capacity),
    )
    return ZoneCalibration(
        bank=DvfsSuiteBank(suites),
        table=table,
        reference_peak_w=reference_peak,
    )


# -- the datacenter ----------------------------------------------------


@dataclass
class DatacenterReport:
    """Everything one scenario run produced, JSON-able via ``document``."""

    policy: str
    sensor: str
    engine: str
    cap_w: float
    duration_s: int
    n_nodes: int
    power_w: "list[float]" = field(default_factory=list)
    estimated_power_w: "list[float]" = field(default_factory=list)
    offered_threads: "list[int]" = field(default_factory=list)
    served_threads: "list[int]" = field(default_factory=list)
    zone_power_w: "dict[str, list[float]]" = field(default_factory=dict)
    zone_budget_w: "dict[str, list[float]]" = field(default_factory=dict)
    zone_nodes_active: "dict[str, list[int]]" = field(default_factory=dict)
    cap_violations: int = 0
    boots_denied: int = 0
    cap_enforcements: int = 0
    budget_redistributions: int = 0
    drift_fallback_seconds: int = 0
    drop_penalty_j: float = DEFAULT_DROP_PENALTY_J
    ep_peak_w: float = 0.0

    @property
    def energy_j(self) -> float:
        return float(sum(self.power_w))

    @property
    def max_power_w(self) -> float:
        return float(max(self.power_w)) if self.power_w else 0.0

    @property
    def dropped_thread_seconds(self) -> int:
        return int(
            sum(
                max(0, offered - served)
                for offered, served in zip(
                    self.offered_threads, self.served_threads
                )
            )
        )

    @property
    def objective_j(self) -> float:
        return scenario_objective(
            self.energy_j, self.dropped_thread_seconds, self.drop_penalty_j
        )

    def document(self) -> dict:
        power = np.asarray(self.power_w, dtype=float)
        served = np.asarray(self.served_threads, dtype=float)
        ep = None
        if power.size and self.ep_peak_w > 0 and self._capacity_threads > 0:
            utilization = served / float(self._capacity_threads)
            ep = energy_proportionality(
                power, utilization, peak_power_w=self.ep_peak_w
            )
        return {
            "policy": self.policy,
            "sensor": self.sensor,
            "engine": self.engine,
            "cap_w": self.cap_w,
            "duration_s": self.duration_s,
            "n_nodes": self.n_nodes,
            "energy_j": self.energy_j,
            "max_power_w": self.max_power_w,
            "cap_violations": self.cap_violations,
            "offered_thread_seconds": int(sum(self.offered_threads)),
            "served_thread_seconds": int(sum(self.served_threads)),
            "dropped_thread_seconds": self.dropped_thread_seconds,
            "objective_j": self.objective_j,
            "energy_proportionality": ep,
            "boots_denied": self.boots_denied,
            "cap_enforcements": self.cap_enforcements,
            "budget_redistributions": self.budget_redistributions,
            "drift_fallback_seconds": self.drift_fallback_seconds,
            "zones": {
                zone: {
                    "energy_j": float(sum(self.zone_power_w[zone])),
                    "max_power_w": float(max(self.zone_power_w[zone]))
                    if self.zone_power_w[zone]
                    else 0.0,
                    "mean_budget_w": float(
                        np.mean(self.zone_budget_w[zone])
                    )
                    if self.zone_budget_w.get(zone)
                    else None,
                    "mean_nodes_active": float(
                        np.mean(self.zone_nodes_active[zone])
                    ),
                }
                for zone in self.zone_power_w
            },
        }

    def persist(
        self,
        db,
        t0_s: float = 0.0,
        labels: "dict[str, str] | None" = None,
    ) -> int:
        """Append this run's per-second traces to a TSDB.

        The scenario clock is relative (second ``i`` of the run), so
        ``t0_s`` anchors it — pass a wall-clock epoch to interleave
        several runs in one store, or leave 0 for a single run.  Extra
        ``labels`` (beyond the automatic ``policy``/``sensor``)
        distinguish runs sharing a store.  Returns the number of
        samples appended; the caller flushes.
        """
        base = {"policy": self.policy, "sensor": self.sensor, **(labels or {})}
        appended = 0
        fleet = (
            ("dc_power_watts", self.power_w),
            ("dc_estimated_power_watts", self.estimated_power_w),
            ("dc_offered_threads", self.offered_threads),
            ("dc_served_threads", self.served_threads),
        )
        for name, trace in fleet:
            appender = db.appender(name, base)
            for i, value in enumerate(trace):
                appended += appender.append(t0_s + i, float(value))
        zones = (
            ("dc_zone_power_watts", self.zone_power_w),
            ("dc_zone_budget_watts", self.zone_budget_w),
            ("dc_zone_nodes_active", self.zone_nodes_active),
        )
        for name, per_zone in zones:
            for zone, trace in per_zone.items():
                appender = db.appender(name, {**base, "zone": zone})
                for i, value in enumerate(trace):
                    appended += appender.append(t0_s + i, float(value))
        return appended

    #: Total p0 thread capacity, set by the datacenter after a run.
    _capacity_threads: int = 0


class Datacenter:
    """Zones of simulated nodes under a cluster-wide power cap.

    Args:
        traffic: the scenario's open-loop demand model; its zone specs
            define the layout.
        cap_w: datacenter-wide power cap (Watts).
        config: per-node system config (default :func:`fast_config`).
        engine: ``"fleet"`` (lanes of shared vector servers) or
            ``"scalar"`` (one scalar server per node).
        policy: ``"subsystem"`` (DVFS + naps + capping on estimated
            power) or ``"static"`` (all nodes on at p0, round-robin —
            the uncapped baseline EP is scored against).
        sensor: ``"estimated"`` (policies see only trickle-down
            estimates) or ``"true"`` (policies see ground truth — the
            regret reference).
        calibration: a :class:`ZoneCalibration`; trained on demand when
            omitted.
    """

    def __init__(
        self,
        traffic: TrafficModel,
        cap_w: float,
        config: "SystemConfig | None" = None,
        engine: str = "fleet",
        policy: str = "subsystem",
        sensor: str = "estimated",
        calibration: "ZoneCalibration | None" = None,
        seed: int = 11,
        service_workload: str = "SPECjbb",
        boot_time_s: float = BOOT_TIME_S,
        policy_config: "PolicyConfig | None" = None,
        drop_penalty_j: float = DEFAULT_DROP_PENALTY_J,
        drift_slo_pct: float = 10.0,
    ) -> None:
        if policy not in ("subsystem", "static"):
            raise ValueError(f"unknown policy {policy!r}")
        if sensor not in ("estimated", "true"):
            raise ValueError(f"unknown sensor {sensor!r}")
        if cap_w <= 0:
            raise ValueError("cap must be positive")
        self.traffic = traffic
        self.cap_w = float(cap_w)
        self.config = config or fast_config()
        self.engine = engine
        self.policy = policy
        self.sensor = sensor
        self.drop_penalty_j = drop_penalty_j
        self.calibration = calibration or train_zone_bank(
            self.config, service_workload=service_workload
        )
        self.clusters: "dict[str, Cluster]" = {}
        self.managers: "dict[str, SubsystemManager]" = {}
        offset = 0
        for zone in traffic.zones:
            self.clusters[zone.name] = Cluster(
                n_nodes=zone.n_nodes,
                config=self.config,
                seed=seed + offset,
                service_workload=service_workload,
                boot_time_s=boot_time_s,
                engine=engine,
            )
            offset += zone.n_nodes
            if policy == "subsystem":
                self.managers[zone.name] = SubsystemManager(
                    zone.name, self.calibration.table, policy_config
                )
        self.allocator = (
            BudgetAllocator(self.cap_w) if policy == "subsystem" else None
        )
        self._static = StaticManager() if policy == "static" else None
        from repro.obs.fleet import FleetDriftMonitor

        self.drift = FleetDriftMonitor(
            len(traffic.zones), slo_pct=drift_slo_pct
        )
        self._zone_index = {
            zone.name: i for i, zone in enumerate(traffic.zones)
        }
        self._drift_firing: "set[str]" = set()
        self.last_report: "DatacenterReport | None" = None

    @property
    def n_nodes(self) -> int:
        return sum(len(c.nodes) for c in self.clusters.values())

    @property
    def capacity_threads(self) -> int:
        return sum(c.capacity for c in self.clusters.values())

    # -- sensing -------------------------------------------------------

    def _estimate_zone_w(self, cluster: Cluster, node_powers, stepped) -> float:
        """The zone's power as the policy sees it (Watts).

        ``stepped`` marks the nodes that actually simulated this second
        (available *before* the step — a node that finished booting
        mid-second has no counters yet).  Stepped nodes are estimated
        from their one-second counter deltas through the per-pstate
        bank; parked nodes (off/boot/wake/nap) contribute their
        management-state constants, which the controller knows exactly.
        """
        active = [
            (i, node)
            for i, node in enumerate(cluster.nodes)
            if stepped[i]
        ]
        parked_w = sum(
            node_powers[i]
            for i in range(len(cluster.nodes))
            if not stepped[i]
        )
        if not active:
            return float(parked_w)
        if cluster._fleet is not None:
            lanes = np.fromiter(
                (i for i, _ in active), dtype=np.int64, count=len(active)
            )
            counts = cluster._fleet.read_and_clear_lanes(lanes)
            rows = {event: arr for event, arr in counts.items()}
        else:
            per_node = [node.server.counters.read_and_clear() for _, node in active]
            events = list(per_node[0])
            rows = {
                event: np.vstack(
                    [np.asarray(c[event], dtype=float) for c in per_node]
                )
                for event in events
            }
        estimated = 0.0
        pstates = np.fromiter(
            (node.pstate for _, node in active),
            dtype=np.int64,
            count=len(active),
        )
        for pstate in np.unique(pstates):
            sel = np.nonzero(pstates == pstate)[0]
            trace = CounterTrace(
                timestamps=np.zeros(len(sel)),
                durations=np.ones(len(sel)),
                counts={event: arr[sel] for event, arr in rows.items()},
            )
            totals = self.calibration.bank.predict_total(int(pstate), trace)
            estimated += float(np.sum(totals))
        return float(parked_w) + estimated

    # -- the run loop --------------------------------------------------

    def run(self, duration_s: int) -> DatacenterReport:
        """Run the scenario for ``duration_s`` simulated seconds."""
        demand = self.traffic.demand(duration_s)
        report = DatacenterReport(
            policy=self.policy,
            sensor=self.sensor,
            engine=self.engine,
            cap_w=self.cap_w,
            duration_s=int(duration_s),
            n_nodes=self.n_nodes,
            drop_penalty_j=self.drop_penalty_j,
            ep_peak_w=self.calibration.reference_peak_w * self.n_nodes,
        )
        report._capacity_threads = self.capacity_threads
        for zone in self.clusters:
            report.zone_power_w[zone] = []
            report.zone_budget_w[zone] = []
            report.zone_nodes_active[zone] = []
        sensed: "dict[str, float]" = {zone: 0.0 for zone in self.clusters}
        for t in range(int(duration_s)):
            offered = {
                zone: int(demand[zone][t]) for zone in self.clusters
            }
            # 1-2. request and allocate the cap.
            if self.allocator is not None:
                requests = {
                    zone: self.managers[zone].request_w(
                        self.clusters[zone], offered[zone]
                    )
                    for zone in self.clusters
                }
                budgets = self.allocator.allocate(requests)
            else:
                budgets = {zone: self.cap_w for zone in self.clusters}
            # 3. placement under budget.
            for zone, cluster in self.clusters.items():
                if self._static is not None:
                    self._static.place(
                        cluster, min(offered[zone], cluster.capacity)
                    )
                else:
                    self.managers[zone].place(
                        cluster, offered[zone], budgets[zone]
                    )
            # 4. advance the simulation; ground-truth watts.
            total_true = 0.0
            total_estimated = 0.0
            total_served = 0
            est_arr = np.zeros(len(self.clusters))
            true_arr = np.zeros(len(self.clusters))
            for zone, cluster in self.clusters.items():
                stepped = [node.available for node in cluster.nodes]
                served = sum(
                    node.assigned_threads
                    for node in cluster.nodes
                    if node.available
                )
                node_powers = cluster._step_second()
                true_w = float(sum(node_powers))
                # 5. the sensor path.
                if self.sensor == "estimated":
                    estimated_w = self._estimate_zone_w(
                        cluster, node_powers, stepped
                    )
                else:
                    estimated_w = true_w
                zone_i = self._zone_index[zone]
                est_arr[zone_i] = estimated_w
                true_arr[zone_i] = true_w
                # Feedback for next second: a drift-firing zone falls
                # back to its worst-case envelope instead of trusting
                # the estimator.
                if self.policy == "subsystem":
                    manager = self.managers[zone]
                    if zone in self._drift_firing:
                        sensed[zone] = manager.last_worst_w
                        report.drift_fallback_seconds += 1
                    else:
                        sensed[zone] = estimated_w
                    manager.note_sensed(sensed[zone], budgets[zone])
                total_true += true_w
                total_estimated += estimated_w
                total_served += served
                report.zone_power_w[zone].append(true_w)
                report.zone_budget_w[zone].append(float(budgets[zone]))
                report.zone_nodes_active[zone].append(
                    sum(node.available for node in cluster.nodes)
                )
            # 6. drift monitoring across zones (total stream only).
            transitions = self.drift.observe(
                float(t + 1), {"total": est_arr}, {"total": true_arr}
            )
            for alert in transitions:
                zone = self.traffic.zones[alert.lane].name
                if alert.state == "firing":
                    self._drift_firing.add(zone)
                    obs.event(
                        "dc.drift_fallback", zone=zone, t_s=float(t + 1)
                    )
                else:
                    self._drift_firing.discard(zone)
            report.power_w.append(total_true)
            report.estimated_power_w.append(total_estimated)
            report.offered_threads.append(sum(offered.values()))
            report.served_threads.append(total_served)
            if total_true > self.cap_w and self.policy == "subsystem":
                report.cap_violations += 1
                obs.event(
                    "dc.cap_violation",
                    t_s=float(t + 1),
                    power_w=round(total_true, 1),
                    cap_w=round(self.cap_w, 1),
                )
            if obs.enabled():
                registry = obs.registry()
                registry.gauge("dc_power_watts", total_true)
                registry.gauge("dc_estimated_power_watts", total_estimated)
                registry.gauge("dc_cap_watts", self.cap_w)
                registry.gauge(
                    "dc_offered_threads", sum(offered.values())
                )
                registry.gauge("dc_served_threads", total_served)
                for zone in self.clusters:
                    labels = {"zone": zone}
                    registry.gauge(
                        "dc_zone_power_watts",
                        report.zone_power_w[zone][-1],
                        labels,
                    )
                    registry.gauge(
                        "dc_budget_watts", float(budgets[zone]), labels
                    )
                    registry.gauge(
                        "dc_nodes_active",
                        report.zone_nodes_active[zone][-1],
                        labels,
                    )
        if self.policy == "subsystem":
            report.boots_denied = sum(
                m.boots_denied for m in self.managers.values()
            )
            report.cap_enforcements = sum(
                m.cap_enforcements for m in self.managers.values()
            )
            report.budget_redistributions = self.allocator.redistributions
        self.last_report = report
        return report


# -- scenario orchestration --------------------------------------------


def run_scenario(
    traffic: TrafficModel,
    cap_w: float,
    duration_s: int,
    *,
    config: "SystemConfig | None" = None,
    engine: str = "fleet",
    seed: int = 11,
    calibration: "ZoneCalibration | None" = None,
    include_true_sensor: bool = True,
    include_static: bool = True,
    drop_penalty_j: float = DEFAULT_DROP_PENALTY_J,
    store=None,
) -> dict:
    """Run the full comparison a datacenter scenario is scored by.

    The subsystem policy runs once steering on estimates; optionally
    again steering on ground truth (their objective difference is the
    estimated-vs-true *policy regret*), and the static all-on baseline
    provides the EP reference.  Returns a JSON-able document.

    With a ``store`` (a :class:`~repro.obs.tsdb.TSDB`), every run's
    per-second traces persist as ``dc_*`` series labelled by
    policy/sensor, flushed before returning.
    """
    config = config or fast_config()
    calibration = calibration or train_zone_bank(config)

    def _build(policy: str, sensor: str) -> Datacenter:
        return Datacenter(
            traffic,
            cap_w,
            config=config,
            engine=engine,
            policy=policy,
            sensor=sensor,
            calibration=calibration,
            seed=seed,
            drop_penalty_j=drop_penalty_j,
        )

    doc: dict = {"cap_w": float(cap_w), "duration_s": int(duration_s)}
    estimated = _build("subsystem", "estimated").run(duration_s)
    doc["subsystem_estimated"] = estimated.document()
    if store is not None:
        estimated.persist(store)
    if include_true_sensor:
        true_run = _build("subsystem", "true").run(duration_s)
        doc["subsystem_true"] = true_run.document()
        doc["regret"] = policy_regret(
            estimated.objective_j, true_run.objective_j
        )
        if store is not None:
            true_run.persist(store)
    if include_static:
        static = _build("static", "true").run(duration_s)
        doc["static"] = static.document()
        if store is not None:
            static.persist(store)
        managed_ep = doc["subsystem_estimated"]["energy_proportionality"]
        static_ep = doc["static"]["energy_proportionality"]
        if managed_ep and static_ep:
            doc["ep_comparison"] = {
                "subsystem_ep_score": managed_ep["ep_score"],
                "static_ep_score": static_ep["ep_score"],
                "ep_gain": managed_ep["ep_score"] - static_ep["ep_score"],
            }
    if store is not None:
        store.flush()
    return doc
