"""Energy-proportionality scoring and estimated-vs-true policy regret.

Subramaniam & Feng score subsystem-level power management by how close
a server's power curve comes to the ideal energy-proportional line
``P_ideal(u) = u * P_peak`` (Barroso & Hölzle's target).  The same
metrics apply to a whole datacenter trace:

* **dynamic range** — ``1 - P_min / P_max`` over the run: how much of
  the power envelope the policy actually exercises (an always-on
  cluster scores near 0);
* **proportionality gap** — mean signed excess above the ideal line,
  as a fraction of peak power;
* **EP score** — ``1 - mean(|P(t) - u(t) * P_peak|) / P_peak``: 1.0 is
  perfect proportionality, an idle-heavy flat power curve scores low.

Policy *regret* quantifies what acting on estimates (instead of the
ground-truth power the simulator knows) costs: the same scenario is
run once with the estimated-power sensor and once with the true-power
sensor, and the objectives — energy plus a penalty per dropped
thread-second — are differenced.
"""

from __future__ import annotations

import numpy as np

#: Objective weight: one dropped thread-second costs this many joules
#: (i.e. dropping a thread for a second is as bad as burning ~50 W·s).
DEFAULT_DROP_PENALTY_J = 50.0


def energy_proportionality(
    power_w,
    utilization,
    peak_power_w: "float | None" = None,
) -> "dict[str, float]":
    """EP metrics for a per-second power/utilization trace.

    Args:
        power_w: per-second total power (Watts).
        utilization: per-second served fraction of full capacity, 0..1.
        peak_power_w: the power at full utilization used for the ideal
            line; defaults to the trace's observed maximum.
    """
    p = np.asarray(power_w, dtype=float)
    u = np.clip(np.asarray(utilization, dtype=float), 0.0, 1.0)
    if p.shape != u.shape or p.ndim != 1 or p.size == 0:
        raise ValueError("power and utilization must be equal-length 1-D")
    peak = float(peak_power_w) if peak_power_w else float(p.max())
    if peak <= 0:
        raise ValueError("peak power must be positive")
    ideal = u * peak
    gap = float(np.mean(p - ideal) / peak)
    ep = float(1.0 - np.mean(np.abs(p - ideal)) / peak)
    p_max = float(p.max())
    dynamic_range = float(1.0 - p.min() / p_max) if p_max > 0 else 0.0
    return {
        "ep_score": ep,
        "dynamic_range": dynamic_range,
        "proportionality_gap": gap,
        "peak_power_w": peak,
        "mean_power_w": float(p.mean()),
        "mean_utilization": float(u.mean()),
    }


def scenario_objective(
    energy_j: float,
    dropped_thread_seconds: float,
    drop_penalty_j: float = DEFAULT_DROP_PENALTY_J,
) -> float:
    """The scalar a policy minimizes: energy plus a drop penalty."""
    if drop_penalty_j < 0:
        raise ValueError("drop penalty must be non-negative")
    return float(energy_j) + drop_penalty_j * float(dropped_thread_seconds)


def policy_regret(
    estimated_objective_j: float, true_objective_j: float
) -> "dict[str, float]":
    """Cost of steering on estimates instead of ground truth.

    Positive regret means the estimate-driven run did worse; a small
    magnitude is the estimator earning its keep as a control sensor.
    """
    regret = float(estimated_objective_j) - float(true_objective_j)
    denom = max(abs(float(true_objective_j)), 1.0e-9)
    return {
        "regret_j": regret,
        "regret_pct": 100.0 * regret / denom,
        "estimated_objective_j": float(estimated_objective_j),
        "true_objective_j": float(true_objective_j),
    }
