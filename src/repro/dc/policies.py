"""Subsystem-level power management policies for the datacenter.

Three cooperating mechanisms, after Subramaniam & Feng:

* **Per-node DVFS coordination** — every active node is placed on the
  ladder each second; the last (partially loaded) node of a zone runs
  deeper than its siblings, so a zone is genuinely heterogeneous.
  Slower pstates serve fewer threads per node (service threads need
  cycles), which is what makes the operating point a real trade-off.
* **Memory/disk nap states** — drained nodes drop into the nap
  ensemble (DRAM self-refresh, disks spun down) before powering off;
  a small warm reserve stays napping because nap exit is seconds, not
  a full boot.
* **Cluster-wide power capping** — a :class:`BudgetAllocator` splits
  the datacenter cap between zones by request and redistributes
  surplus; each zone's :class:`SubsystemManager` admits state
  transitions against a calibrated worst-case table, so *true* power
  never exceeds the cap even though every feedback decision runs on
  *estimated* power.

The estimator is the sensor: `note_sensed` takes the zone's estimated
watts and moves a DVFS ceiling (deepen when estimates approach the
budget, relax when they fall away).  Ground truth is only used by the
simulator to score the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.cluster import (
    BOOT_POWER_W,
    NAP_EXIT_POWER_W,
    NAP_POWER_W,
    STANDBY_POWER_W,
)


@dataclass(frozen=True)
class PolicyConfig:
    """Knobs of the subsystem-level policy."""

    #: Drained nodes kept napping as a warm reserve (fast wake) before
    #: the rest power down.
    nap_reserve_nodes: int = 1
    #: Sensed/budget ratio above which the DVFS ceiling deepens.
    emergency_frac: float = 0.92
    #: Sensed/budget ratio below which the ceiling relaxes.
    relax_frac: float = 0.75

    def __post_init__(self) -> None:
        if self.nap_reserve_nodes < 0:
            raise ValueError("nap reserve must be non-negative")
        if not 0.0 < self.relax_frac < self.emergency_frac <= 1.5:
            raise ValueError("need 0 < relax_frac < emergency_frac")


@dataclass(frozen=True)
class NodePowerTable:
    """Calibrated worst-case node behaviour per DVFS point.

    ``peak_w[p]`` bounds one available node's true watts at pstate
    ``p`` (calibration margin included) — the admission currency of
    the cap guarantee.  ``eff_capacity[p]`` is how many service
    threads a node can actually serve at that frequency.
    """

    peak_w: "tuple[float, ...]"
    eff_capacity: "tuple[int, ...]"

    def __post_init__(self) -> None:
        if not self.peak_w or len(self.peak_w) != len(self.eff_capacity):
            raise ValueError("peak_w and eff_capacity must align per pstate")
        if any(w <= 0 for w in self.peak_w):
            raise ValueError("peak watts must be positive")
        if any(c < 1 for c in self.eff_capacity):
            raise ValueError("every pstate must serve at least one thread")

    @property
    def n_states(self) -> int:
        return len(self.peak_w)

    def node_worst_w(self, node) -> float:
        """Worst-case watts for a node's *current* second."""
        if not node.powered:
            return STANDBY_POWER_W
        if node.booting:
            return BOOT_POWER_W
        if node.waking:
            return NAP_EXIT_POWER_W
        if node.napping:
            return NAP_POWER_W
        return self.peak_w[node.pstate]


class SubsystemManager:
    """One zone's subsystem-level power manager.

    Stateless placement would re-derive everything each second; the
    manager keeps only the DVFS ceiling (the estimate-driven feedback
    state) and event dedup markers.
    """

    def __init__(
        self,
        zone: str,
        table: NodePowerTable,
        policy: "PolicyConfig | None" = None,
    ) -> None:
        self.zone = zone
        self.table = table
        self.policy = policy or PolicyConfig()
        #: Fastest pstate currently allowed (0 = full speed); deepens
        #: when sensed power crowds the budget.
        self.ceiling = 0
        self.last_worst_w = 0.0
        self.boots_denied = 0
        self.cap_enforcements = 0

    # -- sensing -------------------------------------------------------

    def note_sensed(self, sensed_w: float, budget_w: float) -> None:
        """Feedback from the power sensor (estimated watts)."""
        if budget_w <= 0:
            return
        ratio = sensed_w / budget_w
        deepest = self.table.n_states - 1
        if ratio > self.policy.emergency_frac and self.ceiling < deepest:
            self.ceiling += 1
            obs.event(
                "dc.dvfs_ceiling",
                zone=self.zone,
                ceiling=self.ceiling,
                direction="deepen",
                sensed_ratio=round(ratio, 3),
            )
        elif ratio < self.policy.relax_frac and self.ceiling > 0:
            self.ceiling -= 1
            obs.event(
                "dc.dvfs_ceiling",
                zone=self.zone,
                ceiling=self.ceiling,
                direction="relax",
                sensed_ratio=round(ratio, 3),
            )

    # -- budget accounting ---------------------------------------------

    def worst_case_w(self, cluster) -> float:
        return sum(self.table.node_worst_w(node) for node in cluster.nodes)

    def request_w(self, cluster, demand: int) -> float:
        """Worst-case watts to serve ``demand`` fully (allocator input)."""
        table = self.table
        states = range(self.ceiling, table.n_states)
        p_star = min(
            states, key=lambda p: table.peak_w[p] / table.eff_capacity[p]
        )
        n_nodes = len(cluster.nodes)
        n_need = min(
            n_nodes,
            max(1, math.ceil(demand / table.eff_capacity[p_star])),
        )
        reserve = min(self.policy.nap_reserve_nodes, n_nodes - n_need)
        idle = n_nodes - n_need - reserve
        return (
            n_need * table.peak_w[p_star]
            + reserve * NAP_POWER_W
            + idle * STANDBY_POWER_W
        )

    # -- placement -----------------------------------------------------

    def place(self, cluster, demand: int, budget_w: float) -> "dict":
        """One second of zone control: roles, pstates, loads, admission.

        Every transition is admitted against the worst-case table, so
        the zone's true power this second stays under ``budget_w``
        (given the table's calibration margin holds).
        """
        nodes = cluster.nodes
        table = self.table
        deepest = table.n_states - 1

        # -- choose the zone's run pstate and active-node target ------
        best = None
        for p in range(self.ceiling, table.n_states):
            cap = table.eff_capacity[p]
            afford = int(budget_w // table.peak_w[p])
            n_use = min(len(nodes), max(1, math.ceil(demand / cap)) if demand else 1, max(afford, 0))
            served = min(demand, n_use * cap)
            key = (-served, n_use * table.peak_w[p])
            if best is None or key < best[0]:
                best = (key, p, n_use)
        _, p_run, want_active = best

        # -- roles: stable prefix active, then warm naps, rest off ----
        reserve = self.policy.nap_reserve_nodes
        n_parked = max(len(nodes) - want_active, 0)
        n_naps = min(reserve, n_parked)
        park_floor_w = (
            n_naps * NAP_POWER_W + (n_parked - n_naps) * STANDBY_POWER_W
        )
        activation_budget_w = budget_w - park_floor_w
        committed = 0.0
        active: "list" = []
        for i, node in enumerate(nodes):
            if i < want_active:
                committed += self._activate(
                    node, p_run, committed, activation_budget_w
                )
                if node.available:
                    active.append(node)
            elif i < want_active + reserve:
                committed += self._park(node, nap=True)
            else:
                committed += self._park(node, nap=False)

        # -- loads: drain then pack; the boundary node runs deeper ----
        for node in active:
            node.set_load(0)
        remaining = demand
        for j, node in enumerate(active):
            node.set_pstate(p_run)
            take = min(table.eff_capacity[p_run], node.capacity, remaining)
            if 0 < take < table.eff_capacity[p_run] or (
                take == 0 and j == len(active) - 1
            ):
                # Partial (or idle-hot) node: deepest pstate that still
                # covers its residual — per-node DVFS inside the zone.
                for q in range(deepest, p_run - 1, -1):
                    if table.eff_capacity[q] >= max(take, 1):
                        node.set_pstate(q)
                        break
            node.set_load(take)
            remaining -= take

        # -- conformance: the hard cap invariant ----------------------
        worst = self.worst_case_w(cluster)
        if worst > budget_w:
            worst = self._shed(cluster, worst, budget_w)
        self.last_worst_w = worst
        return {
            "p_run": p_run,
            "want_active": want_active,
            "worst_case_w": worst,
            "unserved": max(0, remaining),
        }

    def _activate(
        self, node, p_run: int, committed: float, budget_w: float
    ) -> float:
        """Bring one node toward serving; returns its committed watts."""
        table = self.table
        if node.available:
            node.set_pstate(p_run)
            return table.peak_w[node.pstate]
        if node.napping:
            cost = max(NAP_EXIT_POWER_W, table.peak_w[p_run])
            if committed + cost <= budget_w:
                node.wake()
                return NAP_EXIT_POWER_W
            return NAP_POWER_W
        if node.waking:
            return NAP_EXIT_POWER_W
        if node.booting:
            return BOOT_POWER_W
        # Powered off: boot only when the worst case fits both the
        # boot second and the node's eventual active draw.
        cost = max(BOOT_POWER_W, table.peak_w[p_run])
        if committed + cost <= budget_w:
            node.power_up()
            return BOOT_POWER_W
        self.boots_denied += 1
        obs.event(
            "dc.boot_denied",
            zone=self.zone,
            node=node.node_id,
            committed_w=round(committed, 1),
            budget_w=round(budget_w, 1),
        )
        return STANDBY_POWER_W

    def _park(self, node, nap: bool) -> float:
        """Drain a surplus node into nap (warm) or off (cold)."""
        if node.available:
            node.set_load(0)
            if nap:
                node.nap()
                return NAP_POWER_W
            node.power_down()
            return STANDBY_POWER_W
        if node.booting:
            # The satellite-1 semantics: a surplus boot is cancelled
            # immediately instead of burning BOOT_POWER_W to completion.
            node.set_load(0)
            node.power_down()
            return STANDBY_POWER_W
        if node.waking:
            # A wake in flight for a node no longer needed is cancelled
            # the same way a surplus boot is.
            node.power_down()
            return STANDBY_POWER_W
        if node.napping:
            if nap:
                return NAP_POWER_W
            node.power_down()
            return STANDBY_POWER_W
        return STANDBY_POWER_W

    def _shed(self, cluster, worst: float, budget_w: float) -> float:
        """Instantly reduce worst-case power until it fits the budget."""
        self.cap_enforcements += 1
        table = self.table
        deepest = table.n_states - 1
        shed_threads = 0
        # Step 1: deepen every active node (cheapest lever, keeps load
        # up to the deep capacity).
        for node in cluster.nodes:
            if node.available and node.pstate < deepest:
                worst -= table.peak_w[node.pstate] - table.peak_w[deepest]
                node.set_pstate(deepest)
                over = node.assigned_threads - table.eff_capacity[deepest]
                if over > 0:
                    shed_threads += over
                    node.set_load(table.eff_capacity[deepest])
            if worst <= budget_w:
                break
        # Step 2: drain and drop whole nodes from the tail.
        if worst > budget_w:
            for node in reversed(cluster.nodes):
                if node.available:
                    shed_threads += node.assigned_threads
                    node.set_load(0)
                    node.power_down()
                    worst -= table.peak_w[deepest] - STANDBY_POWER_W
                elif node.napping:
                    node.power_down()
                    worst -= NAP_POWER_W - STANDBY_POWER_W
                elif node.powered and node.booting:
                    node.set_load(0)
                    node.power_down()
                    worst -= BOOT_POWER_W - STANDBY_POWER_W
                if worst <= budget_w:
                    break
        obs.event(
            "dc.cap_enforce",
            zone=self.zone,
            worst_case_w=round(worst, 1),
            budget_w=round(budget_w, 1),
            shed_threads=shed_threads,
        )
        return worst


class BudgetAllocator:
    """Splits the datacenter cap between zones and redistributes it.

    Zones request their worst-case need; when the requests fit, each
    zone gets its request plus a proportional share of the leftover
    (headroom lets its manager relax the DVFS ceiling); when they do
    not fit, requests are scaled down proportionally.  Allocation
    shifts — a dark zone's budget flowing to the survivors during
    failover — are logged as ``dc.budget_redistribute`` events.
    """

    def __init__(self, cap_w: float, log_shift_frac: float = 0.05) -> None:
        if cap_w <= 0:
            raise ValueError("cap must be positive")
        self.cap_w = float(cap_w)
        self.log_shift_frac = float(log_shift_frac)
        self.last: "dict[str, float]" = {}
        self.redistributions = 0

    def allocate(self, requests: "dict[str, float]") -> "dict[str, float]":
        if not requests:
            return {}
        total = sum(requests.values())
        if total <= 0:
            share = self.cap_w / len(requests)
            budgets = {zone: share for zone in requests}
        elif total <= self.cap_w:
            leftover = self.cap_w - total
            budgets = {
                zone: req + leftover * (req / total)
                for zone, req in requests.items()
            }
        else:
            scale = self.cap_w / total
            budgets = {zone: req * scale for zone, req in requests.items()}
        if self.last:
            shifts = {
                zone: budgets[zone] - self.last.get(zone, 0.0)
                for zone in budgets
            }
            threshold = self.log_shift_frac * self.cap_w / max(len(budgets), 1)
            if any(abs(delta) > threshold for delta in shifts.values()):
                self.redistributions += 1
                obs.event(
                    "dc.budget_redistribute",
                    cap_w=round(self.cap_w, 1),
                    **{
                        f"zone_{zone}_delta_w": round(delta, 1)
                        for zone, delta in shifts.items()
                    },
                )
        self.last = dict(budgets)
        return budgets
