"""``/proc/interrupts``-style per-vector interrupt accounting.

The Pentium 4 exposes an interrupt *count* as a performance event but
not the interrupt *vector*; the paper therefore reads per-source counts
from the operating system (``/proc/interrupts``), which maintains them
in the interrupt service path.  This module is that OS facility: every
delivered interrupt is attributed to its source vector and to the CPU
that serviced it, and the disk-vector counts feed the paper's disk and
I/O models.
"""

from __future__ import annotations

import enum


class Vector(str, enum.Enum):
    """Interrupt sources on the simulated server."""

    TIMER = "timer"
    DISK = "disk"  # SCSI controller completion interrupts
    NETWORK = "network"
    OTHER = "other"  # IPIs, management controllers, ...

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class InterruptAccounting:
    """Per-(vector, cpu) interrupt counters, cleared on read."""

    def __init__(self, n_packages: int) -> None:
        self.n_packages = n_packages
        self._counts: dict[Vector, list[float]] = {
            vector: [0.0] * n_packages for vector in Vector
        }
        self._next_cpu = 0

    def deliver(self, vector: Vector, count: float, cpu: int | None = None) -> int:
        """Record ``count`` interrupts; returns the servicing CPU.

        I/O interrupts are distributed round-robin across packages
        (irqbalance-style); timer interrupts are per-CPU and must pass
        an explicit ``cpu``.
        """
        if count < 0:
            raise ValueError("interrupt count must be non-negative")
        if cpu is None:
            cpu = self._next_cpu
            self._next_cpu = (self._next_cpu + 1) % self.n_packages
        if not 0 <= cpu < self.n_packages:
            raise ValueError(f"cpu {cpu} out of range")
        self._counts[vector][cpu] += count
        return cpu

    def snapshot(self) -> dict[Vector, list[float]]:
        """Current per-vector, per-CPU counts (not cleared)."""
        return {vector: list(counts) for vector, counts in self._counts.items()}

    def read_and_clear(self) -> dict[Vector, list[float]]:
        """Counts since the last read, as the 1 Hz sampler consumes them."""
        snapshot = self.snapshot()
        for counts in self._counts.values():
            for cpu in range(self.n_packages):
                counts[cpu] = 0.0
        return snapshot

    def per_cpu_total(self) -> list[float]:
        """All-vector totals per CPU (the raw INTERRUPTS counter)."""
        totals = [0.0] * self.n_packages
        for counts in self._counts.values():
            for cpu, value in enumerate(counts):
                totals[cpu] += value
        return totals
