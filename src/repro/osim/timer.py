"""The periodic OS timer interrupt.

Every hardware context receives HZ timer interrupts per second; the
timer is what wakes a halted processor, so even an idle machine shows a
floor of interrupt activity and a small amount of non-halted time (the
paper's idle CPU power of 38.4 W vs. 4 x 9.25 W fully gated).
"""

from __future__ import annotations

from repro.simulator.config import OsConfig


class TimerSource:
    """Accumulates fractional timer interrupts per package per tick."""

    def __init__(self, config: OsConfig, n_packages: int) -> None:
        self.config = config
        self.n_packages = n_packages
        self._residual = [0.0] * n_packages
        #: (per_tick, counts) fast path when ``timer_hz * dt_s`` is a
        #: whole number: residuals stay exactly zero, so every tick
        #: fires the same counts and no per-package arithmetic runs.
        self._steady: "tuple[float, list[int]] | None" = None

    def tick(self, dt_s: float) -> list[int]:
        """Whole timer interrupts delivered to each package this tick."""
        per_tick = self.config.timer_hz * dt_s
        steady = self._steady
        if steady is not None and steady[0] == per_tick:
            return steady[1]
        fired = []
        for package in range(self.n_packages):
            self._residual[package] += per_tick
            whole = int(self._residual[package])
            self._residual[package] -= whole
            fired.append(whole)
        if float(int(per_tick)) == per_tick and not any(self._residual):
            self._steady = (per_tick, fired)
        else:
            self._steady = None
        return fired
