"""The periodic OS timer interrupt.

Every hardware context receives HZ timer interrupts per second; the
timer is what wakes a halted processor, so even an idle machine shows a
floor of interrupt activity and a small amount of non-halted time (the
paper's idle CPU power of 38.4 W vs. 4 x 9.25 W fully gated).
"""

from __future__ import annotations

from repro.simulator.config import OsConfig


class TimerSource:
    """Accumulates fractional timer interrupts per package per tick."""

    def __init__(self, config: OsConfig, n_packages: int) -> None:
        self.config = config
        self.n_packages = n_packages
        self._residual = [0.0] * n_packages

    def tick(self, dt_s: float) -> list[int]:
        """Whole timer interrupts delivered to each package this tick."""
        fired = []
        per_tick = self.config.timer_hz * dt_s
        for package in range(self.n_packages):
            self._residual[package] += per_tick
            whole = int(self._residual[package])
            self._residual[package] -= whole
            fired.append(whole)
        return fired
