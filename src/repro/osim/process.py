"""Workload threads as the OS sees them.

A :class:`SimThread` tracks where a thread is in its phase plan and
applies the workload's within-phase Ornstein-Uhlenbeck modulation so
that rates vary realistically from sample to sample (the paper needs
this variation to train regressions over a wide utilisation range).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.workloads.base import PhaseBehavior, ThreadPlan


class ThreadState(enum.Enum):
    NOT_STARTED = "not_started"
    RUNNABLE = "runnable"
    FINISHED = "finished"


#: Time constant of the OU rate modulation (seconds).
_OU_TAU_S = 8.0


@dataclass
class ThreadActivity:
    """The behaviour a thread presents to the hardware this tick."""

    #: Owning thread (for per-process accounting).
    thread_id: int
    behavior: PhaseBehavior
    #: Multiplier applied to CPU/memory rates this tick (OU modulation).
    modulation: float
    #: Fraction of the tick the thread is runnable (1 - blocking).
    occupancy: float
    #: True when the thread crosses into a sync phase this tick.
    sync_requested: bool
    phase_name: str


class SimThread:
    """Runtime state of one workload thread."""

    def __init__(
        self,
        thread_id: int,
        plan: ThreadPlan,
        variability: float,
        rng: np.random.Generator,
    ) -> None:
        self.thread_id = thread_id
        self.plan = plan
        self.variability = variability
        self._rng = rng
        self._runtime_s = 0.0
        self._ou = 0.0
        self._last_phase_name: str | None = None

    def state(self, now_s: float) -> ThreadState:
        if now_s < self.plan.start_time_s:
            return ThreadState.NOT_STARTED
        if not self.plan.loop and self._runtime_s >= self.plan.cycle_duration_s:
            return ThreadState.FINISHED
        return ThreadState.RUNNABLE

    @property
    def runtime_s(self) -> float:
        """Accumulated runnable time of this thread."""
        return self._runtime_s

    def tick(self, now_s: float, dt_s: float) -> ThreadActivity | None:
        """Advance the thread by one tick; None if not running.

        The OU process modulates CPU and memory rates multiplicatively
        around 1.0 with relative amplitude ``variability``; it evolves
        only while the thread runs, so staggered threads stay
        decorrelated.
        """
        if self.state(now_s) is not ThreadState.RUNNABLE:
            return None
        phase = self.plan.phase_at(self._runtime_s)
        if phase is None:
            return None

        sync_requested = bool(
            phase.behavior.sync_file and phase.name != self._last_phase_name
        )
        self._last_phase_name = phase.name

        # Ornstein-Uhlenbeck step: mean-reverting to 0, stationary std 1.
        alpha = math.exp(-dt_s / _OU_TAU_S)
        noise_scale = math.sqrt(max(0.0, 1.0 - alpha * alpha))
        self._ou = alpha * self._ou + noise_scale * self._rng.standard_normal()
        modulation = max(0.1, 1.0 + self.variability * self._ou)

        occupancy = 1.0 - phase.behavior.blocking_fraction
        self._runtime_s += dt_s
        return ThreadActivity(
            thread_id=self.thread_id,
            behavior=phase.behavior,
            modulation=modulation,
            occupancy=occupancy,
            sync_requested=sync_requested,
            phase_name=phase.name,
        )
