"""Workload threads as the OS sees them.

A :class:`SimThread` tracks where a thread is in its phase plan and
applies the workload's within-phase Ornstein-Uhlenbeck modulation so
that rates vary realistically from sample to sample (the paper needs
this variation to train regressions over a wide utilisation range).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.simulator.rng import NormalStream
from repro.workloads.base import PhaseBehavior, ThreadPlan


class ThreadState(enum.Enum):
    NOT_STARTED = "not_started"
    RUNNABLE = "runnable"
    FINISHED = "finished"


#: Time constant of the OU rate modulation (seconds).
_OU_TAU_S = 8.0

#: dt_s -> (alpha, noise_scale) for the OU step.  The tick length is
#: fixed for a simulation run, so every thread shares one cached pair
#: instead of paying exp/sqrt per thread per tick.
_OU_COEFF_CACHE: dict[float, tuple[float, float]] = {}


def _ou_coefficients(dt_s: float) -> tuple[float, float]:
    coeff = _OU_COEFF_CACHE.get(dt_s)
    if coeff is None:
        alpha = math.exp(-dt_s / _OU_TAU_S)
        noise_scale = math.sqrt(max(0.0, 1.0 - alpha * alpha))
        coeff = (alpha, noise_scale)
        _OU_COEFF_CACHE[dt_s] = coeff
    return coeff


@dataclass(slots=True)
class ThreadActivity:
    """The behaviour a thread presents to the hardware this tick."""

    #: Owning thread (for per-process accounting).
    thread_id: int
    behavior: PhaseBehavior
    #: Multiplier applied to CPU/memory rates this tick (OU modulation).
    modulation: float
    #: Fraction of the tick the thread is runnable (1 - blocking).
    occupancy: float
    #: True when the thread crosses into a sync phase this tick.
    sync_requested: bool
    phase_name: str


class SimThread:
    """Runtime state of one workload thread."""

    def __init__(
        self,
        thread_id: int,
        plan: ThreadPlan,
        variability: float,
        rng: np.random.Generator,
    ) -> None:
        self.thread_id = thread_id
        self.plan = plan
        self.variability = variability
        self._rng = rng
        self._normal = NormalStream(rng)
        self._runtime_s = 0.0
        #: Cycle length and cumulative phase end times, accumulated in
        #: the same order as ``ThreadPlan.phase_at`` so lookups through
        #: the cache compare against bit-identical boundaries.
        self._cycle_s = plan.cycle_duration_s
        bounds: list[float] = []
        elapsed = 0.0
        for phase in plan.phases:
            elapsed += phase.duration_s
            bounds.append(elapsed)
        self._phase_bounds = bounds
        self._phase_idx = 0
        self._ou = 0.0
        self._last_phase_name: str | None = None
        #: Set when a non-looping plan runs out; lets the scheduler skip
        #: the tick() call entirely for dead threads.
        self.finished = False
        #: Per-thread OU coefficient cache (dt is fixed within a run).
        self._coeff_dt = -1.0
        self._ou_alpha = 0.0
        self._ou_noise = 0.0

    def state(self, now_s: float) -> ThreadState:
        if now_s < self.plan.start_time_s:
            return ThreadState.NOT_STARTED
        if not self.plan.loop and self._runtime_s >= self._cycle_s:
            return ThreadState.FINISHED
        return ThreadState.RUNNABLE

    @property
    def runtime_s(self) -> float:
        """Accumulated runnable time of this thread."""
        return self._runtime_s

    def tick(self, now_s: float, dt_s: float) -> ThreadActivity | None:
        """Advance the thread by one tick; None if not running.

        The OU process modulates CPU and memory rates multiplicatively
        around 1.0 with relative amplitude ``variability``; it evolves
        only while the thread runs, so staggered threads stay
        decorrelated.
        """
        # Inline state check (NOT_STARTED / FINISHED), then the phase
        # lookup: equivalent to plan.phase_at(runtime) but remembers the
        # current phase index — threads stay in one phase for many
        # ticks, so the linear boundary scan rarely runs.
        plan = self.plan
        if now_s < plan.start_time_s:
            return None
        runtime = self._runtime_s
        if plan.loop:
            position = runtime % self._cycle_s
        elif runtime >= self._cycle_s:
            self.finished = True
            return None
        else:
            position = runtime
        bounds = self._phase_bounds
        idx = self._phase_idx
        if not (
            position < bounds[idx] and (idx == 0 or position >= bounds[idx - 1])
        ):
            idx = 0
            n_phases = len(bounds)
            while idx < n_phases and position >= bounds[idx]:
                idx += 1
            if idx == n_phases:
                idx = n_phases - 1  # phase_at falls back to the last phase
            self._phase_idx = idx
        phase = plan.phases[idx]

        sync_requested = bool(
            phase.behavior.sync_file and phase.name != self._last_phase_name
        )
        self._last_phase_name = phase.name

        # Ornstein-Uhlenbeck step: mean-reverting to 0, stationary std 1.
        if dt_s != self._coeff_dt:
            self._ou_alpha, self._ou_noise = _ou_coefficients(dt_s)
            self._coeff_dt = dt_s
        self._ou = self._ou_alpha * self._ou + self._ou_noise * self._normal.next()
        modulation = 1.0 + self.variability * self._ou
        if modulation < 0.1:
            modulation = 0.1

        occupancy = 1.0 - phase.behavior.blocking_fraction
        self._runtime_s += dt_s
        return ThreadActivity(
            thread_id=self.thread_id,
            behavior=phase.behavior,
            modulation=modulation,
            occupancy=occupancy,
            sync_requested=sync_requested,
            phase_name=phase.name,
        )
