"""SMP scheduler with sticky affinity and idle clock gating.

Threads are placed on hardware contexts (package, SMT slot) with sticky
affinity, filling one context per package before doubling up — the
policy Linux's O(1) scheduler approximates for CPU-bound threads and
the reason the paper's staggered workloads light packages up one at a
time.  A package whose contexts are all idle executes HLT and its clock
is gated (9.25 W instead of 35.7 W on the target machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.osim.process import SimThread, ThreadActivity


@dataclass(slots=True)
class PackageLoad:
    """Threads running on one package during a tick."""

    package_id: int
    activities: list[ThreadActivity] = field(default_factory=list)

    @property
    def n_running(self) -> int:
        return len(self.activities)

    @property
    def occupancy(self) -> float:
        """Fraction of the tick this package is not halted.

        With at least one runnable thread the package clock runs for the
        union of the threads' runnable fractions (approximated by the
        max; contexts overlap in time under round-robin scheduling).
        """
        if not self.activities:
            return 0.0
        return max(a.occupancy for a in self.activities)


class Scheduler:
    """Sticky-affinity SMP scheduler over ``n_packages`` x ``smt`` slots."""

    def __init__(self, n_packages: int, smt_contexts: int) -> None:
        if n_packages < 1 or smt_contexts < 1:
            raise ValueError("need at least one package and one context")
        self.n_packages = n_packages
        self.smt_contexts = smt_contexts
        #: thread_id -> package_id affinity, assigned on first run.
        self._affinity: dict[int, int] = {}
        #: package_id -> number of threads bound to it.
        self._bound: list[int] = [0] * n_packages
        self.context_switches = 0
        #: Reused per-tick result objects; cleared at the top of tick().
        self._loads = [PackageLoad(package_id=p) for p in range(n_packages)]

    def _place(self, thread_id: int) -> int:
        """Bind a new thread to the least-loaded package (breadth first)."""
        package = min(range(self.n_packages), key=lambda p: (self._bound[p], p))
        self._affinity[thread_id] = package
        self._bound[package] += 1
        self.context_switches += 1
        return package

    def tick(
        self, threads: list[SimThread], now_s: float, dt_s: float
    ) -> list[PackageLoad]:
        """Advance all threads one tick and group activity by package.

        Threads beyond the machine's context count time-share: each
        package runs at most ``smt_contexts`` threads per tick and the
        overflow rotates (handled by capping activities per package and
        scaling occupancy — rare in the paper's workloads, which use at
        most eight threads on eight contexts).

        The returned ``PackageLoad`` objects are reused between calls;
        they are valid until the next ``tick``.
        """
        loads = self._loads
        for load in loads:
            load.activities.clear()
        affinity = self._affinity
        for thread in threads:
            # Cheap pre-checks: a thread whose start time has not
            # arrived, or that already ran out of phases, would return
            # None from tick(); skip the call entirely.
            if thread.finished or now_s < thread.plan.start_time_s:
                continue
            activity = thread.tick(now_s, dt_s)
            if activity is None:
                continue
            package = affinity.get(thread.thread_id)
            if package is None:
                package = self._place(thread.thread_id)
            loads[package].activities.append(activity)

        # Time-share overflow: more threads than contexts on a package.
        for load in loads:
            excess = len(load.activities) - self.smt_contexts
            if excess > 0:
                share = self.smt_contexts / len(load.activities)
                load.activities = [
                    ThreadActivity(
                        thread_id=a.thread_id,
                        behavior=a.behavior,
                        modulation=a.modulation,
                        occupancy=a.occupancy * share,
                        sync_requested=a.sync_requested,
                        phase_name=a.phase_name,
                    )
                    for a in load.activities
                ]
                self.context_switches += excess
        return loads
