"""OS page cache: the structure that decouples file I/O from the disk.

File writes dirty pages in main memory; the disk only sees traffic when
background writeback kicks in (dirty ratio thresholds) or when a thread
calls ``sync()``.  File reads hit the cache with a workload-dependent
ratio.  This decoupling is why the paper found disk power so hard to
model from CPU-local events and fell back to disk-controller
interrupts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.config import OsConfig


@dataclass(slots=True)
class DiskRequest:
    """Bytes the OS submits to the disk subsystem this tick.

    Reads are demand reads (cache misses) and are random-access; writes
    come from writeback, which the elevator clusters into large,
    mostly-sequential requests (both for ``sync()`` flushes and
    background writeback).
    """

    read_bytes: float = 0.0
    write_bytes: float = 0.0
    write_sequential: bool = True

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes


class PageCache:
    """Dirty-page tracking with background and forced writeback."""

    def __init__(self, config: OsConfig) -> None:
        self.config = config
        self.dirty_bytes = 0.0
        self._sync_pending_bytes = 0.0
        self.total_synced_bytes = 0.0

    @property
    def dirty_fraction(self) -> float:
        return self.dirty_bytes / self.config.page_cache_bytes

    @property
    def sync_in_progress(self) -> bool:
        return self._sync_pending_bytes > 0.0

    def request_sync(self) -> None:
        """A thread called ``sync()``: flush everything dirty."""
        self._sync_pending_bytes = self.dirty_bytes

    def tick(
        self,
        write_bps: float,
        read_bps: float,
        read_hit_ratio: float,
        dt_s: float,
        disk_write_capacity_bps: float,
    ) -> DiskRequest:
        """Absorb thread file I/O; emit the disk traffic for this tick.

        Args:
            write_bps: file-write bytes/s issued by all threads.
            read_bps: file-read bytes/s issued by all threads.
            read_hit_ratio: fraction of reads served from the cache.
            dt_s: tick length.
            disk_write_capacity_bps: how fast the disk can absorb
                writeback right now (limits sync drain rate).
        """
        self.dirty_bytes += write_bps * dt_s

        request = DiskRequest()
        request.read_bytes = read_bps * dt_s * (1.0 - read_hit_ratio)

        # Forced (sync) writeback drains at disk speed.
        if self._sync_pending_bytes > 0.0:
            drained = min(
                self._sync_pending_bytes,
                self.dirty_bytes,
                disk_write_capacity_bps * dt_s,
            )
            request.write_bytes += drained
            self._sync_pending_bytes -= drained
            self.dirty_bytes -= drained
            self.total_synced_bytes += drained
            if self.dirty_bytes <= 0.0:
                self._sync_pending_bytes = 0.0
        elif self.dirty_fraction > self.config.dirty_background_ratio:
            # Background writeback: gentle unless dirty_ratio is hit.
            urgency = min(
                1.0,
                (self.dirty_fraction - self.config.dirty_background_ratio)
                / max(
                    1e-9,
                    self.config.dirty_ratio - self.config.dirty_background_ratio,
                ),
            )
            drained = min(
                self.dirty_bytes,
                disk_write_capacity_bps * dt_s * (0.15 + 0.85 * urgency),
            )
            request.write_bytes += drained
            self.dirty_bytes -= drained

        self.dirty_bytes = max(0.0, self.dirty_bytes)
        return request
