"""Operating-system layer of the simulated server (Linux-like).

Provides the behaviours the paper's models depend on: an SMP scheduler
that halts idle processors (clock gating via HLT), the periodic timer
interrupt, a page cache that decouples file I/O from disk activity
(with ``sync()``), and ``/proc/interrupts``-style per-vector interrupt
accounting used to attribute interrupts to the disk controller.
"""

from repro.osim.process import SimThread, ThreadState
from repro.osim.scheduler import Scheduler, PackageLoad
from repro.osim.pagecache import PageCache, DiskRequest
from repro.osim.timer import TimerSource
from repro.osim.procfs import InterruptAccounting, Vector

__all__ = [
    "SimThread",
    "ThreadState",
    "Scheduler",
    "PackageLoad",
    "PageCache",
    "DiskRequest",
    "TimerSource",
    "InterruptAccounting",
    "Vector",
]
