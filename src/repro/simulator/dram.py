"""DDR SDRAM plus northbridge memory controller — ground-truth power.

Power is computed Janzen-style from DRAM-local state: per-access read
and write burst energy (writes cost more), row-activation energy
whenever an access misses the open row, and a constant background
(refresh, controller static).  Row-buffer hit rate interpolates between
a random-access floor and a streaming ceiling using the traffic's
blended streamability, and degrades as more independent request streams
interleave (more threads touching memory = more row conflicts).

None of this state is visible to the processor's counters — that gap is
exactly what limits the paper's CPU-side memory model (it cannot see
the read/write mix or the number of active banks, Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.config import DramConfig


@dataclass(slots=True)
class DramTick:
    """DRAM activity and energy for one tick."""

    reads: float
    writes: float
    activations: float
    row_hit_rate: float
    #: Fraction of the tick at least one bank was active.
    active_fraction: float
    energy_j: float
    power_w: float
    #: Latency inflation the memory controller imposes on the cores
    #: next tick (1.0 = unloaded).  Random streams saturate the DRAM at
    #: a fraction of its streaming throughput, so this is what throttles
    #: mcf-like workloads long before the FSB fills.
    latency_factor: float = 1.0


class DramSubsystem:
    """Bank-state energy model behind the memory controller."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.total_energy_j = 0.0
        self.total_reads = 0.0
        self.total_writes = 0.0
        self.total_activations = 0.0
        # Per-tick constants (config is frozen).
        self._capacity_per_s = config.capacity_access_per_s
        self._read_energy = config.read_energy_j
        self._write_energy = config.write_energy_j
        self._activation_energy = config.activation_energy_j
        self._background_power = config.background_power_w
        self._random_tp = config.random_throughput_factor
        self._congestion = config.congestion_factor
        self._congestion_cap = 1.0 - 1.0 / config.max_latency_factor
        # One-entry memo per call site: the (streamability, streams)
        # pairs repeat tick after tick under steady load.
        self._cpu_hit_key: "tuple[float, float] | None" = None
        self._cpu_hit = 0.0
        self._dma_hit_key: "tuple[float, float] | None" = None
        self._dma_hit = 0.0

    def row_hit_rate(self, streamability: float, stream_count: float) -> float:
        """Open-row hit rate for the blended access pattern.

        Args:
            streamability: 0 (random) .. 1 (streaming) blended pattern.
            stream_count: independent request streams interleaving at
                the controller (threads + DMA channels); more streams
                evict each other's open rows.
        """
        if not 0.0 <= streamability <= 1.0:
            raise ValueError("streamability must be in [0, 1]")
        base = (
            self.config.random_row_hit_rate
            + (self.config.streaming_row_hit_rate - self.config.random_row_hit_rate)
            * streamability
        )
        # Interleaving penalty: each extra stream costs ~3% of locality.
        penalty = 1.0 / (1.0 + 0.03 * max(0.0, stream_count - 1.0))
        return base * penalty

    def tick(
        self,
        cpu_reads: float,
        cpu_writes: float,
        cpu_streamability: float,
        dma_reads: float,
        dma_writes: float,
        stream_count: float,
        dt_s: float,
    ) -> DramTick:
        """Service one tick of memory traffic and account its energy.

        DMA traffic is sequential (disk/network buffers), so it gets
        near-streaming row locality regardless of CPU behaviour.
        """
        capacity = self._capacity_per_s * dt_s
        total = cpu_reads + cpu_writes + dma_reads + dma_writes
        if total > capacity > 0:
            scale = capacity / total
            cpu_reads *= scale
            cpu_writes *= scale
            dma_reads *= scale
            dma_writes *= scale
            total = capacity

        cpu_key = (cpu_streamability, stream_count)
        if cpu_key == self._cpu_hit_key:
            cpu_hit = self._cpu_hit
        else:
            cpu_hit = self.row_hit_rate(cpu_streamability, stream_count)
            self._cpu_hit_key = cpu_key
            self._cpu_hit = cpu_hit
        if cpu_key == self._dma_hit_key:
            dma_hit = self._dma_hit
        else:
            dma_streams = stream_count * 0.25
            if dma_streams < 1.0:
                dma_streams = 1.0
            dma_hit = self.row_hit_rate(0.9, dma_streams)
            self._dma_hit_key = cpu_key
            self._dma_hit = dma_hit
        activations = (cpu_reads + cpu_writes) * (1.0 - cpu_hit) + (
            dma_reads + dma_writes
        ) * (1.0 - dma_hit)

        reads = cpu_reads + dma_reads
        writes = cpu_writes + dma_writes
        energy = (
            reads * self._read_energy
            + writes * self._write_energy
            + activations * self._activation_energy
            + self._background_power * dt_s
        )

        self.total_energy_j += energy
        self.total_reads += reads
        self.total_writes += writes
        self.total_activations += activations

        row_hit = 1.0 - activations / total if total > 0 else 1.0
        # Sustainable throughput shrinks as the access mix gets more
        # random: a row miss costs activate+precharge serialisation.
        effective_capacity = capacity * (
            row_hit + (1.0 - row_hit) * self._random_tp
        )
        utilization = total / effective_capacity if effective_capacity > 0 else 0.0
        congestion = utilization * self._congestion
        if congestion > self._congestion_cap:
            congestion = self._congestion_cap
        latency_factor = 1.0 / (1.0 - congestion)
        return DramTick(
            reads=reads,
            writes=writes,
            activations=activations,
            row_hit_rate=row_hit,
            active_fraction=min(1.0, utilization),
            energy_j=energy,
            power_w=energy / dt_s,
            latency_factor=latency_factor,
        )
