"""Cache-hierarchy traffic generation for one processor package.

Converts executed uops into the off-chip traffic the front-side bus and
DRAM see: demand load misses, dirty writebacks, page walks and hardware
prefetches.  Only the L3 boundary matters for trickle-down modeling (L1
and L2 activity stays on-package and is folded into CPU power), so the
hierarchy is modelled at that boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.config import CacheConfig
from repro.workloads.base import PhaseBehavior


@dataclass(slots=True)
class MemoryTraffic:
    """Off-package traffic produced by one package during a tick.

    All values are transaction counts (cache-line granularity) except
    where noted.  ``streamability`` carries the traffic's row-buffer
    locality forward to the DRAM model.
    """

    demand_load_misses: float = 0.0
    writebacks: float = 0.0
    pagewalk_reads: float = 0.0
    prefetch_requests: float = 0.0
    uncacheable_accesses: float = 0.0
    tlb_misses: float = 0.0
    streamability: float = 0.5

    @property
    def demand_transactions(self) -> float:
        """Transactions that cannot be dropped under congestion."""
        return (
            self.demand_load_misses
            + self.writebacks
            + self.pagewalk_reads
            + self.uncacheable_accesses
        )

    def scaled(self, demand_ratio: float, prefetch_ratio: float) -> "MemoryTraffic":
        """Traffic after bus arbitration granted the given ratios.

        On an unsaturated bus both ratios are exactly 1.0 and scaling
        is the identity (``x * 1.0 == x`` bit-for-bit), so the common
        case returns ``self`` without allocating.  Traffic objects are
        treated as immutable by every consumer.
        """
        if demand_ratio == 1.0 and prefetch_ratio == 1.0:
            return self
        return MemoryTraffic(
            demand_load_misses=self.demand_load_misses * demand_ratio,
            writebacks=self.writebacks * demand_ratio,
            pagewalk_reads=self.pagewalk_reads * demand_ratio,
            prefetch_requests=self.prefetch_requests * prefetch_ratio,
            uncacheable_accesses=self.uncacheable_accesses * demand_ratio,
            tlb_misses=self.tlb_misses,
            streamability=self.streamability,
        )


class CacheHierarchy:
    """Stateless traffic generator for one package.

    The prefetcher follows detected streams: its useful issue rate
    scales with the workload's ``streamability``, and it ramps up under
    memory pressure — when misses queue at the bus, the stream detector
    sees more outstanding references and launches deeper prefetches.
    The ramp is what decouples bus transactions from demand load misses
    at high thread counts (the paper's Figure 4: prefetch traffic grows
    right where the L3-miss memory model starts failing on mcf).
    Dropping prefetches on a *saturated* bus is the bus's decision and
    happens in :mod:`repro.simulator.membus`.
    """

    #: Prefetch ramp per unit of latency inflation, and its cap.
    _PREFETCH_RAMP = 2.6
    _PREFETCH_RAMP_MAX = 5.0

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # latency_ratio is constant within a tick (and usually across
        # ticks on an unsaturated bus); memoise the last ramp value.
        self._ramp_key = -1.0
        self._ramp_value = 1.0
        self._prefetch_per_miss = config.prefetch_per_miss
        self._pagewalk_per_tlb = config.pagewalk_reads_per_tlb_miss

    def prefetch_ramp(self, latency_ratio: float) -> float:
        """Aggressiveness multiplier given current latency inflation."""
        if latency_ratio < 1.0:
            raise ValueError("latency_ratio is relative to base latency (>= 1)")
        ramp = 1.0 + self._PREFETCH_RAMP * (latency_ratio - 1.0)
        if ramp > self._PREFETCH_RAMP_MAX:
            return self._PREFETCH_RAMP_MAX
        return ramp

    def traffic_for(
        self,
        behavior: PhaseBehavior,
        executed_uops: float,
        modulation: float,
        occupancy: float,
        latency_ratio: float,
        dt_s: float,
        sharing_threads: int = 1,
    ) -> MemoryTraffic:
        """Traffic for one thread's execution slice this tick.

        ``sharing_threads`` is how many threads occupy the package's
        cache; footprint pressure converts sharing into extra dirty
        writebacks (early evictions).
        """
        kuops = executed_uops / 1000.0
        load_misses = kuops * behavior.l3_load_misses_per_kuop * modulation
        tlb_misses = kuops * behavior.tlb_misses_per_kuop * modulation
        if latency_ratio == self._ramp_key:
            ramp = self._ramp_value
        else:
            ramp = self.prefetch_ramp(latency_ratio)
            self._ramp_key = latency_ratio
            self._ramp_value = ramp
        prefetches = (
            load_misses * self._prefetch_per_miss * behavior.streamability * ramp
        )
        sharing = sharing_threads - 1
        writeback_ratio = behavior.writeback_ratio * (
            1.0 + behavior.cache_pressure * (sharing if sharing > 0 else 0)
        )
        return MemoryTraffic(
            demand_load_misses=load_misses,
            writebacks=load_misses * writeback_ratio,
            pagewalk_reads=tlb_misses * self._pagewalk_per_tlb,
            prefetch_requests=prefetches,
            uncacheable_accesses=behavior.uncacheable_per_s * dt_s * occupancy,
            tlb_misses=tlb_misses,
            streamability=behavior.streamability,
        )


def merge_traffic(parts: "list[MemoryTraffic]") -> MemoryTraffic:
    """Combine per-thread traffic into package traffic.

    Streamability is averaged weighted by each part's DRAM-visible
    transactions so the DRAM locality model sees the blended pattern.
    """
    total = MemoryTraffic(streamability=0.0)
    weight = 0.0
    for part in parts:
        total.demand_load_misses += part.demand_load_misses
        total.writebacks += part.writebacks
        total.pagewalk_reads += part.pagewalk_reads
        total.prefetch_requests += part.prefetch_requests
        total.uncacheable_accesses += part.uncacheable_accesses
        total.tlb_misses += part.tlb_misses
        # demand_transactions inlined (same summation order).
        part_weight = (
            part.demand_load_misses
            + part.writebacks
            + part.pagewalk_reads
            + part.uncacheable_accesses
            + part.prefetch_requests
        )
        total.streamability += part.streamability * part_weight
        weight += part_weight
    total.streamability = total.streamability / weight if weight > 0 else 0.5
    return total
