"""Thermal model: why counter-based power estimation beats sensors.

The paper's opening argument (Sections 1 and 2.3): packages have
thermal inertia, so a temperature sensor reports a power excursion only
after the die has heated — too late for pre-emptive action — while
performance counters see the *cause* within one sampling period.

Each subsystem is modelled as a first-order RC thermal network:

    C * dT/dt = P - (T - T_ambient) / R

with a time constant tau = R*C of seconds to minutes (package mass,
heatsink).  A :class:`ThermalSensor` adds what real sensors add:
quantisation, a slow sampling period, and a detection threshold.  The
``thermal_emergency`` example and benchmark measure the detection-lead
the paper claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.events import Subsystem

#: Ambient (inlet) temperature used by default (deg C).
DEFAULT_AMBIENT_C = 25.0


@dataclass(frozen=True)
class ThermalParams:
    """First-order thermal network of one subsystem."""

    #: Junction-to-ambient thermal resistance (deg C per Watt).
    resistance_c_per_w: float
    #: Thermal capacitance (Joules per deg C).
    capacitance_j_per_c: float

    def __post_init__(self) -> None:
        if self.resistance_c_per_w <= 0 or self.capacitance_j_per_c <= 0:
            raise ValueError("thermal parameters must be positive")

    @property
    def time_constant_s(self) -> float:
        return self.resistance_c_per_w * self.capacitance_j_per_c

    def steady_state_c(self, power_w: float, ambient_c: float) -> float:
        """Temperature this power settles at (deg C)."""
        return ambient_c + power_w * self.resistance_c_per_w


#: Per-subsystem defaults: CPU packages heat fast behind a heatsink,
#: DIMMs and bulk electronics are slower, the disk is a thermal brick.
DEFAULT_THERMAL_PARAMS: "dict[Subsystem, ThermalParams]" = {
    # CPU: per-package power peaks near 48 W; 1.35 C/W puts a saturated
    # package around 90 C over a 25 C inlet — the regime where 2000s-era
    # Xeons actually throttled.  tau ~ 40 s.
    Subsystem.CPU: ThermalParams(1.35, 30.0),
    Subsystem.CHIPSET: ThermalParams(1.1, 80.0),    # tau ~ 88 s
    Subsystem.MEMORY: ThermalParams(0.9, 130.0),    # tau ~ 117 s
    Subsystem.IO: ThermalParams(0.8, 160.0),        # tau ~ 128 s
    Subsystem.DISK: ThermalParams(0.9, 400.0),      # tau ~ 360 s
}


class RcThermalModel:
    """Integrates subsystem temperatures from per-tick power."""

    def __init__(
        self,
        params: "dict[Subsystem, ThermalParams] | None" = None,
        ambient_c: float = DEFAULT_AMBIENT_C,
    ) -> None:
        self.params = dict(params or DEFAULT_THERMAL_PARAMS)
        self.ambient_c = ambient_c
        self._temperature_c = {s: ambient_c for s in self.params}

    def temperature_c(self, subsystem: Subsystem) -> float:
        try:
            return self._temperature_c[subsystem]
        except KeyError:
            raise KeyError(f"no thermal parameters for {subsystem}") from None

    def settle(self, power_w: "dict[Subsystem, float]") -> None:
        """Jump every subsystem to its steady state for ``power_w``."""
        for subsystem, params in self.params.items():
            self._temperature_c[subsystem] = params.steady_state_c(
                power_w.get(subsystem, 0.0), self.ambient_c
            )

    def step(self, power_w: "dict[Subsystem, float]", dt_s: float) -> None:
        """Advance temperatures by one tick of dissipated power."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        for subsystem, params in self.params.items():
            temperature = self._temperature_c[subsystem]
            power = power_w.get(subsystem, 0.0)
            # Exact solution of the linear ODE over the tick.
            target = params.steady_state_c(power, self.ambient_c)
            alpha = math.exp(-dt_s / params.time_constant_s)
            self._temperature_c[subsystem] = target + (temperature - target) * alpha


class ThermalSensor:
    """A realistic on-board temperature sensor.

    Quantised to ``resolution_c`` and read every ``period_s`` — the
    combination that, with thermal inertia, delays detection of a power
    excursion by tens of seconds.
    """

    def __init__(self, resolution_c: float = 1.0, period_s: float = 2.0) -> None:
        if resolution_c <= 0 or period_s <= 0:
            raise ValueError("sensor parameters must be positive")
        self.resolution_c = resolution_c
        self.period_s = period_s
        self._last_read_s = -float("inf")
        self._last_value_c: "float | None" = None

    def read(self, true_temperature_c: float, now_s: float) -> float:
        """Sensor output at ``now_s`` (held between sampling points)."""
        if now_s >= self._last_read_s + self.period_s or self._last_value_c is None:
            quantised = (
                round(true_temperature_c / self.resolution_c) * self.resolution_c
            )
            self._last_value_c = quantised
            self._last_read_s = now_s
        return self._last_value_c


def detection_lead_s(
    times_s,
    power_w,
    temperature_c,
    power_threshold_w: float,
    temperature_threshold_c: float,
) -> "tuple[float | None, float | None]":
    """(t_power, t_temp): first threshold crossings of each signal.

    Returns None for a signal that never crosses.  The difference is
    the pre-emption window a counter-based power estimate buys over a
    thermal sensor.
    """
    t_power = None
    t_temp = None
    for t, p, temp in zip(times_s, power_w, temperature_c):
        if t_power is None and p > power_threshold_w:
            t_power = float(t)
        if t_temp is None and temp > temperature_threshold_c:
            t_temp = float(t)
        if t_power is not None and t_temp is not None:
            break
    return t_power, t_temp
