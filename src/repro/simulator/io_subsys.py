"""I/O subsystem — ground-truth power of the I/O chips and PCI-X buses.

The server carries two I/O chips providing six 133 MHz PCI-X buses,
mostly idle: the DC term dominates (the paper measures 32.9 W at idle
out of a 35.2 W DiskLoad maximum).  Dynamic power is classic CMOS
switching: energy per byte actually moved plus per-transaction
arbitration overhead.  Write-combining in the I/O chips merges small
transactions, which is what breaks the linearity between
processor-observed DMA accesses and I/O power and makes interrupts the
better trickle-down predictor (paper Section 4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.config import IoConfig


@dataclass(slots=True)
class IoTick:
    """I/O-subsystem activity and power for one tick."""

    bytes_switched: float
    transactions: float
    power_w: float


class IoSubsystem:
    """Static + switching power of the I/O chips."""

    #: Energy of one uncacheable (config/doorbell) access in the chips.
    _UNCACHEABLE_ENERGY_J = 0.15e-6

    def __init__(self, config: IoConfig) -> None:
        self.config = config
        self.total_bytes = 0.0

    def tick(
        self,
        bytes_switched: float,
        transactions: float,
        uncacheable_accesses: float,
        dt_s: float,
    ) -> IoTick:
        if bytes_switched < 0 or transactions < 0:
            raise ValueError("I/O activity must be non-negative")
        energy = (
            bytes_switched * self.config.switching_energy_per_byte_j
            + transactions * self.config.transaction_overhead_j
            + uncacheable_accesses * self._UNCACHEABLE_ENERGY_J
        )
        self.total_bytes += bytes_switched
        return IoTick(
            bytes_switched=bytes_switched,
            transactions=transactions,
            power_w=self.config.static_power_w + energy / dt_s,
        )
