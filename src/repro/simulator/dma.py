"""DMA engine: what a disk/network transfer does to the rest of the box.

The paper leans on the fact that DMA, although it originates in I/O
devices, is *visible to the processor*: every DMA line transfer to
cacheable memory appears on the front-side bus as a coherency snoop,
and DMA completion raises an interrupt.  This module converts served
device bytes into:

* FSB snoop transactions (the ``DMA/Other`` counter food),
* DRAM accesses via the northbridge (device->memory = DRAM writes,
  memory->device = DRAM reads),
* switched bytes/transactions in the I/O chips,
* uncacheable descriptor/doorbell accesses by the driver, and
* completion interrupts (one per device buffer, ~64 KB).

Fractional events accumulate across ticks so 1 ms ticks still deliver
whole interrupts at the right long-run rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.config import IoConfig


@dataclass(slots=True)
class DmaTick:
    """System-wide effects of DMA activity during one tick."""

    #: Coherency snoops on the FSB (cache-line granularity).
    bus_snoops: float
    #: DRAM accesses made by the memory controller for the devices.
    dram_reads: float
    dram_writes: float
    #: Bytes switched through the I/O chips.
    io_bytes: float
    #: PCI-X transactions after write-combining.
    io_transactions: float
    #: Uncacheable driver accesses (descriptor setup, doorbells).
    uncacheable_accesses: float
    #: Whole completion interrupts delivered this tick.
    interrupts: int


class DmaEngine:
    """Stateful converter from device transfers to system-wide events."""

    #: Driver descriptor/doorbell uncacheable accesses per interrupt.
    _UNCACHEABLE_PER_INTERRUPT = 3.0

    def __init__(self, config: IoConfig) -> None:
        self.config = config
        self._interrupt_residual = 0.0
        self.total_interrupts = 0
        # Per-tick constants derived from the (frozen) config.
        self._line_bytes = float(config.line_bytes)
        self._transaction_factor = 1.0 - config.write_combining_efficiency
        self._bytes_per_interrupt = config.bytes_per_interrupt
        # With zero bytes every output is 0.0 and no state changes (the
        # interrupt residual stays < 1 between ticks), so idle ticks all
        # share one result object.  Consumers never mutate DmaTick.
        self._zero_tick = DmaTick(
            bus_snoops=0.0,
            dram_reads=0.0,
            dram_writes=0.0,
            io_bytes=0.0,
            io_transactions=0.0,
            uncacheable_accesses=0.0,
            interrupts=0,
        )

    def tick(
        self,
        device_to_memory_bytes: float,
        memory_to_device_bytes: float,
        background_bytes: float = 0.0,
    ) -> DmaTick:
        """Convert one tick of transfers.

        Args:
            device_to_memory_bytes: inbound data (disk/NIC reads by the
                host) landing in main memory.
            memory_to_device_bytes: outbound data (writeback to disk,
                transmits) leaving main memory.
            background_bytes: non-workload DMA (management traffic,
                patrol activity); splits evenly between directions.
        """
        if device_to_memory_bytes < 0 or memory_to_device_bytes < 0:
            raise ValueError("transfer byte counts must be non-negative")
        inbound = device_to_memory_bytes + background_bytes / 2.0
        outbound = memory_to_device_bytes + background_bytes / 2.0
        total = inbound + outbound
        if total == 0.0:
            return self._zero_tick

        line = self._line_bytes
        snoops = total / line
        # Write-combining merges adjacent PCI transactions at the I/O
        # chip; bytes are unchanged but transaction count drops.
        transactions = (total / 512.0) * self._transaction_factor

        self._interrupt_residual += total / self._bytes_per_interrupt
        interrupts = int(self._interrupt_residual)
        self._interrupt_residual -= interrupts
        self.total_interrupts += interrupts

        return DmaTick(
            bus_snoops=snoops,
            dram_reads=outbound / line,
            dram_writes=inbound / line,
            io_bytes=total,
            io_transactions=transactions,
            uncacheable_accesses=interrupts * self._UNCACHEABLE_PER_INTERRUPT,
            interrupts=interrupts,
        )
