"""One Pentium 4 Xeon-like processor package.

Event-rate core model: per tick, each scheduled thread's behaviour is
converted into executed/fetched uops via a CPI model whose stall
component grows with the current memory latency (the bus feeds
congestion back here), and into off-chip traffic via the cache
hierarchy.  Ground-truth package power includes two components the
fetch-based trickle-down model cannot see:

* speculative window-search activity (mcf fetches one uop every ~10
  cycles yet burns power scanning for ready instructions), and
* a floating-point uop premium.

Clock gating: a package with no runnable thread executes HLT and drops
to ``halted_power_w``; the timer interrupt briefly wakes it, which is
why idle measured power sits slightly above 4 x 9.25 W.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.osim.scheduler import PackageLoad
from repro.simulator.cache import CacheHierarchy, MemoryTraffic
from repro.simulator.config import CacheConfig, CpuConfig


@dataclass(slots=True)
class ThreadTickStat:
    """One thread's share of a package tick (for process accounting)."""

    thread_id: int
    runtime_s: float
    executed_uops: float
    fetched_uops: float
    bus_demand_tx: float


@dataclass(slots=True)
class PackageTick:
    """Everything one package did and consumed during a tick."""

    cycles: float
    halted_cycles: float
    fetched_uops: float
    executed_uops: float
    fp_uops: float
    #: Window-search activity in equivalent uops (power-only).
    speculation_uops: float
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    #: File I/O issued by threads on this package (bytes this tick).
    file_read_bytes: float = 0.0
    file_write_bytes: float = 0.0
    read_hit_ratio: float = 1.0
    sync_requested: bool = False
    #: Network traffic requested by threads on this package (bytes/s).
    net_rx_bps: float = 0.0
    net_tx_bps: float = 0.0
    thread_stats: "tuple[ThreadTickStat, ...]" = ()
    power_w: float = 0.0


class CpuPackage:
    """A physical processor package with SMT contexts.

    Supports per-package DVFS (an extension beyond the paper's
    fixed-frequency machine): ``set_pstate`` selects an operating point
    from the config's ladder; cycle counts, throughput and power all
    follow the new frequency/voltage.
    """

    def __init__(self, package_id: int, cpu: CpuConfig, cache: CacheConfig) -> None:
        self.package_id = package_id
        self.config = cpu
        self.cache = CacheHierarchy(cache)
        self._pstate_index = 0
        self._interrupt_service_cycles = cpu.interrupt_service_cycles
        #: Idle-tick cache effectiveness (read by the telemetry hooks):
        #: total idle finishes vs. cache rebuilds.  Survives pstate
        #: switches, which reset the cache itself.
        self.idle_ticks = 0
        self.idle_tick_builds = 0
        self._refresh_pstate()

    def _refresh_pstate(self) -> None:
        """Cache the per-pstate constants the per-tick paths read.

        Recomputed only on a DVFS switch, so the tick loop pays plain
        attribute loads instead of chained property evaluations.
        """
        state = self.config.dvfs_states[self._pstate_index]
        nominal = self.config.dvfs_states[0].frequency_hz
        self._pstate = state
        self._frequency_hz = state.frequency_hz
        self._voltage_sq = state.voltage_scale**2
        self._power_scale_value = state.voltage_scale**2 * (
            state.frequency_hz / nominal
        )
        # Idle ticks recur with identical (cycles, occupancy); the
        # resulting PackageTick and its power are pure functions of the
        # pair plus the pstate, so cache one of each.  Consumers treat
        # PackageTick as read-only.
        self._idle_tick_key: "tuple[float, float] | None" = None
        self._idle_tick: "PackageTick | None" = None
        self._idle_power = 0.0

    @property
    def pstate_index(self) -> int:
        return self._pstate_index

    def set_pstate(self, index: int) -> None:
        """Switch the package to DVFS state ``index`` (0 = nominal)."""
        if not 0 <= index < len(self.config.dvfs_states):
            raise ValueError(
                f"pstate {index} out of range; package has "
                f"{len(self.config.dvfs_states)} states"
            )
        self._pstate_index = index
        self._refresh_pstate()

    @property
    def pstate(self):
        return self._pstate

    @property
    def frequency_hz(self) -> float:
        return self._frequency_hz

    @property
    def _power_scale(self) -> float:
        """V^2 * f scaling of dynamic power relative to nominal."""
        return self._power_scale_value

    def tick(
        self,
        load: PackageLoad,
        smt_yield: float,
        mem_latency_cycles: float,
        base_latency_cycles: float,
        interrupts: float,
        dt_s: float,
    ) -> PackageTick:
        """Run the package for one tick.

        Args:
            load: threads scheduled here (from the OS scheduler).
            smt_yield: workload's per-thread throughput multiplier when
                contexts are shared.
            mem_latency_cycles: effective memory latency this tick
                (base latency inflated by bus congestion).
            base_latency_cycles: unloaded memory latency (for the
                prefetcher's pressure estimate).
            interrupts: interrupts serviced by this package this tick.
            dt_s: tick length in seconds.
        """
        cycles = self._frequency_hz * dt_s
        interrupt_busy = interrupts * self._interrupt_service_cycles / cycles
        if interrupt_busy > 0.5:
            interrupt_busy = 0.5

        if not load.activities:
            return self._finish_idle_tick(cycles, interrupt_busy)

        latency_ratio = mem_latency_cycles / base_latency_cycles
        if latency_ratio < 1.0:
            latency_ratio = 1.0

        n_running = len(load.activities)
        smt_scale = 1.0 if n_running <= 1 else smt_yield * 2.0 / n_running
        max_upc = self.config.max_uops_per_cycle
        pagewalk_per_tlb = self.cache.config.pagewalk_reads_per_tlb_miss
        traffic_for = self.cache.traffic_for

        fetched = 0.0
        executed = 0.0
        fp_uops = 0.0
        speculation = 0.0
        file_read = 0.0
        file_write = 0.0
        net_rx = 0.0
        net_tx = 0.0
        hit_ratio_weighted = 0.0
        sync_requested = False
        thread_stats = []
        occ_max = 0.0
        # merge_traffic fused into the loop below: each accumulator sums
        # per-thread parts in activity order, exactly as the standalone
        # merge would, but on locals instead of dataclass attributes.
        t_dlm = 0.0
        t_wb = 0.0
        t_pw = 0.0
        t_pf = 0.0
        t_ua = 0.0
        t_tlb = 0.0
        t_stream = 0.0
        t_weight = 0.0

        for activity in load.activities:
            behavior = activity.behavior
            if activity.occupancy > occ_max:
                occ_max = activity.occupancy
            target_upc = behavior.uops_per_cycle * activity.modulation
            if target_upc > max_upc:
                target_upc = max_upc
            if target_upc < 1.0e-6:
                target_upc = 1.0e-6
            cpi_base = 1.0 / target_upc
            misses_per_uop = (
                behavior.l3_load_misses_per_kuop
                + pagewalk_per_tlb * behavior.tlb_misses_per_kuop
            ) / 1000.0
            stall_per_uop = (
                behavior.memory_sensitivity * misses_per_uop * mem_latency_cycles
            )
            thread_cycles = cycles * activity.occupancy
            # CPI is the thread's solo behaviour; SMT contention scales
            # the achieved throughput so that two threads at yield y
            # deliver 2y of one thread's rate.
            thread_executed = smt_scale * thread_cycles / (cpi_base + stall_per_uop)
            thread_fetched = thread_executed * (1.0 + behavior.wrongpath_fraction)

            executed += thread_executed
            fetched += thread_fetched
            fp_uops += thread_executed * behavior.fp_fraction
            speculation += (
                behavior.speculation_factor * thread_cycles * activity.modulation
            )
            traffic = traffic_for(
                behavior,
                thread_executed,
                activity.modulation,
                activity.occupancy,
                latency_ratio,
                dt_s,
                sharing_threads=n_running,
            )
            dlm = traffic.demand_load_misses
            wb = traffic.writebacks
            pw = traffic.pagewalk_reads
            pf = traffic.prefetch_requests
            ua = traffic.uncacheable_accesses
            # bus_demand_tx and the streamability weight are the same
            # five-term sum (demand_transactions + prefetches, inlined
            # in merge order), so compute it once per thread.
            tx = dlm + wb + pw + ua + pf
            t_dlm += dlm
            t_wb += wb
            t_pw += pw
            t_pf += pf
            t_ua += ua
            t_tlb += traffic.tlb_misses
            t_stream += traffic.streamability * tx
            t_weight += tx
            thread_stats.append(
                ThreadTickStat(
                    thread_id=activity.thread_id,
                    runtime_s=dt_s * activity.occupancy,
                    executed_uops=thread_executed,
                    fetched_uops=thread_fetched,
                    bus_demand_tx=tx,
                )
            )
            file_read += behavior.disk_read_bps * dt_s
            file_write += behavior.disk_write_bps * dt_s
            net_rx += behavior.net_rx_bps
            net_tx += behavior.net_tx_bps
            hit_ratio_weighted += (
                behavior.page_cache_hit_ratio * behavior.disk_read_bps * dt_s
            )
            sync_requested = sync_requested or activity.sync_requested

        occupancy = occ_max + interrupt_busy
        if occupancy > 1.0:
            occupancy = 1.0
        halted_cycles = cycles * (1.0 - occupancy)
        read_hit_ratio = hit_ratio_weighted / file_read if file_read > 0 else 1.0

        return PackageTick(
            cycles=cycles,
            halted_cycles=halted_cycles,
            fetched_uops=fetched,
            executed_uops=executed,
            fp_uops=fp_uops,
            speculation_uops=speculation,
            traffic=MemoryTraffic(
                demand_load_misses=t_dlm,
                writebacks=t_wb,
                pagewalk_reads=t_pw,
                prefetch_requests=t_pf,
                uncacheable_accesses=t_ua,
                tlb_misses=t_tlb,
                streamability=t_stream / t_weight if t_weight > 0 else 0.5,
            ),
            file_read_bytes=file_read,
            file_write_bytes=file_write,
            read_hit_ratio=read_hit_ratio,
            sync_requested=sync_requested,
            net_rx_bps=net_rx,
            net_tx_bps=net_tx,
            thread_stats=tuple(thread_stats),
        )

    def _finish_idle_tick(self, cycles: float, occupancy: float) -> PackageTick:
        """A package with nothing to run: halted except interrupt wakes.

        Idle ticks repeat with the same (cycles, occupancy) — the timer
        delivers a constant interrupt count — so the tick object and its
        power are cached and shared.  Consumers never mutate ticks.
        """
        key = (cycles, occupancy)
        self.idle_ticks += 1
        if self._idle_tick_key == key:
            tick = self._idle_tick
            assert tick is not None
            return tick
        self.idle_tick_builds += 1
        tick = PackageTick(
            cycles=cycles,
            halted_cycles=cycles * (1.0 - occupancy),
            fetched_uops=cycles * occupancy * 0.4,  # interrupt-handler uops
            executed_uops=cycles * occupancy * 0.35,
            fp_uops=0.0,
            speculation_uops=0.0,
        )
        self._idle_tick_key = key
        self._idle_tick = tick
        self._idle_power = self._compute_power(tick)
        return tick

    def power(self, tick: PackageTick) -> float:
        """Ground-truth package power for a finished tick (Watts)."""
        if tick is self._idle_tick:
            return self._idle_power
        return self._compute_power(tick)

    def _compute_power(self, tick: PackageTick) -> float:
        cfg = self.config
        cycles = tick.cycles
        executed_uops = tick.executed_uops
        occupancy = 1.0 - tick.halted_cycles / cycles
        fetched_upc = tick.fetched_uops / cycles
        executed_upc = executed_uops / cycles
        spec_upc = tick.speculation_uops / cycles
        fp_share = tick.fp_uops / executed_uops if executed_uops > 0 else 0.0
        # A stalled-but-active package burns less than the full
        # active-idle delta: clocks run, execution units quiesce.
        issue_intensity = executed_upc / (occupancy if occupancy > 1.0e-9 else 1.0e-9)
        if issue_intensity > 1.0:
            issue_intensity = 1.0
        stall_fraction = cfg.stall_power_fraction
        active_scale = stall_fraction + (1.0 - stall_fraction) * issue_intensity
        dynamic = (
            cfg.uop_power_w * fetched_upc * (1.0 + cfg.fp_power_premium * fp_share)
            + cfg.speculation_power_w * spec_upc
        )
        # DVFS: dynamic and active-baseline power scale with V^2*f;
        # gated power scales with V^2 (leakage under the lower rail).
        scale = self._power_scale_value
        halted_power = cfg.halted_power_w
        return (
            halted_power * self._voltage_sq
            + (cfg.active_idle_power_w - halted_power)
            * occupancy
            * active_scale
            * scale
            + dynamic * scale
        )
