"""Behavioural full-system simulator substrate.

This package stands in for the physical 4-way Pentium 4 Xeon server used
by Bircher & John (ISPASS 2007).  It is an *event-rate* simulator: each
tick (default 1 ms of simulated time) converts stochastic workload
activity into performance-event counts and per-subsystem energy.  Ground
truth power is computed from subsystem-local state (DRAM bank activity,
disk modes, I/O bytes switched) that the trickle-down models cannot
observe, so the paper's model-error structure emerges rather than being
hard-coded.
"""

from repro.simulator.config import (
    ChipsetConfig,
    CpuConfig,
    DiskConfig,
    DramConfig,
    IoConfig,
    MeasurementConfig,
    SystemConfig,
)
from repro.simulator.fleet import FleetServer, simulate_fleet
from repro.simulator.system import Server, simulate_workload

__all__ = [
    "ChipsetConfig",
    "CpuConfig",
    "DiskConfig",
    "DramConfig",
    "IoConfig",
    "MeasurementConfig",
    "SystemConfig",
    "FleetServer",
    "Server",
    "simulate_fleet",
    "simulate_workload",
]
