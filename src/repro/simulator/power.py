"""Per-tick power plumbing shared by the system loop.

Collects the five ground-truth subsystem powers for a tick and keeps a
running energy account so experiments can ask for true averages without
going through the (noisy) measurement apparatus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Subsystem


@dataclass(slots=True)
class PowerBreakdown:
    """True power of each subsystem during one tick (Watts)."""

    cpu_w: float
    chipset_w: float
    memory_w: float
    io_w: float
    disk_w: float

    def as_dict(self) -> "dict[Subsystem, float]":
        return {
            Subsystem.CPU: self.cpu_w,
            Subsystem.CHIPSET: self.chipset_w,
            Subsystem.MEMORY: self.memory_w,
            Subsystem.IO: self.io_w,
            Subsystem.DISK: self.disk_w,
        }

    @property
    def total_w(self) -> float:
        return self.cpu_w + self.chipset_w + self.memory_w + self.io_w + self.disk_w


@dataclass(slots=True)
class ProcessStats:
    """Cumulative per-thread activity (for process-level billing).

    The OS maintains these by saving/restoring counters at context
    switches — the virtualised-counter facility the paper's perfctr
    driver provided.  ``bus_transactions`` counts the thread's granted
    memory traffic (its share of induced subsystem activity).
    """

    thread_id: int
    runtime_s: float = 0.0
    executed_uops: float = 0.0
    fetched_uops: float = 0.0
    bus_transactions: float = 0.0


class EnergyAccount:
    """True (noise-free) energy integration per subsystem."""

    def __init__(self) -> None:
        self._energy_j = {s: 0.0 for s in Subsystem}
        self._time_s = 0.0

    def record(self, breakdown: PowerBreakdown, dt_s: float) -> None:
        self.record_dict(breakdown.as_dict(), dt_s)

    def record_dict(self, power_w: "dict[Subsystem, float]", dt_s: float) -> None:
        """Record a tick whose per-subsystem dict was already built.

        The system loop builds the dict once per tick (it also feeds the
        DAQ) — this entry point avoids a second ``as_dict`` allocation.
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        energy = self._energy_j
        for subsystem, watts in power_w.items():
            energy[subsystem] += watts * dt_s
        self._time_s += dt_s

    @property
    def elapsed_s(self) -> float:
        return self._time_s

    def mean_power_w(self, subsystem: Subsystem) -> float:
        if self._time_s == 0:
            raise ValueError("no energy recorded yet")
        return self._energy_j[subsystem] / self._time_s

    def total_energy_j(self) -> float:
        return sum(self._energy_j.values())
