"""Network interface — the Figure-1 subsystem the paper left unexercised.

The paper's propagation diagram includes the network behind the I/O
subsystem, but its dbt-2 configuration needed no network clients, so no
network power model was trained.  This extension completes the path: a
gigabit-class NIC that moves packets via DMA (bus snoops, DRAM
accesses, I/O-chip switching) and raises *coalesced* completion
interrupts on its own vector.

The interesting trickle-down consequence: once two I/O devices are
active, the undifferentiated interrupt count stops identifying which
subsystem is consuming power — per-vector attribution (the paper's
``/proc/interrupts`` trick) becomes load-bearing.  The extension
benchmarks demonstrate exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.config import IoConfig
from repro.simulator.dma import DmaEngine, DmaTick


@dataclass(frozen=True)
class NicConfig:
    """A server gigabit NIC."""

    #: Line rate per direction (bytes/s); 1 Gb/s full duplex.
    line_rate_bps: float = 125.0e6
    #: Interrupt coalescing: bytes per completion interrupt.  NICs
    #: coalesce more aggressively than disk controllers.
    bytes_per_interrupt: float = 32.0 * 1024.0
    #: NIC-local power when idle (link maintained) — part of the I/O
    #: domain's DC term on the real machine, kept separate here.
    idle_power_w: float = 0.0


@dataclass(slots=True)
class NicTick:
    """NIC activity for one tick."""

    served_rx_bytes: float
    served_tx_bytes: float
    dma: DmaTick

    @property
    def served_bytes(self) -> float:
        return self.served_rx_bytes + self.served_tx_bytes


class NicDevice:
    """Line-rate-limited packet DMA with interrupt coalescing."""

    def __init__(self, nic_config: NicConfig, io_config: IoConfig) -> None:
        self.config = nic_config
        # The NIC shares the I/O chips but has its own DMA/interrupt
        # behaviour (coalescing), hence its own engine instance.
        nic_io = IoConfig(
            static_power_w=io_config.static_power_w,
            switching_energy_per_byte_j=io_config.switching_energy_per_byte_j,
            transaction_overhead_j=io_config.transaction_overhead_j,
            write_combining_efficiency=io_config.write_combining_efficiency,
            bytes_per_interrupt=nic_config.bytes_per_interrupt,
            line_bytes=io_config.line_bytes,
        )
        self._dma = DmaEngine(nic_io)
        self.total_bytes = 0.0
        self._line_rate = nic_config.line_rate_bps
        # Idle ticks (no traffic) are state-invariant; share one result.
        self._zero_tick = NicTick(
            served_rx_bytes=0.0,
            served_tx_bytes=0.0,
            dma=self._dma._zero_tick,
        )

    def tick(self, rx_bps: float, tx_bps: float, dt_s: float) -> NicTick:
        """Move one tick of traffic, capped at line rate per direction."""
        if rx_bps < 0 or tx_bps < 0:
            raise ValueError("network rates must be non-negative")
        if rx_bps == 0.0 and tx_bps == 0.0:
            return self._zero_tick
        line_rate = self._line_rate
        rx = (rx_bps if rx_bps < line_rate else line_rate) * dt_s
        tx = (tx_bps if tx_bps < line_rate else line_rate) * dt_s
        # Received packets land in memory (device->memory); transmitted
        # packets are read out of memory (memory->device).
        dma = self._dma.tick(device_to_memory_bytes=rx, memory_to_device_bytes=tx)
        self.total_bytes += rx + tx
        return NicTick(served_rx_bytes=rx, served_tx_bytes=tx, dma=dma)
