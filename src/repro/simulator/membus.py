"""The shared front-side bus (FSB).

All processor packages share one bus to the northbridge.  Demand
traffic (misses, writebacks, page walks, uncacheable accesses, DMA
coherency snoops) is granted first; hardware prefetches use leftover
bandwidth and are throttled under congestion.  Utilisation feeds an
M/M/1-style latency inflation back to the cores, which is what makes
memory-bound workloads saturate at high thread counts (the paper's mcf
behaviour).

Counter semantics mirror the Pentium 4's limitations: every package
snoops the shared bus, so the per-CPU ``DMA/Other`` event counts *all*
transactions that did not originate in that package — DMA and
other-processor coherence traffic are indistinguishable (paper
Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.cache import MemoryTraffic
from repro.simulator.config import BusConfig


@dataclass(slots=True)
class BusTick:
    """Outcome of one tick of bus arbitration."""

    #: Ratio of demand transactions granted (1.0 unless saturated).
    demand_ratio: float
    #: Ratio of prefetch transactions granted (throttled first).
    prefetch_ratio: float
    #: Total granted transactions on the bus this tick.
    granted_transactions: float
    #: Granted DMA snoop transactions.
    granted_dma_snoops: float
    #: Bus utilisation in [0, 1].
    utilization: float
    #: Effective memory latency for the *next* tick (cycles).
    latency_cycles: float


class FrontSideBus:
    """Shared-bus arbitration with congestion-based latency feedback."""

    def __init__(self, config: BusConfig) -> None:
        self.config = config
        self._latency_cycles = config.base_latency_cycles
        self._capacity_per_s = config.capacity_tx_per_s
        self._base_latency = config.base_latency_cycles
        self._congestion = config.congestion_factor

    @property
    def latency_cycles(self) -> float:
        """Latency the cores should assume this tick."""
        return self._latency_cycles

    def tick(
        self,
        package_traffic: "list[MemoryTraffic]",
        dma_snoops: float,
        dt_s: float,
    ) -> BusTick:
        """Arbitrate one tick of traffic.

        Args:
            package_traffic: per-package CPU-side traffic demands.
            dma_snoops: coherency snoop transactions for DMA performed
                by the memory controller on behalf of I/O devices.
            dt_s: tick length.
        """
        if dma_snoops < 0:
            raise ValueError("dma_snoops must be non-negative")
        capacity = self._capacity_per_s * dt_s
        demand = 0.0
        prefetch = 0.0
        for t in package_traffic:
            # demand_transactions inlined (same summation order).
            demand += (
                t.demand_load_misses
                + t.writebacks
                + t.pagewalk_reads
                + t.uncacheable_accesses
            )
            prefetch += t.prefetch_requests
        demand += dma_snoops

        if demand >= capacity:
            demand_ratio = capacity / demand if demand > 0 else 1.0
            prefetch_ratio = 0.0
        else:
            demand_ratio = 1.0
            if prefetch > 0:
                prefetch_ratio = (capacity - demand) / prefetch
                if prefetch_ratio > 1.0:
                    prefetch_ratio = 1.0
            else:
                prefetch_ratio = 1.0

        granted = demand * demand_ratio + prefetch * prefetch_ratio
        if capacity > 0:
            utilization = granted / capacity
            if utilization > 1.0:
                utilization = 1.0
        else:
            utilization = 1.0

        # Latency for the next tick: queueing inflation, clamped so a
        # fully saturated bus costs ~8x the unloaded latency.
        effective = utilization * self._congestion
        if effective > 0.875:
            effective = 0.875
        self._latency_cycles = self._base_latency / (1.0 - effective)

        return BusTick(
            demand_ratio=demand_ratio,
            prefetch_ratio=prefetch_ratio,
            granted_transactions=granted,
            granted_dma_snoops=dma_snoops * demand_ratio,
            utilization=utilization,
            latency_cycles=self._latency_cycles,
        )
