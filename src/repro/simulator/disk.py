"""SCSI disk subsystem — ground-truth power from operating modes.

Zedlewski-style model: power is determined by how much time the disks
spend seeking, transferring (read/write head active) and merely
rotating.  The server's SCSI disks have no power-saving modes, so
rotation power (~80 % of peak) is consumed continuously and the
measurable dynamic range is small — the paper's DiskLoad raises disk
power only 2.8 % over idle.

Traffic arrives in two classes: *sequential* (sync/writeback streams,
large requests, negligible seeking) and *random* (OLTP-style reads,
small requests, seek-dominated).  Requests are striped across the two
disks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.config import DiskConfig


@dataclass
class DiskTick:
    """Disk activity during one tick (summed over all disks)."""

    served_read_bytes: float
    served_write_bytes: float
    seek_time_s: float
    transfer_time_s: float
    requests_completed: float
    power_w: float

    @property
    def served_bytes(self) -> float:
        return self.served_read_bytes + self.served_write_bytes


#: Nominal request sizes per traffic class (bytes).
_SEQUENTIAL_REQUEST_BYTES = 256.0 * 1024.0
_RANDOM_REQUEST_BYTES = 8.0 * 1024.0


class DiskSubsystem:
    """Two-disk array with per-class queues and mode-based power."""

    def __init__(self, config: DiskConfig) -> None:
        self.config = config
        #: Queued bytes per class: [sequential_read, sequential_write,
        #: random_read, random_write].
        self._queues = {
            ("seq", "read"): 0.0,
            ("seq", "write"): 0.0,
            ("rand", "read"): 0.0,
            ("rand", "write"): 0.0,
        }
        self.total_bytes = 0.0

    def submit(
        self,
        read_bytes: float,
        write_bytes: float,
        read_sequential: bool = False,
        write_sequential: bool = True,
    ) -> None:
        """Queue OS-submitted traffic for service.

        Demand reads default to random access (OLTP-style); writes
        default to sequential (elevator-clustered writeback).
        """
        if read_bytes < 0 or write_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self._queues[("seq" if read_sequential else "rand", "read")] += read_bytes
        self._queues[("seq" if write_sequential else "rand", "write")] += write_bytes

    @property
    def queued_bytes(self) -> float:
        return sum(self._queues.values())

    def write_capacity_bps(self) -> float:
        """Sequential write absorption rate (drives sync drain speed)."""
        return self.config.transfer_rate_bps * self.config.num_disks * 0.9

    def _class_throughput(self, klass: str) -> tuple[float, float]:
        """(bytes/s per disk, seek fraction of busy time) for a class."""
        rate = self.config.transfer_rate_bps
        if klass == "seq":
            request = _SEQUENTIAL_REQUEST_BYTES
            access = self.config.avg_access_time_s * 0.08  # track-to-track
        else:
            request = _RANDOM_REQUEST_BYTES
            access = self.config.avg_access_time_s
        service_time = access + request / rate
        throughput = request / service_time
        seek_fraction = access / service_time
        return throughput, seek_fraction

    def tick(self, dt_s: float) -> DiskTick:
        """Service queued traffic for one tick and account mode power."""
        budget_s = dt_s * self.config.num_disks  # disk-seconds available
        served = {key: 0.0 for key in self._queues}
        seek_time = 0.0
        transfer_time = 0.0
        requests = 0.0

        # Sequential traffic first (elevator scheduling favours streams).
        for klass in ("seq", "rand"):
            throughput, seek_fraction = self._class_throughput(klass)
            request_bytes = (
                _SEQUENTIAL_REQUEST_BYTES if klass == "seq" else _RANDOM_REQUEST_BYTES
            )
            for direction in ("read", "write"):
                if budget_s <= 0:
                    break
                queued = self._queues[(klass, direction)]
                if queued <= 0:
                    continue
                service_s = min(budget_s, queued / throughput)
                bytes_served = service_s * throughput
                served[(klass, direction)] = bytes_served
                self._queues[(klass, direction)] -= bytes_served
                budget_s -= service_s
                seek_time += service_s * seek_fraction
                transfer_time += service_s * (1.0 - seek_fraction)
                requests += bytes_served / request_bytes

        busy_disk_seconds = seek_time + transfer_time
        total_disk_seconds = dt_s * self.config.num_disks
        rotation = self.config.rotation_power_w * self.config.num_disks
        power = rotation
        if total_disk_seconds > 0:
            power += self.config.seek_power_w * (
                seek_time / dt_s
            ) + self.config.transfer_power_w * (transfer_time / dt_s)
        del busy_disk_seconds, total_disk_seconds

        read_bytes = served[("seq", "read")] + served[("rand", "read")]
        write_bytes = served[("seq", "write")] + served[("rand", "write")]
        self.total_bytes += read_bytes + write_bytes
        return DiskTick(
            served_read_bytes=read_bytes,
            served_write_bytes=write_bytes,
            seek_time_s=seek_time,
            transfer_time_s=transfer_time,
            requests_completed=requests,
            power_w=power,
        )
