"""SCSI disk subsystem — ground-truth power from operating modes.

Zedlewski-style model: power is determined by how much time the disks
spend seeking, transferring (read/write head active) and merely
rotating.  The server's SCSI disks have no power-saving modes, so
rotation power (~80 % of peak) is consumed continuously and the
measurable dynamic range is small — the paper's DiskLoad raises disk
power only 2.8 % over idle.

Traffic arrives in two classes: *sequential* (sync/writeback streams,
large requests, negligible seeking) and *random* (OLTP-style reads,
small requests, seek-dominated).  Requests are striped across the two
disks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.config import DiskConfig


@dataclass(slots=True)
class DiskTick:
    """Disk activity during one tick (summed over all disks)."""

    served_read_bytes: float
    served_write_bytes: float
    seek_time_s: float
    transfer_time_s: float
    requests_completed: float
    power_w: float

    @property
    def served_bytes(self) -> float:
        return self.served_read_bytes + self.served_write_bytes


#: Nominal request sizes per traffic class (bytes).
_SEQUENTIAL_REQUEST_BYTES = 256.0 * 1024.0
_RANDOM_REQUEST_BYTES = 8.0 * 1024.0


class DiskSubsystem:
    """Two-disk array with per-class queues and mode-based power."""

    def __init__(self, config: DiskConfig) -> None:
        self.config = config
        #: Queued bytes per class, in elevator service order:
        #: sequential read/write, then random read/write.
        self._q_seq_read = 0.0
        self._q_seq_write = 0.0
        self._q_rand_read = 0.0
        self._q_rand_write = 0.0
        self.total_bytes = 0.0
        #: Per-class (throughput, seek_fraction) — constant for a given
        #: config, so computed once instead of per tick.
        self._seq_rate = self._class_throughput("seq")
        self._rand_rate = self._class_throughput("rand")
        # With all queues empty a tick serves nothing, changes no state
        # and burns exactly rotation power, so idle ticks share one
        # result object.  Consumers never mutate DiskTick.
        self._idle_tick = DiskTick(
            served_read_bytes=0.0,
            served_write_bytes=0.0,
            seek_time_s=0.0,
            transfer_time_s=0.0,
            requests_completed=0.0,
            power_w=config.rotation_power_w * config.num_disks,
        )

    def submit(
        self,
        read_bytes: float,
        write_bytes: float,
        read_sequential: bool = False,
        write_sequential: bool = True,
    ) -> None:
        """Queue OS-submitted traffic for service.

        Demand reads default to random access (OLTP-style); writes
        default to sequential (elevator-clustered writeback).
        """
        if read_bytes < 0 or write_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        if read_sequential:
            self._q_seq_read += read_bytes
        else:
            self._q_rand_read += read_bytes
        if write_sequential:
            self._q_seq_write += write_bytes
        else:
            self._q_rand_write += write_bytes

    @property
    def queued_bytes(self) -> float:
        return (
            self._q_seq_read
            + self._q_seq_write
            + self._q_rand_read
            + self._q_rand_write
        )

    def write_capacity_bps(self) -> float:
        """Sequential write absorption rate (drives sync drain speed)."""
        return self.config.transfer_rate_bps * self.config.num_disks * 0.9

    def _class_throughput(self, klass: str) -> tuple[float, float]:
        """(bytes/s per disk, seek fraction of busy time) for a class."""
        rate = self.config.transfer_rate_bps
        if klass == "seq":
            request = _SEQUENTIAL_REQUEST_BYTES
            access = self.config.avg_access_time_s * 0.08  # track-to-track
        else:
            request = _RANDOM_REQUEST_BYTES
            access = self.config.avg_access_time_s
        service_time = access + request / rate
        throughput = request / service_time
        seek_fraction = access / service_time
        return throughput, seek_fraction

    def tick(self, dt_s: float) -> DiskTick:
        """Service queued traffic for one tick and account mode power.

        The four class/direction queues are served in elevator order
        (sequential before random, reads before writes) with the same
        budget arithmetic per queue as the original dict-keyed loop —
        unrolled to plain attributes so the hot path does no hashing.
        """
        config = self.config
        budget_s = dt_s * config.num_disks  # disk-seconds available
        if (
            budget_s > 0
            and self._q_seq_read == 0.0
            and self._q_seq_write == 0.0
            and self._q_rand_read == 0.0
            and self._q_rand_write == 0.0
        ):
            return self._idle_tick
        seek_time = 0.0
        transfer_time = 0.0
        requests = 0.0
        served_seq_read = served_seq_write = 0.0
        served_rand_read = served_rand_write = 0.0

        # Sequential traffic first (elevator scheduling favours streams).
        throughput, seek_fraction = self._seq_rate
        if budget_s > 0 and self._q_seq_read > 0:
            service_s = min(budget_s, self._q_seq_read / throughput)
            served_seq_read = service_s * throughput
            self._q_seq_read -= served_seq_read
            budget_s -= service_s
            seek_time += service_s * seek_fraction
            transfer_time += service_s * (1.0 - seek_fraction)
            requests += served_seq_read / _SEQUENTIAL_REQUEST_BYTES
        if budget_s > 0 and self._q_seq_write > 0:
            service_s = min(budget_s, self._q_seq_write / throughput)
            served_seq_write = service_s * throughput
            self._q_seq_write -= served_seq_write
            budget_s -= service_s
            seek_time += service_s * seek_fraction
            transfer_time += service_s * (1.0 - seek_fraction)
            requests += served_seq_write / _SEQUENTIAL_REQUEST_BYTES
        throughput, seek_fraction = self._rand_rate
        if budget_s > 0 and self._q_rand_read > 0:
            service_s = min(budget_s, self._q_rand_read / throughput)
            served_rand_read = service_s * throughput
            self._q_rand_read -= served_rand_read
            budget_s -= service_s
            seek_time += service_s * seek_fraction
            transfer_time += service_s * (1.0 - seek_fraction)
            requests += served_rand_read / _RANDOM_REQUEST_BYTES
        if budget_s > 0 and self._q_rand_write > 0:
            service_s = min(budget_s, self._q_rand_write / throughput)
            served_rand_write = service_s * throughput
            self._q_rand_write -= served_rand_write
            budget_s -= service_s
            seek_time += service_s * seek_fraction
            transfer_time += service_s * (1.0 - seek_fraction)
            requests += served_rand_write / _RANDOM_REQUEST_BYTES

        power = config.rotation_power_w * config.num_disks
        if dt_s * config.num_disks > 0:
            power += config.seek_power_w * (
                seek_time / dt_s
            ) + config.transfer_power_w * (transfer_time / dt_s)

        read_bytes = served_seq_read + served_rand_read
        write_bytes = served_seq_write + served_rand_write
        self.total_bytes += read_bytes + write_bytes
        return DiskTick(
            served_read_bytes=read_bytes,
            served_write_bytes=write_bytes,
            seek_time_s=seek_time,
            transfer_time_s=transfer_time,
            requests_completed=requests,
            power_w=power,
        )
