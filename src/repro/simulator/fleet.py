"""Structure-of-arrays fleet simulator: many servers per numpy pass.

:class:`FleetServer` holds the state of ``width`` independent simulated
servers ("lanes") as numpy arrays whose **last axis is the lane axis**
and advances all of them together: one call to :meth:`run_ticks` applies
each subsystem update (scheduler, CPU packages, cache, bus, DRAM,
chipset, disk, NIC, DMA, interrupts, page cache, sensors/DAQ) across
the whole fleet per tick.  Per-lane work that cannot vectorize — RNG
buffer refills and sampling-window bookkeeping — happens on the rare
ticks where it is due, so the aggregate cost per lane-tick shrinks
roughly with the fleet width.

Equivalence with the scalar :class:`~repro.simulator.system.Server`
--------------------------------------------------------------------

Each lane consumes exactly the RNG streams a scalar ``Server`` with the
same seed would (same stream names, same draw order), and the per-tick
arithmetic mirrors the scalar code term by term in the same evaluation
order.  Lane state is therefore *bit-identical* to the scalar server
for everything on the simulation side: performance counters, sampler
windows, per-subsystem energy, power breakdowns, and process stats.

One measurement-side term differs: the sensor drift factor uses
``np.sin`` where the scalar path uses ``math.sin``.  The two agree to
within ~1 ulp but are not guaranteed bit-equal, so DAQ power traces
(and anything derived from them, e.g. ``MeasuredRun.power``) are
tolerance-bounded rather than bit-exact — relative error is bounded by
a few 1e-16 per tick and stays far below the modelled acquisition
noise.  Callers that need bit-exact traces can pass
``compat="scalar"`` to :func:`simulate_fleet` / :class:`FleetServer`,
which runs real scalar ``Server`` objects behind the same fleet API.
The drift term feeds no simulation state back, so counters and energy
stay bit-exact even in the default vector mode.

Lanes are independent: lane ``i``'s entire trace depends only on its
own seed and workload, never on the fleet width or on other lanes.

Not supported in vector mode (use ``compat="scalar"``): custom counter
banks (multiplexed PMUs), per-package DVFS differing *within* a lane
(per-lane uniform pstates are fine), and the RC thermal model (which
the scalar server also keeps outside its tick loop).
"""

from __future__ import annotations

import math
from time import monotonic as _monotonic

import numpy as np

from repro import obs
from repro.core.events import SUBSYSTEMS, Event, Subsystem
from repro.core.traces import CounterTrace, MeasuredRun, PowerTrace
from repro.measurement.sync import align_windows
from repro.osim.process import _ou_coefficients
from repro.osim.procfs import Vector
from repro.simulator.config import SystemConfig
from repro.simulator.disk import _RANDOM_REQUEST_BYTES, _SEQUENTIAL_REQUEST_BYTES
from repro.simulator.power import PowerBreakdown, ProcessStats
from repro.simulator.rng import _stable_hash
from repro.simulator.system import _BATCH_BUCKETS, _CROSS_COHERENCE_FRACTION, Server
from repro.workloads.base import ThreadPlan, WorkloadSpec

__all__ = ["FleetServer", "simulate_fleet"]

#: Event index map in counter-bank declaration order (bank rows).
_EVENTS = tuple(Event)
_EIDX = {event: i for i, event in enumerate(_EVENTS)}
_N_EVENTS = len(_EVENTS)

#: Interrupt vectors delivered through the fleet's shared round-robin
#: cursor, in scalar delivery order (procfs accounting rows).
_VECTORS = tuple(Vector)
_VIDX = {vector: i for i, vector in enumerate(_VECTORS)}


def _lane_generator(seed: int, name: str) -> np.random.Generator:
    """The generator ``RngStreams(seed).stream(name)`` would return."""
    child_seed = np.random.SeedSequence(
        entropy=int(seed), spawn_key=(_stable_hash(name),)
    )
    return np.random.default_rng(child_seed)


class _FleetNormalStream:
    """Per-lane buffered standard-normal draws, scalar-stream-exact.

    Mirrors :class:`repro.simulator.rng.NormalStream` for ``width``
    independent generators at once: each lane has its own 1024-value
    block buffer refilled from its own generator, so lane ``i`` hands
    out exactly the sequence the scalar stream at the same seed would.
    A lane's buffer only refills (and its cursor only advances) on
    ticks where ``mask`` is true for that lane — frozen lanes consume
    nothing.
    """

    __slots__ = ("_gens", "_buf", "_pos", "_pos0", "_uniform", "_idx", "_block")

    def __init__(self, gens: "list[np.random.Generator]", block: int = 1024) -> None:
        width = len(gens)
        self._gens = gens
        self._block = block
        self._buf = np.zeros((width, block))
        #: Cursor at block => empty, refill before next draw.
        self._pos = np.full(width, block, dtype=np.int64)
        #: While every call has drawn on *all* lanes the cursors stay
        #: equal; a single scalar cursor then replaces the per-lane
        #: fancy-index (the hot case — fleets with no frozen lanes).
        self._pos0 = block
        self._uniform = True
        self._idx = np.arange(width)

    def next(self, mask: np.ndarray) -> np.ndarray:
        """One draw per lane where ``mask``; other lanes get garbage.

        The returned values at ``~mask`` lanes are stale buffer
        contents — callers must gate on ``mask`` (the tick loop always
        does via ``np.where``/``np.copyto``).
        """
        block = self._block
        if self._uniform:
            if mask.all():
                pos0 = self._pos0
                if pos0 >= block:
                    buf = self._buf
                    for lane, gen in enumerate(self._gens):
                        buf[lane] = gen.standard_normal(block)
                    pos0 = 0
                self._pos0 = pos0 + 1
                return self._buf[:, pos0]
            # First partially-masked call: fall back to per-lane cursors.
            self._uniform = False
            self._pos[:] = self._pos0
        pos = self._pos
        need = mask & (pos >= block)
        if need.any():
            buf = self._buf
            gens = self._gens
            for lane in np.nonzero(need)[0]:
                buf[lane] = gens[lane].standard_normal(block)
                pos[lane] = 0
        out = self._buf[self._idx, np.minimum(pos, block - 1)]
        pos += mask
        return out


class _PlanTable:
    """One thread's phase plan, gathered into per-phase numpy columns.

    The scalar path looks up a :class:`PhaseBehavior` per tick and
    reads ~20 attributes; here each attribute (or the exact product the
    scalar tick computes from it) becomes one ``(n_phases,)`` array, so
    a single fancy-index per tick gathers every lane's current phase
    parameters at once.  Products folded in at build time reproduce the
    scalar association order exactly (noted per field).
    """

    __slots__ = (
        "start_s",
        "cycle_s",
        "loop",
        "bounds",
        "n_phases",
        "upc",
        "sm_miss",
        "wf1",
        "fp",
        "spec",
        "l3",
        "tlbk",
        "wb",
        "cpress",
        "stream",
        "unc_dt",
        "occ0",
        "fr_dt",
        "fw_dt",
        "hw_dt",
        "net_rx",
        "net_tx",
        "sync",
        "name_ids",
        "mat",
    )

    def __init__(self, plan: ThreadPlan, pagewalk_per_tlb: float, dt: float) -> None:
        self.start_s = plan.start_time_s
        self.cycle_s = plan.cycle_duration_s
        self.loop = plan.loop
        # Accumulated in phase order so boundaries are bit-identical to
        # SimThread._phase_bounds.
        bounds: list[float] = []
        elapsed = 0.0
        for phase in plan.phases:
            elapsed += phase.duration_s
            bounds.append(elapsed)
        self.bounds = np.asarray(bounds)
        self.n_phases = len(bounds)

        def col(values: "list[float]") -> np.ndarray:
            return np.asarray(values, dtype=np.float64)

        behaviors = [phase.behavior for phase in plan.phases]
        self.upc = col([b.uops_per_cycle for b in behaviors])
        # memory_sensitivity * misses_per_uop, associated as the scalar
        # tick does: ms * ((l3 + pw*tlbk) / 1000.0).
        self.sm_miss = col(
            [
                b.memory_sensitivity
                * (
                    (
                        b.l3_load_misses_per_kuop
                        + pagewalk_per_tlb * b.tlb_misses_per_kuop
                    )
                    / 1000.0
                )
                for b in behaviors
            ]
        )
        self.wf1 = col([1.0 + b.wrongpath_fraction for b in behaviors])
        self.fp = col([b.fp_fraction for b in behaviors])
        self.spec = col([b.speculation_factor for b in behaviors])
        self.l3 = col([b.l3_load_misses_per_kuop for b in behaviors])
        self.tlbk = col([b.tlb_misses_per_kuop for b in behaviors])
        self.wb = col([b.writeback_ratio for b in behaviors])
        self.cpress = col([b.cache_pressure for b in behaviors])
        self.stream = col([b.streamability for b in behaviors])
        # uncacheable_per_s * dt (scalar: (unc * dt) * occupancy).
        self.unc_dt = col([b.uncacheable_per_s * dt for b in behaviors])
        self.occ0 = col([1.0 - b.blocking_fraction for b in behaviors])
        self.fr_dt = col([b.disk_read_bps * dt for b in behaviors])
        self.fw_dt = col([b.disk_write_bps * dt for b in behaviors])
        # (hit_ratio * read_bps) * dt, the scalar accumulation term.
        self.hw_dt = col(
            [b.page_cache_hit_ratio * b.disk_read_bps * dt for b in behaviors]
        )
        self.net_rx = col([b.net_rx_bps for b in behaviors])
        self.net_tx = col([b.net_tx_bps for b in behaviors])
        self.sync = np.asarray([bool(b.sync_file) for b in behaviors])
        # Sync-phase re-entry compares phase *names* in the scalar path,
        # so ids are assigned per distinct name within this plan.
        ids: dict[str, int] = {}
        name_ids = []
        for phase in plan.phases:
            name_ids.append(ids.setdefault(phase.name, len(ids)))
        self.name_ids = np.asarray(name_ids, dtype=np.int64)
        # Stacked (n_phases, 17) parameter matrix: one fancy-index per
        # tick gathers every column at once.  Column order = the _C_*
        # constants below.
        self.mat = np.stack(
            (
                self.upc, self.sm_miss, self.wf1, self.fp, self.spec,
                self.l3, self.tlbk, self.wb, self.cpress, self.stream,
                self.unc_dt, self.occ0, self.fr_dt, self.fw_dt,
                self.hw_dt, self.net_rx, self.net_tx,
            ),
            axis=1,
        )


#: Column indices into :attr:`_PlanTable.mat`.
(
    _C_UPC, _C_SM, _C_WF1, _C_FP, _C_SPEC, _C_L3, _C_TLBK, _C_WB,
    _C_CPRESS, _C_STREAM, _C_UNC, _C_OCC0, _C_FR, _C_FW, _C_HW,
    _C_NRX, _C_NTX,
) = range(17)


class FleetServer:
    """``width`` independent simulated servers stepped in lockstep.

    Args:
        config: shared :class:`SystemConfig` for every lane.
        workload: shared workload spec for every lane.
        seeds: one RNG seed per lane.  Lane ``i`` reproduces exactly
            what ``Server(config, workload, seeds[i])`` would (see the
            module docstring for the one tolerance-bounded exception).
        compat: ``"vector"`` (default) runs the numpy SoA kernel;
            ``"scalar"`` runs real :class:`Server` objects behind the
            same API (slower, but bit-exact everywhere).
    """

    def __init__(
        self,
        config: SystemConfig,
        workload: WorkloadSpec,
        seeds: "list[int] | tuple[int, ...]",
        compat: str = "vector",
    ) -> None:
        if compat not in ("vector", "scalar"):
            raise ValueError(f"compat must be 'vector' or 'scalar', got {compat!r}")
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise ValueError("a fleet needs at least one lane")
        self.config = config
        self.workload = workload
        self.seeds = seeds
        self.width = len(seeds)
        self.compat = compat
        #: lane -> live monitor stack (see :meth:`attach_monitor`).
        self._monitors: "dict[int, list]" = {}
        #: Optional fleet-wide monitor (see :meth:`attach_fleet_monitor`).
        self._fleet_monitor = None
        if compat == "scalar":
            self._servers: "list[Server] | None" = [
                Server(config, workload, seed) for seed in seeds
            ]
            return
        self._servers = None

        width = self.width
        n_pkg = config.num_packages
        n_thr = workload.n_threads
        dt = config.tick_s
        self._n_pkg = n_pkg
        self._n_thr = n_thr
        self._dt = dt

        # -- per-lane RNG streams, in scalar construction/draw order --
        chipset_cfg = config.chipset
        chip_gens = [_lane_generator(seed, "chipset") for seed in seeds]
        low = -chipset_cfg.derivation_offset_range_w
        high = chipset_cfg.derivation_offset_range_w / 4.0
        self._chip_mean = np.asarray(
            [float(gen.uniform(low, high)) for gen in chip_gens]
        )
        self._chip_stream = _FleetNormalStream(chip_gens)
        self._thread_streams = [
            _FleetNormalStream(
                [_lane_generator(seed, f"thread-{k}") for seed in seeds]
            )
            for k in range(n_thr)
        ]
        meas = config.measurement
        self._samp_gens = [_lane_generator(seed, "sampler") for seed in seeds]
        first_deadline = [
            0.0
            + max(
                meas.sample_period_s + float(gen.normal(0.0, meas.sample_jitter_s)),
                1.0e-3,
            )
            for gen in self._samp_gens
        ]
        sensor_gens = [_lane_generator(seed, "sensors") for seed in seeds]
        gains = np.empty((5, width))
        drift_phases = np.empty((5, width))
        for lane, gen in enumerate(sensor_gens):
            for si in range(5):  # all gains first, then all phases
                gains[si, lane] = 1.0 + float(gen.normal(0.0, meas.gain_error_rel))
            for si in range(5):
                drift_phases[si, lane] = float(gen.uniform(0.0, 2.0 * math.pi))
        self._gains = gains
        self._drift_phases = drift_phases
        self._daq_gens = [_lane_generator(seed, "daq") for seed in seeds]

        # -- phase-plan tables -----------------------------------------
        pagewalk_per_tlb = config.cache.pagewalk_reads_per_tlb_miss
        self._plans = [
            _PlanTable(plan, pagewalk_per_tlb, dt) for plan in workload.threads
        ]
        # Combined tables: every thread's phases stacked so one fancy
        # index per tick gathers all (thread, lane) phase rows at once.
        plans = self._plans
        self._mat_all = np.concatenate([t.mat for t in plans], axis=0)
        self._name_all = np.concatenate([t.name_ids for t in plans])
        self._sync_all = np.concatenate([t.sync for t in plans])
        self._plan_offsets = np.cumsum(
            [0] + [t.n_phases for t in plans[:-1]], dtype=np.int64
        )[:, None]
        self._start_col = np.asarray([t.start_s for t in plans])[:, None]
        self._cycle_col = np.asarray([t.cycle_s for t in plans])[:, None]
        self._loop_col = np.asarray(
            [t.loop for t in plans], dtype=bool
        )[:, None]
        self._nph_col = np.asarray(
            [t.n_phases for t in plans], dtype=np.int64
        )[:, None]
        self._has_nonloop = not all(t.loop for t in plans)

        # -- per-tick constants (python floats, scalar association) ----
        cpu = config.cpu
        self._smt = cpu.smt_contexts
        self._max_upc = cpu.max_uops_per_cycle
        self._isc = cpu.interrupt_service_cycles
        self._stall_fraction = cpu.stall_power_fraction
        self._uop_w = cpu.uop_power_w
        self._spec_w = cpu.speculation_power_w
        self._fp_premium = cpu.fp_power_premium
        self._smt_yield = workload.smt_yield
        self._variability = workload.variability
        self._ou_alpha, self._ou_noise = _ou_coefficients(dt)
        self._pw_per_tlb = pagewalk_per_tlb
        self._ppm = config.cache.prefetch_per_miss
        self._timer_per_tick = config.osim.timer_hz * dt
        bus = config.bus
        self._base_latency = bus.base_latency_cycles
        self._bus_cap_dt = bus.capacity_tx_per_s * dt
        self._bus_congestion = bus.congestion_factor
        dram = config.dram
        self._dram_cap_dt = dram.capacity_access_per_s * dt
        self._dram_read_e = dram.read_energy_j
        self._dram_write_e = dram.write_energy_j
        self._dram_act_e = dram.activation_energy_j
        self._dram_bg_dt = dram.background_power_w * dt
        self._row_rand = dram.random_row_hit_rate
        self._row_stream = dram.streaming_row_hit_rate
        self._dram_rtf = dram.random_throughput_factor
        self._dram_congestion = dram.congestion_factor
        self._dram_cong_cap = 1.0 - 1.0 / dram.max_latency_factor
        # DMA row-hit base at streamability 0.9 (scalar row_hit_rate).
        self._dma_hit_base = self._row_rand + (
            self._row_stream - self._row_rand
        ) * 0.9
        chip = config.chipset
        self._chip_nominal = chip.nominal_power_w
        self._chip_bus_w = chip.bus_sensitivity_w
        self._chip_io_w = chip.io_sensitivity_w
        chip_alpha = math.exp(-dt / 120.0)  # ChipsetSubsystem._DRIFT_TAU_S
        self._chip_alpha = chip_alpha
        self._chip_noise = (
            math.sqrt(max(0.0, 1.0 - chip_alpha * chip_alpha)) * 0.12
        )
        io_cfg = config.io
        self._io_static = io_cfg.static_power_w
        self._io_sw_e = io_cfg.switching_energy_per_byte_j
        self._io_tx_e = io_cfg.transaction_overhead_j
        self._line_bytes = float(io_cfg.line_bytes)
        self._tx_factor = 1.0 - io_cfg.write_combining_efficiency
        self._dma_bpi = io_cfg.bytes_per_interrupt
        self._nic_bpi = 32.0 * 1024.0  # NicConfig.bytes_per_interrupt
        self._nic_line = 125.0e6  # NicConfig.line_rate_bps
        self._bg_half = (workload.background_dma_bps * dt) / 2.0
        disk = config.disk
        self._num_disks = disk.num_disks
        self._disk_budget0 = dt * disk.num_disks
        seq_access = disk.avg_access_time_s * 0.08
        seq_service = seq_access + _SEQUENTIAL_REQUEST_BYTES / disk.transfer_rate_bps
        self._seq_thr = _SEQUENTIAL_REQUEST_BYTES / seq_service
        self._seq_seekf = seq_access / seq_service
        rand_service = (
            disk.avg_access_time_s + _RANDOM_REQUEST_BYTES / disk.transfer_rate_bps
        )
        self._rand_thr = _RANDOM_REQUEST_BYTES / rand_service
        self._rand_seekf = disk.avg_access_time_s / rand_service
        self._rot_n = disk.rotation_power_w * disk.num_disks
        self._seek_w = disk.seek_power_w
        self._xfer_w = disk.transfer_power_w
        self._wc_dt = disk.transfer_rate_bps * disk.num_disks * 0.9 * dt
        osim = config.osim
        self._pc_bytes = osim.page_cache_bytes
        self._pc_bg_ratio = osim.dirty_background_ratio
        self._pc_denom = max(1.0e-9, osim.dirty_ratio - osim.dirty_background_ratio)
        # TlbPolicy defaults: major faults per TLB miss, bytes per fault.
        self._tlb_fault_ratio = 5.0e-6
        self._tlb_fault_bytes = 4096.0 * 8
        self._drift_rel = meas.drift_rel
        self._sample_period = meas.sample_period_s
        self._sample_jitter = meas.sample_jitter_s
        self._daq_rate = meas.daq_rate_hz
        self._daq_noise_rel = meas.daq_noise_rel
        self._pstate_index = 0
        self._lane_pstates: "np.ndarray | None" = None
        self._refresh_pstate()

        # -- SoA state (last axis = lane); everything listed in
        # _STATE_NAMES is snapshot/restored around frozen lanes --------
        self._now = np.zeros(width)
        self._timer_residual = np.zeros(width)
        self._pend_disk = np.zeros((n_pkg, width))
        self._pend_net = np.zeros((n_pkg, width))
        self._irq_cursor = np.zeros(width, dtype=np.int64)
        self._acct = np.zeros((len(_VECTORS), n_pkg, width))
        self._runtime = np.zeros((n_thr, width))
        self._ou = np.zeros((n_thr, width))
        self._last_name_id = np.full((n_thr, width), -1, dtype=np.int64)
        self._finished = np.zeros((n_thr, width), dtype=bool)
        self._affinity = np.full((n_thr, width), -1, dtype=np.int64)
        self._bound = np.zeros((n_pkg, width), dtype=np.int64)
        self._ctx = np.zeros(width, dtype=np.int64)
        self._bus_latency = np.full(width, self._base_latency)
        self._dram_latency = np.ones(width)
        self._pc_dirty = np.zeros(width)
        self._pc_pending = np.zeros(width)
        self._pc_synced = np.zeros(width)
        self._q_seq_write = np.zeros(width)
        self._q_rand_read = np.zeros(width)
        self._q_rand_write = np.zeros(width)
        self._disk_total = np.zeros(width)
        self._dma_residual = np.zeros(width)
        self._nic_residual = np.zeros(width)
        self._nic_total = np.zeros(width)
        self._io_total = np.zeros(width)
        self._chip_offset = self._chip_mean.copy()
        self._counts3d = np.zeros((_N_EVENTS, n_pkg, width))
        self._energy5 = np.zeros((5, width))
        self._e_time = np.zeros(width)
        self._wenergy = np.zeros((5, width))
        self._last_powers = np.zeros((5, width))
        self._proc_runtime = np.zeros((n_thr, width))
        self._proc_exec = np.zeros((n_thr, width))
        self._proc_fetch = np.zeros((n_thr, width))
        self._proc_bus = np.zeros((n_thr, width))
        self._ran_ever = np.zeros((n_thr, width), dtype=bool)
        self._samp_wstart = np.zeros(width)
        self._samp_deadline = np.asarray(first_deadline)
        self._daq_wstart = np.zeros(width)
        #: Enabled thread mask — *configuration*, not rolled back on
        #: freeze (cluster load control flips it between batches).
        self._enabled = np.ones((n_thr, width), dtype=bool)

        # Per-lane window logs (appends are masked by ``active``).
        self._samp_ts: "list[list[float]]" = [[] for _ in range(width)]
        self._samp_dur: "list[list[float]]" = [[] for _ in range(width)]
        self._samp_counts: "list[list[np.ndarray]]" = [[] for _ in range(width)]
        self._daq_ts: "list[list[float]]" = [[] for _ in range(width)]
        self._daq_means: "list[list[list[float]]]" = [
            [[] for _ in range(5)] for _ in range(width)
        ]

    #: Mutable per-lane state rolled back for frozen lanes around each
    #: batch (RNG draws and window-log appends are masked instead).
    _STATE_NAMES = (
        "_now",
        "_timer_residual",
        "_pend_disk",
        "_pend_net",
        "_irq_cursor",
        "_acct",
        "_runtime",
        "_ou",
        "_last_name_id",
        "_finished",
        "_affinity",
        "_bound",
        "_ctx",
        "_bus_latency",
        "_dram_latency",
        "_pc_dirty",
        "_pc_pending",
        "_pc_synced",
        "_q_seq_write",
        "_q_rand_read",
        "_q_rand_write",
        "_disk_total",
        "_dma_residual",
        "_nic_residual",
        "_nic_total",
        "_io_total",
        "_chip_offset",
        "_counts3d",
        "_energy5",
        "_e_time",
        "_wenergy",
        "_last_powers",
        "_proc_runtime",
        "_proc_exec",
        "_proc_fetch",
        "_proc_bus",
        "_ran_ever",
        "_samp_wstart",
        "_samp_deadline",
        "_daq_wstart",
    )

    def _refresh_pstate(self) -> None:
        """Recompute frequency-derived constants (mirrors CpuPackage).

        Uniform fleets keep these as python floats (the fast path, and
        bit-identical to the pre-per-lane code); with per-lane pstates
        set they become ``(width,)`` arrays, which broadcast against
        the lane-axis-last state everywhere the hot loop uses them.
        Elementwise IEEE ops match the scalar ones, so each lane stays
        bit-identical to a scalar server pinned at that lane's pstate.
        """
        cpu = self.config.cpu
        nominal = cpu.dvfs_states[0].frequency_hz
        if self._lane_pstates is None:
            state = cpu.dvfs_states[self._pstate_index]
            vscale: "float | np.ndarray" = state.voltage_scale
            freq: "float | np.ndarray" = state.frequency_hz
        else:
            vs = np.array([s.voltage_scale for s in cpu.dvfs_states])
            fs = np.array([s.frequency_hz for s in cpu.dvfs_states])
            vscale = vs[self._lane_pstates]
            freq = fs[self._lane_pstates]
        self._voltage_sq = vscale**2
        self._power_scale = vscale**2 * (freq / nominal)
        self._cycles = freq * self._dt
        self._halted_v = cpu.halted_power_w * self._voltage_sq
        self._active_delta = cpu.active_idle_power_w - cpu.halted_power_w
        # Scalar step 6 sums pt.cycles package by package; replicate the
        # sequential adds so ties in float rounding match exactly.
        total: "float | np.ndarray" = 0.0
        for _ in range(self.config.num_packages):
            total = total + self._cycles
        self._cycles_total = total

    # -- control API ---------------------------------------------------

    @property
    def now_s(self) -> float:
        """Simulated time of lane 0 (all active lanes share a clock)."""
        if self._servers is not None:
            return self._servers[0].now_s
        return float(self._now[0])

    def set_all_pstates(self, state_index: int) -> None:
        """Switch every package of every lane to one DVFS point."""
        if self._servers is not None:
            for server in self._servers:
                server.set_all_pstates(state_index)
            return
        if not 0 <= state_index < len(self.config.cpu.dvfs_states):
            raise ValueError(
                f"pstate {state_index} out of range; package has "
                f"{len(self.config.cpu.dvfs_states)} states"
            )
        self._pstate_index = state_index
        self._lane_pstates = None
        self._refresh_pstate()

    def set_lane_pstates(self, pstates) -> None:
        """Per-lane DVFS: lane ``i`` runs at ``pstates[i]``.

        The control surface datacenter power policies coordinate
        through — each node (lane) is shifted independently along the
        ladder between batches.  Per-lane pstates are *configuration*
        like ``_enabled``: frozen lanes keep them, nothing rolls them
        back.  A uniform vector collapses to the scalar fast path.
        """
        idx = np.asarray(pstates, dtype=np.int64)
        if idx.shape != (self.width,):
            raise ValueError(
                f"pstates must have shape ({self.width},); got {idx.shape}"
            )
        n_states = len(self.config.cpu.dvfs_states)
        if idx.size and (idx.min() < 0 or idx.max() >= n_states):
            raise ValueError(
                f"pstates must lie in [0, {n_states - 1}]"
            )
        if self._servers is not None:
            for server, state in zip(self._servers, idx):
                server.set_all_pstates(int(state))
            return
        if np.all(idx == idx[0]):
            self.set_all_pstates(int(idx[0]))
            return
        self._pstate_index = int(idx[0])
        self._lane_pstates = idx.copy()
        self._refresh_pstate()

    def lane_pstates(self) -> np.ndarray:
        """Current per-lane pstate indices, shape ``(width,)``."""
        if self._servers is not None:
            return np.array(
                [server.packages[0].pstate_index for server in self._servers],
                dtype=np.int64,
            )
        if self._lane_pstates is not None:
            return self._lane_pstates.copy()
        return np.full(self.width, self._pstate_index, dtype=np.int64)

    def read_and_clear_lanes(
        self, lanes: "np.ndarray | list[int]"
    ) -> "dict[Event, np.ndarray]":
        """Batched clear-on-read counter snapshot for many lanes.

        Returns ``{event: (n_lanes, n_cpus)}`` — the shape a batched
        :meth:`TrickleDownSuite.evaluate` design-matrix pass wants —
        and zeroes exactly those lanes' counters, in one numpy slice
        per event instead of a python loop over ``_LaneCounters``.
        """
        if self._servers is not None:
            snaps = [
                self._servers[int(lane)].counters.read_and_clear()
                for lane in lanes
            ]
            return {
                event: np.vstack([snap[event] for snap in snaps])
                for event in _EVENTS
            }
        sel = np.asarray(lanes, dtype=np.int64)
        c3 = self._counts3d
        out = {}
        for event in _EVENTS:
            row = c3[_EIDX[event]]
            out[event] = row[:, sel].T.copy()
            row[:, sel] = 0.0
        return out

    def set_lane_threads(self, lane: int, n_threads: int) -> None:
        """Enable the first ``n_threads`` workload threads on ``lane``.

        Cluster load control: a node serving ``n`` request threads runs
        the first ``n`` plans of the shared service workload.  Disabled
        threads behave as if their plan never started.
        """
        if not 0 <= n_threads <= self.workload.n_threads:
            raise ValueError(
                f"n_threads must be in [0, {self.workload.n_threads}]"
            )
        if self._servers is not None:
            raise NotImplementedError("set_lane_threads requires vector mode")
        self._enabled[:, lane] = False
        self._enabled[:n_threads, lane] = True

    def disable_sampling(self) -> None:
        """Stop counter sampling on every lane (external counter reader)."""
        if self._servers is not None:
            for server in self._servers:
                server.sampler.disable()
            return
        self._samp_deadline[:] = np.inf

    def attach_monitor(self, monitor, lane: "int | None" = 0) -> None:
        """Attach a live monitor to one lane (sampler-window callbacks).

        Mirrors :meth:`Server.attach_monitor`: ``monitor.on_window(view,
        pulse_s)`` fires whenever that lane closes a sampling window;
        ``on_attach(view)``, when present, fires now per attached lane.
        The view passed is :meth:`lane`'s read-only server facade.

        A lane holds a *stack* of monitors — attaching a second one
        adds it instead of silently replacing the first — and
        ``lane=None`` attaches the monitor to every lane.  Out-of-range
        lanes raise :class:`IndexError`.
        """
        lanes = range(self.width) if lane is None else (self._check_lane(lane),)
        for lane_i in lanes:
            stack = self._monitors.setdefault(lane_i, [])
            stack.append(monitor)
            if self._servers is not None:
                if len(stack) == 1:
                    # The scalar server has a single monitor slot; give
                    # it a fan-out view of this lane's (live) stack.
                    self._servers[lane_i]._monitor = _MonitorFanout(stack)
                on_attach = getattr(monitor, "on_attach", None)
                if on_attach is not None:
                    on_attach(self._servers[lane_i])
            else:
                on_attach = getattr(monitor, "on_attach", None)
                if on_attach is not None:
                    on_attach(self.lane(lane_i))

    def detach_monitor(self, lane: "int | None" = 0, monitor=None) -> None:
        """Detach ``monitor`` (default: all monitors) from ``lane``.

        ``lane=None`` sweeps every lane.  Detaching a monitor that is
        not attached is a no-op.
        """
        lanes = range(self.width) if lane is None else (self._check_lane(lane),)
        for lane_i in lanes:
            stack = self._monitors.get(lane_i)
            if stack is None:
                continue
            if monitor is None:
                stack.clear()
            elif monitor in stack:
                stack.remove(monitor)
            if not stack:
                del self._monitors[lane_i]
                if self._servers is not None:
                    self._servers[lane_i].detach_monitor()

    def attach_fleet_monitor(self, monitor) -> None:
        """Attach a fleet-wide monitor pulsed on every closing lane.

        ``monitor.on_pulse(fleet, lanes, now_s)`` fires once per tick
        on which any lane closes a sampling window, with the closing
        lane indices — the batched analogue of per-lane
        :meth:`attach_monitor` (see
        :class:`repro.obs.fleet.FleetMonitor`).  ``on_attach_fleet``,
        when present, fires now.  Unattached, the tick loop pays one
        ``is not None`` check per closing tick.
        """
        if self._servers is not None:
            raise NotImplementedError(
                "attach_fleet_monitor requires vector mode"
            )
        self._fleet_monitor = monitor
        on_attach = getattr(monitor, "on_attach_fleet", None)
        if on_attach is not None:
            on_attach(self)

    def detach_fleet_monitor(self) -> None:
        self._fleet_monitor = None

    def _check_lane(self, lane: int) -> int:
        if not 0 <= lane < self.width:
            raise IndexError(
                f"lane {lane} out of range for width {self.width}"
            )
        return int(lane)

    # -- lane access / measured runs -----------------------------------

    def lane(self, lane: int):
        """A read-only ``Server``-shaped view of one lane.

        In ``compat="scalar"`` mode this is the lane's real scalar
        server; in vector mode it is a :class:`_LaneView` facade over
        the lane's slice of the fleet arrays.
        """
        if not 0 <= lane < self.width:
            raise IndexError(
                f"lane {lane} out of range for width {self.width}"
            )
        if self._servers is not None:
            return self._servers[lane]
        return _LaneView(self, lane)

    def run(self, duration_s: float) -> "list[MeasuredRun]":
        """Step every lane ``duration_s`` and return one run per lane."""
        if self._servers is not None:
            return [server.run(duration_s) for server in self._servers]
        if duration_s < 2.0 * self.config.measurement.sample_period_s:
            raise ValueError(
                "duration must cover at least two sampling windows; "
                f"got {duration_s}s"
            )
        n_ticks = int(round(duration_s / self.config.tick_s))
        self.run_ticks(n_ticks)
        return [
            self._finish_lane(lane, duration_s)
            for lane in range(self.width)
        ]

    def _finish_lane(self, lane: int, duration_s: float) -> MeasuredRun:
        """Assemble one lane's run (mirrors the tail of ``Server.run``)."""
        view = _LaneView(self, lane)
        counters = view.sampler.finish()
        if not self._daq_ts[lane]:
            raise ValueError(
                "no measurement windows closed; missing sync pulses?"
            )
        power = PowerTrace(
            timestamps=np.asarray(self._daq_ts[lane]),
            watts={
                s: np.asarray(self._daq_means[lane][i])
                for i, s in enumerate(SUBSYSTEMS)
            },
        )
        counters, power = align_windows(counters, power)
        return MeasuredRun(
            workload=self.workload.name,
            counters=counters,
            power=power,
            seed=int(self.seeds[lane]),
            metadata={
                "duration_s": duration_s,
                "tick_s": self.config.tick_s,
                "n_threads": self.workload.n_threads,
                "true_mean_power_w": {
                    s.value: view.energy.mean_power_w(s) for s in SUBSYSTEMS
                },
            },
        )

    # -- the hot path --------------------------------------------------

    def run_ticks(
        self, n_ticks: int, active: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Advance every lane ``n_ticks`` ticks; returns per-lane joules.

        ``active`` (bool, shape ``(width,)``) freezes lanes: a frozen
        lane consumes no RNG draws, logs no sampling windows, and has
        all of its state rolled back at the end of the batch, so a
        freeze is indistinguishable from the lane never being stepped.
        Frozen lanes report 0.0 J.
        """
        width = self.width
        energies = np.zeros(width)
        if n_ticks <= 0:
            return energies
        if self._servers is not None:
            for lane, server in enumerate(self._servers):
                if active is None or active[lane]:
                    energies[lane] = server.run_ticks(n_ticks)
            return energies

        obs_on = obs.enabled()
        t0 = _monotonic() if obs_on else 0.0

        if active is None:
            act = np.ones(width, dtype=bool)
            frozen = None
        else:
            act = np.asarray(active, dtype=bool)
            if act.shape != (width,):
                raise ValueError(f"active mask must have shape ({width},)")
            if not act.any():
                return energies
            frozen = None if bool(act.all()) else np.nonzero(~act)[0]
        saved = None
        if frozen is not None:
            saved = [
                getattr(self, name)[..., frozen].copy()
                for name in self._STATE_NAMES
            ]

        # Hoisted state and constants (attribute lookups off the loop).
        n_pkg, n_thr, dt = self._n_pkg, self._n_thr, self._dt
        cycles = self._cycles
        cycles_total = self._cycles_total
        now = self._now
        timer_res = self._timer_residual
        pend_disk, pend_net = self._pend_disk, self._pend_net
        irq_cursor = self._irq_cursor
        acct_timer = self._acct[_VIDX[Vector.TIMER]]
        acct_disk = self._acct[_VIDX[Vector.DISK]]
        acct_net = self._acct[_VIDX[Vector.NETWORK]]
        runtime, ou = self._runtime, self._ou
        last_name_id, finished = self._last_name_id, self._finished
        affinity, bound, ctx = self._affinity, self._bound, self._ctx
        enabled = self._enabled
        bus_latency, dram_latency = self._bus_latency, self._dram_latency
        pc_dirty, pc_pending = self._pc_dirty, self._pc_pending
        pc_synced = self._pc_synced
        q_seq_write = self._q_seq_write
        q_rand_read = self._q_rand_read
        q_rand_write = self._q_rand_write
        disk_total_arr = self._disk_total
        dma_residual, nic_residual = self._dma_residual, self._nic_residual
        nic_total, io_total = self._nic_total, self._io_total
        chip_offset = self._chip_offset
        c3 = self._counts3d
        r_cycles = c3[_EIDX[Event.CYCLES]]
        r_halted = c3[_EIDX[Event.HALTED_CYCLES]]
        r_fetched = c3[_EIDX[Event.FETCHED_UOPS]]
        r_l3 = c3[_EIDX[Event.L3_MISSES]]
        r_tlb = c3[_EIDX[Event.TLB_MISSES]]
        r_dma = c3[_EIDX[Event.DMA_ACCESSES]]
        r_bus = c3[_EIDX[Event.BUS_TRANSACTIONS]]
        r_unc = c3[_EIDX[Event.UNCACHEABLE_ACCESSES]]
        r_irq = c3[_EIDX[Event.INTERRUPTS]]
        r_disk_irq = c3[_EIDX[Event.DISK_INTERRUPTS]]
        r_net_irq = c3[_EIDX[Event.NETWORK_INTERRUPTS]]
        r_dram_reads0 = c3[_EIDX[Event.DRAM_READS], 0]
        r_dram_writes0 = c3[_EIDX[Event.DRAM_WRITES], 0]
        r_dram_act0 = c3[_EIDX[Event.DRAM_ACTIVATIONS], 0]
        r_dram_time0 = c3[_EIDX[Event.DRAM_ACTIVE_TIME], 0]
        r_prefetch0 = c3[_EIDX[Event.PREFETCH_TRANSACTIONS], 0]
        r_writeback0 = c3[_EIDX[Event.WRITEBACK_TRANSACTIONS], 0]
        r_io_bytes0 = c3[_EIDX[Event.IO_BYTES], 0]
        r_io_tx0 = c3[_EIDX[Event.IO_TRANSACTIONS], 0]
        r_seek0 = c3[_EIDX[Event.DISK_SEEK_TIME], 0]
        r_xfer0 = c3[_EIDX[Event.DISK_TRANSFER_TIME], 0]
        r_disk_bytes0 = c3[_EIDX[Event.DISK_BYTES], 0]
        r_sectors0 = c3[_EIDX[Event.OS_DISK_SECTORS], 0]
        r_ctx0 = c3[_EIDX[Event.OS_CONTEXT_SWITCHES], 0]
        samp_gens, daq_gens = self._samp_gens, self._daq_gens
        samp_ts, samp_dur = self._samp_ts, self._samp_dur
        samp_counts = self._samp_counts
        daq_ts, daq_means = self._daq_ts, self._daq_means
        gains, drift_phases = self._gains, self._drift_phases
        drift_rel = self._drift_rel
        sample_period, sample_jitter = self._sample_period, self._sample_jitter
        daq_rate, daq_noise_rel = self._daq_rate, self._daq_noise_rel
        two_pi = 2.0 * math.pi
        energy5, e_time = self._energy5, self._e_time
        wenergy, last_powers = self._wenergy, self._last_powers
        proc_runtime, proc_exec = self._proc_runtime, self._proc_exec
        proc_fetch, proc_bus = self._proc_fetch, self._proc_bus
        ran_ever = self._ran_ever
        samp_wstart, samp_deadline = self._samp_wstart, self._samp_deadline
        daq_wstart = self._daq_wstart
        plans = self._plans
        streams = self._thread_streams
        chip_stream = self._chip_stream
        smt, smt_yield2 = self._smt, self._smt_yield * 2.0
        max_upc, isc = self._max_upc, self._isc
        variability = self._variability
        ou_alpha, ou_noise = self._ou_alpha, self._ou_noise
        pw_per_tlb, ppm = self._pw_per_tlb, self._ppm
        base_latency = self._base_latency
        bus_cap_dt, bus_cf = self._bus_cap_dt, self._bus_congestion
        dram_cap_dt = self._dram_cap_dt
        row_rand, row_stream = self._row_rand, self._row_stream
        dma_hit_base = self._dma_hit_base
        dram_re, dram_we = self._dram_read_e, self._dram_write_e
        dram_ae, dram_bg_dt = self._dram_act_e, self._dram_bg_dt
        dram_rtf, dram_cf = self._dram_rtf, self._dram_congestion
        dram_cong_cap = self._dram_cong_cap
        halted_v, active_delta = self._halted_v, self._active_delta
        power_scale = self._power_scale
        stall_fraction, uop_w = self._stall_fraction, self._uop_w
        spec_w, fp_premium = self._spec_w, self._fp_premium
        chip_nominal, chip_bus_w = self._chip_nominal, self._chip_bus_w
        chip_io_w = self._chip_io_w
        chip_mean = self._chip_mean
        chip_alpha, chip_noise = self._chip_alpha, self._chip_noise
        io_static, io_sw_e = self._io_static, self._io_sw_e
        io_tx_e = self._io_tx_e
        line_bytes, tx_factor = self._line_bytes, self._tx_factor
        dma_bpi, nic_bpi = self._dma_bpi, self._nic_bpi
        nic_line, bg_half = self._nic_line, self._bg_half
        disk_budget0 = self._disk_budget0
        seq_thr, seq_seekf = self._seq_thr, self._seq_seekf
        rand_thr, rand_seekf = self._rand_thr, self._rand_seekf
        rot_n, seek_w, xfer_w = self._rot_n, self._seek_w, self._xfer_w
        wc_dt = self._wc_dt
        pc_bytes, bg_ratio = self._pc_bytes, self._pc_bg_ratio
        pc_denom = self._pc_denom
        fault_ratio, fault_bytes = self._tlb_fault_ratio, self._tlb_fault_bytes
        per_tick = self._timer_per_tick
        timer_steady = float(int(per_tick)) == per_tick
        pkg_col = np.arange(n_pkg)[:, None]
        pkg_col3 = np.arange(n_pkg)[:, None, None]
        lanes = np.arange(width)
        mat_all, name_all = self._mat_all, self._name_all
        sync_all, plan_offsets = self._sync_all, self._plan_offsets
        start_col, cycle_col = self._start_col, self._cycle_col
        loop_col, nph_col = self._loop_col, self._nph_col
        has_nonloop = self._has_nonloop
        monitors = self._monitors
        fleet_monitor = self._fleet_monitor
        batch_energy = np.zeros(width)

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for _ in range(n_ticks):
                # (1) Clock; timer interrupts land now, device
                # interrupts delivered last tick are serviced now.
                now += dt
                if timer_steady:
                    timer_f: "float | np.ndarray" = per_tick
                else:
                    timer_res += per_tick
                    timer_f = np.floor(timer_res)
                    timer_res -= timer_f
                disk_irqs = pend_disk.copy()
                net_irqs = pend_net.copy()
                irq = (disk_irqs + net_irqs) + timer_f
                acct_timer += timer_f
                pend_disk[:] = 0.0
                pend_net[:] = 0.0

                # (2) Scheduler pass: phase lookup, OU modulation,
                # first-run placement, per-package runnable counts.
                # All-thread state lives in (n_thr, width) arrays; only
                # the order-sensitive pieces — per-stream RNG draws,
                # bounds lookups, and first-run placement — loop over
                # threads (elementwise math is order-free, so batching
                # it stays bit-identical to the per-thread version).
                latency = bus_latency * dram_latency
                lratio = np.maximum(latency / base_latency, 1.0)
                ramp = np.minimum(1.0 + 2.6 * (lratio - 1.0), 5.0)
                runm2 = enabled & act
                runm2 &= now >= start_col
                runm2 &= ~finished
                if has_nonloop:
                    newly = (~loop_col) & runm2 & (runtime >= cycle_col)
                    if newly.any():
                        finished |= newly
                        runm2 &= ~newly
                position = np.where(
                    loop_col, np.mod(runtime, cycle_col), runtime
                )
                idx2 = np.empty((n_thr, width), dtype=np.int64)
                for k in range(n_thr):
                    idx2[k] = plans[k].bounds.searchsorted(
                        position[k], side="right"
                    )
                np.minimum(idx2, nph_col - 1, out=idx2)
                gidx = idx2 + plan_offsets
                nid2 = name_all[gidx]
                sync2 = runm2 & sync_all[gidx] & (nid2 != last_name_id)
                np.copyto(last_name_id, nid2, where=runm2)
                for k in range(n_thr):
                    draw = streams[k].next(runm2[k])
                    ou_k = ou[k]
                    np.copyto(
                        ou_k, ou_alpha * ou_k + ou_noise * draw,
                        where=runm2[k],
                    )
                mod2 = np.maximum(1.0 + variability * ou, 0.1)
                runtime += np.where(runm2, dt, 0.0)
                unplaced2 = runm2 & (affinity < 0)
                if unplaced2.any():
                    # First run of a thread: scalar placement order —
                    # thread k sees the bounds updated by threads < k.
                    for k in range(n_thr):
                        unplaced = unplaced2[k]
                        if not unplaced.any():
                            continue
                        aff = affinity[k]
                        np.copyto(
                            aff, np.argmin(bound, axis=0), where=unplaced
                        )
                        cols = np.nonzero(unplaced)[0]
                        bound[aff[cols], cols] += 1
                        ctx += unplaced
                onehot3 = (affinity[None] == pkg_col3) & runm2[None]
                cp = onehot3.sum(axis=1, dtype=np.int64)
                ctx += np.maximum(cp - smt, 0).sum(axis=0)
                share = np.where(cp > smt, smt / cp, 1.0)
                smt_scale = np.where(cp <= 1, 1.0, smt_yield2 / cp)
                active_pkg = cp > 0

                # (3) CPU packages: per-thread execution and traffic
                # computed for every (thread, lane) at once, then
                # accumulated into per-package partials in thread order
                # (row layout mirrors the scalar accumulators).
                aff_safe2 = np.maximum(affinity, 0)
                share_g = share[aff_safe2, lanes]
                smt_g = smt_scale[aff_safe2, lanes]
                cp_g = cp[aff_safe2, lanes]
                G = mat_all[gidx]
                occ2 = G[..., _C_OCC0] * share_g
                tgt = np.maximum(
                    np.minimum(G[..., _C_UPC] * mod2, max_upc), 1.0e-6
                )
                cpi = 1.0 / tgt
                stall = G[..., _C_SM] * latency
                tc = cycles * occ2
                texec2 = (smt_g * tc) / (cpi + stall)
                tfetch2 = texec2 * G[..., _C_WF1]
                tfp = texec2 * G[..., _C_FP]
                tspec = (G[..., _C_SPEC] * tc) * mod2
                kuops = texec2 / 1000.0
                lm = (kuops * G[..., _C_L3]) * mod2
                tlbm = (kuops * G[..., _C_TLBK]) * mod2
                pf = ((lm * ppm) * G[..., _C_STREAM]) * ramp
                sharing = np.maximum(cp_g - 1, 0)
                wb = lm * (G[..., _C_WB] * (1.0 + G[..., _C_CPRESS] * sharing))
                pw = tlbm * pw_per_tlb
                ua = G[..., _C_UNC] * occ2
                tx2 = (((lm + wb) + pw) + ua) + pf
                contrib = np.stack(
                    (
                        texec2, tfetch2, tfp, tspec, lm, wb, pw, pf, ua,
                        tlbm, G[..., _C_STREAM] * tx2, tx2,
                        G[..., _C_FR], G[..., _C_FW], G[..., _C_HW],
                        G[..., _C_NRX], G[..., _C_NTX],
                    )
                )
                acc = np.zeros((17, n_pkg, width))
                for k in range(n_thr):
                    acc += np.where(
                        onehot3[None, :, k, :], contrib[:, k, None, :], 0.0
                    )
                # max() is order-free, so the package occupancy fold can
                # reduce over the thread axis in one pass.
                occm = np.max(
                    np.where(onehot3, occ2[None], 0.0), axis=1
                )
                psync = (onehot3 & sync2[None]).any(axis=1)
                (
                    p_exec, p_fetch, p_fp, p_spec, p_dlm, p_wb, p_pw, p_pf,
                    p_ua, p_tlb, p_streamw, p_weight, p_fr, p_fw, p_hw,
                    p_nrx, p_ntx,
                ) = acc
                ib = np.minimum((irq * isc) / cycles, 0.5)
                occ = np.where(active_pkg, np.minimum(occm + ib, 1.0), ib)
                halted = cycles * (1.0 - occ)
                idle_uops = cycles * ib
                fetched = np.where(active_pkg, p_fetch, idle_uops * 0.4)
                executed = np.where(active_pkg, p_exec, idle_uops * 0.35)
                stream_p = np.where(
                    active_pkg & (p_weight > 0), p_streamw / p_weight, 0.5
                )
                rhr = np.where(p_fr > 0, p_hw / p_fr, 1.0)
                # Package power (CpuPackage.power, vectorized per row).
                occ_pw = 1.0 - halted / cycles
                fupc = fetched / cycles
                eupc = executed / cycles
                supc = p_spec / cycles
                fp_share = np.where(executed > 0, p_fp / executed, 0.0)
                issue = np.minimum(
                    eupc / np.where(occ_pw > 1.0e-9, occ_pw, 1.0e-9), 1.0
                )
                ascale = stall_fraction + (1.0 - stall_fraction) * issue
                dynamic = (uop_w * fupc) * (1.0 + fp_premium * fp_share) + (
                    spec_w * supc
                )
                pkg_power = (
                    halted_v
                    + ((active_delta * occ_pw) * ascale) * power_scale
                    + dynamic * power_scale
                )
                # System folds, summed in package order like the scalar
                # per-quantity accumulators (never ndarray.sum: pairwise
                # summation would reorder the adds).
                demand = np.zeros(width)
                prefetch_sum = np.zeros(width)
                file_read = np.zeros(width)
                file_write = np.zeros(width)
                tlb_total = np.zeros(width)
                weighted_hit = np.zeros(width)
                net_rx = np.zeros(width)
                net_tx = np.zeros(width)
                for p in range(n_pkg):
                    demand += ((p_dlm[p] + p_wb[p]) + p_pw[p]) + p_ua[p]
                    prefetch_sum += p_pf[p]
                    file_read += p_fr[p]
                    file_write += p_fw[p]
                    tlb_total += p_tlb[p]
                    weighted_hit += rhr[p] * p_fr[p]
                    net_rx += p_nrx[p]
                    net_tx += p_ntx[p]
                sync_req = psync.any(axis=0)

                # (4) Page cache: dirty accounting and writeback policy.
                fault_read = (tlb_total * fault_ratio) * fault_bytes
                total_read = file_read + fault_read
                hit_ratio = np.where(
                    total_read > 0, weighted_hit / total_read, 1.0
                )
                np.copyto(pc_pending, pc_dirty, where=sync_req)
                pc_dirty += (file_write / dt) * dt
                read_req = ((total_read / dt) * dt) * (1.0 - hit_ratio)
                in_sync = pc_pending > 0.0
                drained_s = np.minimum(
                    np.minimum(pc_pending, pc_dirty), wc_dt
                )
                frac = pc_dirty / pc_bytes
                in_bg = ~in_sync & (frac > bg_ratio)
                urgency = np.minimum(1.0, (frac - bg_ratio) / pc_denom)
                drained_b = np.minimum(
                    pc_dirty, wc_dt * (0.15 + 0.85 * urgency)
                )
                write_bytes = np.where(
                    in_sync, drained_s, np.where(in_bg, drained_b, 0.0)
                )
                pc_dirty -= write_bytes
                np.copyto(pc_pending, pc_pending - drained_s, where=in_sync)
                pc_synced += np.where(in_sync, drained_s, 0.0)
                np.copyto(
                    pc_pending, 0.0, where=in_sync & (pc_dirty <= 0.0)
                )
                np.maximum(pc_dirty, 0.0, out=pc_dirty)
                q_rand_read += read_req
                q_seq_write += write_bytes

                # (5) Disk service: budget shared across queues in fixed
                # order (sequential writes, random reads, random writes;
                # the sequential-read queue is structurally empty).
                budget = np.full(width, disk_budget0)
                svc = np.minimum(budget, q_seq_write / seq_thr)
                served_sw = svc * seq_thr
                q_seq_write -= served_sw
                budget -= svc
                seek_s = svc * seq_seekf
                xfer_s = svc * (1.0 - seq_seekf)
                svc = np.minimum(budget, q_rand_read / rand_thr)
                served_rr = svc * rand_thr
                q_rand_read -= served_rr
                budget -= svc
                seek_s += svc * rand_seekf
                xfer_s += svc * (1.0 - rand_seekf)
                svc = np.minimum(budget, q_rand_write / rand_thr)
                served_rw = svc * rand_thr
                q_rand_write -= served_rw
                budget -= svc
                seek_s += svc * rand_seekf
                xfer_s += svc * (1.0 - rand_seekf)
                disk_power = rot_n + (
                    seek_w * (seek_s / dt) + xfer_w * (xfer_s / dt)
                )
                read_served = served_rr
                write_served = served_sw + served_rw
                served_bytes = read_served + write_served
                disk_total_arr += served_bytes

                # (6) DMA for the disk array and the NIC's own engine;
                # coalesced completion interrupts round-robin across
                # packages through one shared cursor (disk, then NIC).
                dma_in = read_served + bg_half
                dma_out = write_served + bg_half
                dma_io = dma_in + dma_out
                dma_snoops = dma_io / line_bytes
                dma_txn = (dma_io / 512.0) * tx_factor
                dma_residual += dma_io / dma_bpi
                dma_ints = np.floor(dma_residual)
                dma_residual -= dma_ints
                dma_unc = dma_ints * 3.0
                dma_dram_r = dma_out / line_bytes
                dma_dram_w = dma_in / line_bytes
                rx = np.minimum(net_rx, nic_line) * dt
                tx_b = np.minimum(net_tx, nic_line) * dt
                nic_total += rx + tx_b
                nic_io = rx + tx_b
                nic_snoops = nic_io / line_bytes
                nic_txn = (nic_io / 512.0) * tx_factor
                nic_residual += nic_io / nic_bpi
                nic_ints = np.floor(nic_residual)
                nic_residual -= nic_ints
                nic_unc = nic_ints * 3.0
                nic_dram_r = tx_b / line_bytes
                nic_dram_w = rx / line_bytes
                ints = dma_ints.astype(np.int64)
                kk = (pkg_col - irq_cursor[None, :]) % n_pkg
                recv = (ints[None, :] - kk + (n_pkg - 1)) // n_pkg
                pend_disk += recv
                acct_disk += recv
                irq_cursor += ints
                irq_cursor %= n_pkg
                ints = nic_ints.astype(np.int64)
                kk = (pkg_col - irq_cursor[None, :]) % n_pkg
                recv = (ints[None, :] - kk + (n_pkg - 1)) // n_pkg
                pend_net += recv
                acct_net += recv
                irq_cursor += ints
                irq_cursor %= n_pkg

                # (7) Bus arbitration; grant ratios scale CPU traffic.
                # The fold over packages mirrors the scalar fused pass
                # (step 6/7 in system.py), in package order.
                total_snoops = dma_snoops + nic_snoops
                demand += total_snoops
                sat = demand >= bus_cap_dt
                dr = np.where(sat, bus_cap_dt / demand, 1.0)
                pr = np.where(
                    sat,
                    0.0,
                    np.where(
                        prefetch_sum > 0,
                        np.minimum(
                            (bus_cap_dt - demand) / prefetch_sum, 1.0
                        ),
                        1.0,
                    ),
                )
                granted_total = demand * dr + prefetch_sum * pr
                util = np.minimum(granted_total / bus_cap_dt, 1.0)
                eff = np.minimum(util * bus_cf, 0.875)
                bus_latency[:] = base_latency / (1.0 - eff)
                granted_snoops = total_snoops * dr
                g_dlm = p_dlm * dr
                g_wb = p_wb * dr
                g_pw = p_pw * dr
                g_ua = p_ua * dr
                g_pf = p_pf * pr
                own_tx = (((g_dlm + g_wb) + g_pw) + g_ua) + g_pf
                cpu_reads = np.zeros(width)
                cpu_writes = np.zeros(width)
                traffic_weight = np.zeros(width)
                stream_weighted = np.zeros(width)
                uncacheable_cpu = np.zeros(width)
                prefetch_total = np.zeros(width)
                cpu_power = np.zeros(width)
                halted_total = np.zeros(width)
                for p in range(n_pkg):
                    cpu_reads += (g_dlm[p] + g_pw[p]) + g_pf[p]
                    cpu_writes += g_wb[p]
                    traffic_weight += own_tx[p]
                    stream_weighted += stream_p[p] * own_tx[p]
                    uncacheable_cpu += g_ua[p]
                    prefetch_total += g_pf[p]
                    cpu_power += pkg_power[p]
                    halted_total += halted[p]
                blended = np.where(
                    traffic_weight > 0, stream_weighted / traffic_weight, 0.5
                )
                n_run = cp.sum(axis=0)
                dma_active = (dma_io > 0) | (nic_io > 0)
                stream_count = np.maximum(
                    n_run + np.where(dma_active, 1.0, 0.0), 1.0
                )

                # (8) DRAM: granted CPU traffic plus device DMA.
                drr = dma_dram_r + nic_dram_r
                drw = dma_dram_w + nic_dram_w
                total_acc = ((cpu_reads + cpu_writes) + drr) + drw
                over = total_acc > dram_cap_dt
                scale = dram_cap_dt / total_acc
                cr = np.where(over, cpu_reads * scale, cpu_reads)
                cw = np.where(over, cpu_writes * scale, cpu_writes)
                drr = np.where(over, drr * scale, drr)
                drw = np.where(over, drw * scale, drw)
                total_acc = np.where(over, dram_cap_dt, total_acc)
                cpu_hit = (row_rand + (row_stream - row_rand) * blended) * (
                    1.0 / (1.0 + 0.03 * np.maximum(0.0, stream_count - 1.0))
                )
                dma_streams = np.maximum(stream_count * 0.25, 1.0)
                dma_hit = dma_hit_base * (
                    1.0 / (1.0 + 0.03 * np.maximum(0.0, dma_streams - 1.0))
                )
                activations = (cr + cw) * (1.0 - cpu_hit) + (drr + drw) * (
                    1.0 - dma_hit
                )
                dram_reads = cr + drr
                dram_writes = cw + drw
                dram_energy = (
                    dram_reads * dram_re
                    + dram_writes * dram_we
                    + activations * dram_ae
                    + dram_bg_dt
                )
                row_hit = np.where(
                    total_acc > 0, 1.0 - activations / total_acc, 1.0
                )
                eff_cap = dram_cap_dt * (
                    row_hit + (1.0 - row_hit) * dram_rtf
                )
                util_d = total_acc / eff_cap
                congestion = np.minimum(util_d * dram_cf, dram_cong_cap)
                dram_latency[:] = 1.0 / (1.0 - congestion)
                active_fraction = np.minimum(1.0, util_d)
                memory_power = dram_energy / dt

                # (9) Chipset and I/O ground-truth power; energy books.
                unc_total = (uncacheable_cpu + dma_unc) + nic_unc
                sa = 1.0 - halted_total / cycles_total
                draw_c = chip_stream.next(act)
                chip_offset[:] = (
                    chip_mean + chip_alpha * (chip_offset - chip_mean)
                ) + chip_noise * draw_c
                gate = (sa * sa) * (3.0 - 2.0 * sa)
                dynamic_c = chip_bus_w * util + chip_io_w * np.minimum(
                    1.0, (unc_total / dt) / 2.0e5
                )
                chipset_power = (
                    chip_nominal + dynamic_c * 0.35
                ) + chip_offset * gate
                io_bytes = dma_io + nic_io
                io_txn = dma_txn + nic_txn
                io_energy = (
                    io_bytes * io_sw_e
                    + io_txn * io_tx_e
                    + unc_total * 0.15e-6
                )
                io_power = io_static + io_energy / dt
                io_total += io_bytes
                energy5[0] += cpu_power * dt
                energy5[1] += chipset_power * dt
                energy5[2] += memory_power * dt
                energy5[3] += io_power * dt
                energy5[4] += disk_power * dt
                e_time += dt
                batch_energy += (
                    (((cpu_power + chipset_power) + memory_power) + io_power)
                    + disk_power
                ) * dt
                last_powers[0] = cpu_power
                last_powers[1] = chipset_power
                last_powers[2] = memory_power
                last_powers[3] = io_power
                last_powers[4] = disk_power

                # (10) Per-process accounting (needs the bus grant).
                proc_runtime += np.where(runm2, dt * occ2, 0.0)
                proc_exec += np.where(runm2, texec2, 0.0)
                proc_fetch += np.where(runm2, tfetch2, 0.0)
                proc_bus += np.where(runm2, tx2 * dr, 0.0)
                ran_ever |= runm2

                # (11) Counters (the scalar fast path, rows as arrays).
                driver_unc = (dma_unc + nic_unc) / n_pkg
                oc = (traffic_weight - own_tx) * _CROSS_COHERENCE_FRACTION
                r_cycles += cycles
                r_halted += halted
                r_fetched += fetched
                r_l3 += g_dlm
                r_tlb += p_tlb
                r_unc += g_ua + driver_unc
                r_dma += granted_snoops + oc
                r_bus += (own_tx + granted_snoops) + oc
                r_irq += irq
                r_disk_irq += disk_irqs
                r_net_irq += net_irqs
                r_dram_reads0 += dram_reads
                r_dram_writes0 += dram_writes
                r_dram_act0 += activations
                r_dram_time0 += active_fraction * dt
                r_prefetch0 += prefetch_total
                r_writeback0 += cpu_writes
                r_io_bytes0 += io_bytes
                r_io_tx0 += io_txn
                r_seek0 += seek_s
                r_xfer0 += xfer_s
                r_disk_bytes0 += served_bytes
                r_sectors0 += served_bytes / 512.0
                r_ctx0 += ctx

                # (12) Instrumentation: the DAQ integrates power every
                # tick; a lane whose sampler deadline passed closes its
                # window (counter snapshot + DAQ means + monitor pulse).
                angle = (two_pi * now) / 900.0
                powers5 = (
                    cpu_power, chipset_power, memory_power, io_power,
                    disk_power,
                )
                for si in range(5):
                    drift = 1.0 + drift_rel * np.sin(
                        angle + drift_phases[si]
                    )
                    wenergy[si] += ((powers5[si] * gains[si]) * drift) * dt
                closing = act & (now + 1.0e-12 >= samp_deadline)
                if closing.any():
                    closed = np.nonzero(closing)[0]
                    for lane_i in closed:
                        lane = int(lane_i)
                        now_l = float(now[lane])
                        snap = c3[:, :, lane].copy()
                        c3[:, :, lane] = 0.0
                        samp_ts[lane].append(now_l)
                        samp_dur[lane].append(
                            now_l - float(samp_wstart[lane])
                        )
                        samp_counts[lane].append(snap)
                        samp_wstart[lane] = now_l
                        jitter = float(
                            samp_gens[lane].normal(0.0, sample_jitter)
                        )
                        samp_deadline[lane] = now_l + max(
                            sample_period + jitter, 1.0e-3
                        )
                        duration = now_l - float(daq_wstart[lane])
                        if duration <= 0.0:
                            raise ValueError(
                                "sync pulses must advance in time"
                            )
                        samples = max(1.0, daq_rate * duration)
                        noise = math.hypot(
                            daq_noise_rel / math.sqrt(samples), 0.0015
                        )
                        lane_means = daq_means[lane]
                        gen = daq_gens[lane]
                        for si in range(5):
                            mean = float(wenergy[si, lane]) / duration
                            mean *= 1.0 + noise * float(
                                gen.standard_normal()
                            )
                            lane_means[si].append(mean)
                            wenergy[si, lane] = 0.0
                        daq_ts[lane].append(now_l)
                        daq_wstart[lane] = now_l
                        stack = monitors.get(lane)
                        if stack:
                            view = self.lane(lane)
                            for monitor in stack:
                                monitor.on_window(view, now_l)
                    if fleet_monitor is not None:
                        fleet_monitor.on_pulse(
                            self, closed, float(now[closed[0]])
                        )

        if saved is not None:
            for name, block in zip(self._STATE_NAMES, saved):
                getattr(self, name)[..., frozen] = block
        if obs_on:
            self._record_telemetry(n_ticks, act, _monotonic() - t0)
        return np.where(act, batch_energy, 0.0)

    def _record_telemetry(
        self, n_ticks: int, act: np.ndarray, elapsed_s: float
    ) -> None:
        """Batch-boundary profiling hook (one-bool cost when disabled).

        Mirrors ``Server._record_telemetry`` under ``fleet_``-prefixed
        names; ``fleet_lane_ticks_*`` aggregate over active lanes.
        """
        reg = obs.registry()
        labels = {"workload": self.workload.name}
        lane_ticks = float(n_ticks) * float(act.sum())
        reg.inc("fleet_lane_ticks_total", lane_ticks, labels)
        reg.observe(
            "fleet_batch_ticks", float(n_ticks), labels,
            buckets=_BATCH_BUCKETS,
        )
        reg.observe("fleet_run_ticks_seconds", elapsed_s, labels)
        if elapsed_s > 0:
            reg.gauge(
                "fleet_lane_ticks_per_second", lane_ticks / elapsed_s, labels
            )
        reg.gauge("fleet_width", float(self.width), labels)
        reg.gauge("fleet_time_seconds", self.now_s, labels)


# -- lane views --------------------------------------------------------
#
# Read-only facades exposing one lane of the SoA state through the same
# attribute surface the scalar ``Server`` offers (``counters.
# _rows``/``peek``, ``sampler.last_window``/``finish``, ``energy.
# _energy_j``/``mean_power_w``, ``process_stats``, ``_last_breakdown``)
# so monitors and tests written against ``Server`` read fleet lanes
# unchanged.


class _MonitorFanout:
    """Fans a scalar server's single monitor slot out to a stack.

    ``compat="scalar"`` lanes are real :class:`Server` objects with one
    ``_monitor`` slot; this shim holds the fleet's live per-lane stack
    (the same list object :meth:`FleetServer.attach_monitor` mutates)
    so multiple monitors attach to a compat lane too.
    """

    __slots__ = ("monitors",)

    def __init__(self, monitors: list) -> None:
        self.monitors = monitors

    def on_window(self, server, pulse_s: float) -> None:
        for monitor in self.monitors:
            monitor.on_window(server, pulse_s)


class _LaneCounters:
    """One lane's counter bank (``CounterBank``-shaped slice)."""

    __slots__ = ("_fleet", "_lane", "events", "n_cpus")

    def __init__(self, fleet: "FleetServer", lane: int) -> None:
        self._fleet = fleet
        self._lane = lane
        self.events = _EVENTS
        self.n_cpus = fleet._n_pkg

    @property
    def _rows(self) -> "list[list[float]]":
        c3 = self._fleet._counts3d
        return [c3[i, :, self._lane].tolist() for i in range(_N_EVENTS)]

    def peek(self, event: Event) -> np.ndarray:
        return np.array(
            self._fleet._counts3d[_EIDX[event], :, self._lane], dtype=float
        )

    def read_and_clear(self) -> "dict[Event, np.ndarray]":
        c3 = self._fleet._counts3d
        snapshot = {}
        for event in _EVENTS:
            row = c3[_EIDX[event], :, self._lane]
            snapshot[event] = np.array(row, dtype=float)
            row[:] = 0.0
        return snapshot


class _LaneSampler:
    """One lane's counter sampler (``CounterSampler``-shaped)."""

    __slots__ = ("_fleet", "_lane")

    def __init__(self, fleet: "FleetServer", lane: int) -> None:
        self._fleet = fleet
        self._lane = lane

    @property
    def n_samples(self) -> int:
        return len(self._fleet._samp_ts[self._lane])

    def last_window(self):
        fleet, lane = self._fleet, self._lane
        if not fleet._samp_ts[lane]:
            return None
        snap = fleet._samp_counts[lane][-1]
        counts = {event: snap[_EIDX[event]] for event in _EVENTS}
        return fleet._samp_ts[lane][-1], fleet._samp_dur[lane][-1], counts

    def disable(self) -> None:
        self._fleet._samp_deadline[self._lane] = np.inf

    def finish(self) -> CounterTrace:
        fleet, lane = self._fleet, self._lane
        if not fleet._samp_ts[lane]:
            raise ValueError(
                "no counter samples collected; run longer than one sample "
                "period"
            )
        snaps = fleet._samp_counts[lane]
        counts = {
            event: np.vstack([snap[_EIDX[event]] for snap in snaps])
            for event in _EVENTS
        }
        return CounterTrace(
            timestamps=np.asarray(fleet._samp_ts[lane]),
            durations=np.asarray(fleet._samp_dur[lane]),
            counts=counts,
        )


class _LaneEnergy:
    """One lane's energy account (``EnergyAccount``-shaped)."""

    __slots__ = ("_fleet", "_lane")

    def __init__(self, fleet: "FleetServer", lane: int) -> None:
        self._fleet = fleet
        self._lane = lane

    @property
    def _energy_j(self) -> "dict[Subsystem, float]":
        row = self._fleet._energy5
        lane = self._lane
        return {s: float(row[i, lane]) for i, s in enumerate(SUBSYSTEMS)}

    @property
    def elapsed_s(self) -> float:
        return float(self._fleet._e_time[self._lane])

    def mean_power_w(self, subsystem: Subsystem) -> float:
        fleet, lane = self._fleet, self._lane
        elapsed = float(fleet._e_time[lane])
        if elapsed == 0:
            raise ValueError("no energy recorded yet")
        return float(fleet._energy5[_SIDX[subsystem], lane]) / elapsed

    def total_energy_j(self) -> float:
        row = self._fleet._energy5
        lane = self._lane
        return float(sum(row[i, lane] for i in range(5)))


#: Subsystem -> energy row index, in ``SUBSYSTEMS`` order.
_SIDX = {s: i for i, s in enumerate(SUBSYSTEMS)}


class _LaneView:
    """Read-only ``Server`` facade over one fleet lane.

    Everything monitors and analysis code read off a scalar server —
    ``now_s``, ``counters``, ``sampler``, ``energy``, ``process_stats``,
    ``_last_breakdown`` — resolves to the lane's slice of the fleet
    arrays.  It is a *view*: stepping the fleet advances what it reads.
    """

    __slots__ = ("_fleet", "_lane", "config", "workload", "counters",
                 "sampler", "energy")

    def __init__(self, fleet: "FleetServer", lane: int) -> None:
        self._fleet = fleet
        self._lane = lane
        self.config = fleet.config
        self.workload = fleet.workload
        self.counters = _LaneCounters(fleet, lane)
        self.sampler = _LaneSampler(fleet, lane)
        self.energy = _LaneEnergy(fleet, lane)

    @property
    def now_s(self) -> float:
        return float(self._fleet._now[self._lane])

    @property
    def _last_breakdown(self) -> "PowerBreakdown | None":
        fleet, lane = self._fleet, self._lane
        if fleet._e_time[lane] == 0:
            return None
        p = fleet._last_powers[:, lane]
        return PowerBreakdown(
            cpu_w=float(p[0]),
            chipset_w=float(p[1]),
            memory_w=float(p[2]),
            io_w=float(p[3]),
            disk_w=float(p[4]),
        )

    @property
    def process_stats(self) -> "dict[int, ProcessStats]":
        fleet, lane = self._fleet, self._lane
        stats = {}
        for k in range(fleet._n_thr):
            if fleet._ran_ever[k, lane]:
                stats[k] = ProcessStats(
                    thread_id=k,
                    runtime_s=float(fleet._proc_runtime[k, lane]),
                    executed_uops=float(fleet._proc_exec[k, lane]),
                    fetched_uops=float(fleet._proc_fetch[k, lane]),
                    bus_transactions=float(fleet._proc_bus[k, lane]),
                )
        return stats


def simulate_fleet(
    workload: WorkloadSpec,
    duration_s: float = 300.0,
    seeds: "tuple[int, ...] | list[int]" = (1,),
    config: "SystemConfig | None" = None,
    pstate: int = 0,
    compat: str = "vector",
) -> "list[MeasuredRun]":
    """Simulate ``workload`` on ``len(seeds)`` lanes in one fleet pass.

    Lane ``i`` reproduces ``simulate_workload(workload, duration_s,
    seed=seeds[i], config, pstate)`` — same seed mixing, same metadata —
    with counters and energy bit-identical and DAQ power traces
    tolerance-bounded (bit-identical under ``compat="scalar"``).
    """
    mixed = [
        (int(seed) * 1000003 + _stable_hash(workload.name)) % (2**31)
        for seed in seeds
    ]
    fleet = FleetServer(
        config or SystemConfig(), workload, mixed, compat=compat
    )
    if pstate:
        fleet.set_all_pstates(pstate)
    runs = fleet.run(duration_s)
    for run, base in zip(runs, seeds):
        run.metadata["base_seed"] = int(base)
        run.metadata["pstate"] = int(pstate)
    return runs
