"""Hardware interrupt controller.

Routes device interrupts to processor packages (round-robin,
irqbalance-style) and timer interrupts to their own package, recording
every delivery in the OS's ``/proc/interrupts`` accounting.  The
processor's raw performance event only counts *how many* interrupts a
CPU serviced; per-vector attribution is the OS's doing (paper
Section 3.3, "Interrupts") — and it becomes essential once more than
one I/O device is active (disk + NIC), because the undifferentiated
count can no longer say which subsystem's power it represents.
"""

from __future__ import annotations

from repro.osim.procfs import InterruptAccounting, Vector


class InterruptController:
    """Delivery front-end over the per-vector accounting."""

    def __init__(self, n_packages: int) -> None:
        self.accounting = InterruptAccounting(n_packages)
        self.n_packages = n_packages
        #: Deliveries since the last drain, per package (all vectors).
        self._since_sample = [0.0] * n_packages
        #: Same, split per vector (the /proc/interrupts view).
        self._vector_since_sample: "dict[Vector, list[float]]" = {
            vector: [0.0] * n_packages for vector in Vector
        }
        #: Spare buffers swapped in by :meth:`drain_tick` so the hot
        #: loop does not allocate fresh lists every tick.
        self._spare_since_sample = [0.0] * n_packages
        self._spare_vector_since_sample: "dict[Vector, list[float]]" = {
            vector: [0.0] * n_packages for vector in Vector
        }

    def deliver_timer(self, per_package: "list[int]") -> None:
        """Timer ticks land on their own package.

        Accumulates straight into the accounting rows — the explicit-cpu
        ``deliver`` path with its per-call checks hoisted out (timer
        delivery runs every tick for every package).
        """
        accounting_row = self.accounting._counts[Vector.TIMER]
        since = self._since_sample
        vector_row = self._vector_since_sample[Vector.TIMER]
        for cpu, count in enumerate(per_package):
            if count:
                accounting_row[cpu] += count
                since[cpu] += count
                vector_row[cpu] += count

    def deliver_device(self, vector: Vector, count: int) -> None:
        """Device interrupts are balanced across packages."""
        for _ in range(count):
            cpu = self.accounting.deliver(vector, 1)
            self._since_sample[cpu] += 1
            self._vector_since_sample[vector][cpu] += 1

    def serviced_this_tick(self) -> "list[float]":
        """Interrupts per package since last drain (for CPU overhead)."""
        return list(self._since_sample)

    def drain_tick(self) -> "tuple[list[float], dict[Vector, list[float]]]":
        """(all-vector totals, per-vector counts) per package this tick.

        The returned buffers are valid until the *next* drain: the
        controller keeps two sets and swaps them, zeroing the set it
        hands out for reuse, so the per-tick path allocates nothing.
        """
        n = self.n_packages
        counts = self._since_sample
        vectors = self._vector_since_sample
        self._since_sample = spare = self._spare_since_sample
        self._vector_since_sample = self._spare_vector_since_sample
        self._spare_since_sample = counts
        self._spare_vector_since_sample = vectors
        for cpu in range(n):
            spare[cpu] = 0.0
        for vector_counts in self._vector_since_sample.values():
            for cpu in range(n):
                vector_counts[cpu] = 0.0
        return counts, vectors
