"""Hardware interrupt controller.

Routes device interrupts to processor packages (round-robin,
irqbalance-style) and timer interrupts to their own package, recording
every delivery in the OS's ``/proc/interrupts`` accounting.  The
processor's raw performance event only counts *how many* interrupts a
CPU serviced; per-vector attribution is the OS's doing (paper
Section 3.3, "Interrupts") — and it becomes essential once more than
one I/O device is active (disk + NIC), because the undifferentiated
count can no longer say which subsystem's power it represents.
"""

from __future__ import annotations

from repro.osim.procfs import InterruptAccounting, Vector


class InterruptController:
    """Delivery front-end over the per-vector accounting."""

    def __init__(self, n_packages: int) -> None:
        self.accounting = InterruptAccounting(n_packages)
        self.n_packages = n_packages
        #: Deliveries since the last drain, per package (all vectors).
        self._since_sample = [0.0] * n_packages
        #: Same, split per vector (the /proc/interrupts view).
        self._vector_since_sample: "dict[Vector, list[float]]" = {
            vector: [0.0] * n_packages for vector in Vector
        }

    def deliver_timer(self, per_package: "list[int]") -> None:
        """Timer ticks land on their own package."""
        for cpu, count in enumerate(per_package):
            if count:
                self.accounting.deliver(Vector.TIMER, count, cpu=cpu)
                self._since_sample[cpu] += count
                self._vector_since_sample[Vector.TIMER][cpu] += count

    def deliver_device(self, vector: Vector, count: int) -> None:
        """Device interrupts are balanced across packages."""
        for _ in range(count):
            cpu = self.accounting.deliver(vector, 1)
            self._since_sample[cpu] += 1
            self._vector_since_sample[vector][cpu] += 1

    def serviced_this_tick(self) -> "list[float]":
        """Interrupts per package since last drain (for CPU overhead)."""
        return list(self._since_sample)

    def drain_tick(self) -> "tuple[list[float], dict[Vector, list[float]]]":
        """(all-vector totals, per-vector counts) per package this tick."""
        counts = list(self._since_sample)
        vectors = {v: list(c) for v, c in self._vector_since_sample.items()}
        self._since_sample = [0.0] * self.n_packages
        for vector_counts in self._vector_since_sample.values():
            for cpu in range(self.n_packages):
                vector_counts[cpu] = 0.0
        return counts, vectors
