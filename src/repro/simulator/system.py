"""The simulated server: wiring and the main tick loop.

One :class:`Server` owns four CPU packages, the shared front-side bus,
DRAM, chipset, I/O chips, the disk array, the OS layer (scheduler, page
cache, timer, interrupt accounting) and the instrumentation (counter
bank + 1 Hz sampler, power sensors + DAQ).  Each tick the trickle-down
causality of the paper's Figure 1 plays out:

    threads -> uops -> cache/TLB misses -> bus -> DRAM
    threads -> file I/O -> page cache -> disk -> DMA -> bus snoops,
                 DRAM accesses, I/O switching, interrupts -> CPUs

:func:`simulate_workload` is the main entry point: it runs a workload
spec for a given duration and returns a
:class:`~repro.core.traces.MeasuredRun` ready for model training.
"""

from __future__ import annotations

import logging
from time import monotonic as _monotonic

from repro import obs
from repro.core.events import Event, Subsystem, SUBSYSTEMS
from repro.core.traces import MeasuredRun
from repro.counters.perfctr import CounterBank
from repro.counters.sampler import CounterSampler
from repro.measurement.daq import DataAcquisition
from repro.measurement.sensors import PowerSensors
from repro.measurement.sync import align_windows
from repro.osim.pagecache import PageCache
from repro.osim.procfs import Vector
from repro.osim.process import SimThread
from repro.osim.scheduler import Scheduler
from repro.osim.timer import TimerSource
from repro.simulator.chipset import ChipsetSubsystem
from repro.simulator.config import SystemConfig
from repro.simulator.cpu import CpuPackage
from repro.simulator.disk import DiskSubsystem
from repro.simulator.dma import DmaEngine
from repro.simulator.dram import DramSubsystem
from repro.simulator.interrupts import InterruptController
from repro.simulator.io_subsys import IoSubsystem
from repro.simulator.membus import FrontSideBus
from repro.simulator.nic import NicConfig, NicDevice
from repro.simulator.power import EnergyAccount, PowerBreakdown, ProcessStats
from repro.simulator.rng import RngStreams
from repro.simulator.tlb import TlbPolicy
from repro.workloads.base import WorkloadSpec

logger = logging.getLogger(__name__)

#: Coherence traffic between processors as a fraction of a package's own
#: bus transactions (the paper notes it is very small for its workloads).
_CROSS_COHERENCE_FRACTION = 0.01

#: Bucket edges for the run_ticks batch-size histogram (ticks).
_BATCH_BUCKETS = (1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0)


class Server:
    """A configured 4-way SMP server ready to run one workload."""

    def __init__(
        self,
        config: SystemConfig,
        workload: WorkloadSpec,
        seed: int,
        counter_bank: "CounterBank | None" = None,
    ) -> None:
        """Build the machine.

        ``counter_bank`` overrides the default full counter bank — pass
        a :class:`~repro.counters.multiplex.MultiplexedCounterBank` to
        emulate a PMU with fewer slots than events.
        """
        self.config = config
        self.workload = workload
        self.rng = RngStreams(seed)
        self.now_s = 0.0

        cpu_cfg, cache_cfg = config.cpu, config.cache
        self.packages = [
            CpuPackage(i, cpu_cfg, cache_cfg) for i in range(config.num_packages)
        ]
        self.bus = FrontSideBus(config.bus)
        self.dram = DramSubsystem(config.dram)
        self.chipset = ChipsetSubsystem(config.chipset, self.rng.stream("chipset"))
        self.io = IoSubsystem(config.io)
        self.disk = DiskSubsystem(config.disk)
        self.dma = DmaEngine(config.io)
        self.nic = NicDevice(NicConfig(), config.io)
        self.tlb_policy = TlbPolicy()

        self.scheduler = Scheduler(config.num_packages, cpu_cfg.smt_contexts)
        self.pagecache = PageCache(config.osim)
        self.timer = TimerSource(config.osim, config.num_packages)
        self.irq = InterruptController(config.num_packages)

        self.threads = [
            SimThread(i, plan, workload.variability, self.rng.stream(f"thread-{i}"))
            for i, plan in enumerate(workload.threads)
        ]

        self.counters = counter_bank or CounterBank(tuple(Event), config.num_packages)
        if self.counters.n_cpus != config.num_packages:
            raise ValueError(
                "counter bank CPU count does not match the machine"
            )
        self.sampler = CounterSampler(
            self.counters, config.measurement, self.rng.stream("sampler")
        )
        self.sensors = PowerSensors(
            SUBSYSTEMS, config.measurement, self.rng.stream("sensors")
        )
        self.daq = DataAcquisition(
            self.sensors, config.measurement, self.rng.stream("daq")
        )
        self.energy = EnergyAccount()
        #: DRAM-side latency inflation observed last tick (see
        #: DramTick.latency_factor); combines with FSB queueing.
        self._dram_latency_factor = 1.0
        #: Per-thread cumulative activity (OS-virtualised counters, the
        #: facility perfctr offered): thread_id -> ProcessStats.
        self.process_stats: "dict[int, ProcessStats]" = {}
        #: Power breakdown of the most recent tick (None before the
        #: first tick).
        self._last_breakdown: "PowerBreakdown | None" = None
        #: Optional live monitor (see :class:`repro.obs.live.LiveMonitor`);
        #: notified once per closed sampler window, never per tick.
        self._monitor = None

    # -- live monitoring ----------------------------------------------

    def attach_monitor(self, monitor) -> None:
        """Attach a live monitor notified at sampler window boundaries.

        ``monitor`` needs an ``on_window(server, pulse_s)`` method; an
        ``on_attach(server)`` hook, when present, is called now so the
        monitor can prime its baselines (e.g. the energy account).  The
        monitor only *reads* simulator state, so an attached run stays
        bit-identical to an unmonitored one.
        """
        self._monitor = monitor
        on_attach = getattr(monitor, "on_attach", None)
        if on_attach is not None:
            on_attach(self)

    def detach_monitor(self) -> None:
        self._monitor = None

    # -- one tick ------------------------------------------------------

    def tick(self) -> PowerBreakdown:
        """Advance the machine by one tick; returns true power.

        Thin wrapper over :meth:`run_ticks` so the single-tick and
        batched paths cannot diverge.
        """
        self.run_ticks(1)
        assert self._last_breakdown is not None
        return self._last_breakdown

    def run_ticks(self, n_ticks: int) -> float:
        """Advance the machine ``n_ticks`` ticks; the batched hot path.

        Produces bit-identical state to calling :meth:`tick` in a loop
        — same model arithmetic, same RNG draw order, same counter
        accumulation order — but hoists per-tick constants out of the
        loop, fuses the per-package aggregation passes, and accumulates
        directly into the counter bank's rows when the bank is a plain
        :class:`CounterBank` (a multiplexed bank gates ``add`` per
        event, so it is driven through the generic path).

        Returns the true energy consumed over the batch in joules
        (``sum(breakdown.total_w * tick_s)``), which is what cluster
        simulations integrate.
        """
        if n_ticks <= 0:
            return 0.0
        # Profiling hooks fire once per *batch*, never per tick, so the
        # disabled path costs a single bool read and the enabled path
        # stays inside the 5% gate scripts/obs_overhead.py enforces.
        obs_on = obs.enabled()
        obs_t0 = _monotonic() if obs_on else 0.0
        cfg = self.config
        dt = cfg.tick_s
        workload = self.workload
        smt_yield = workload.smt_yield
        base_latency = cfg.bus.base_latency_cycles
        background_dma_bytes = workload.background_dma_bps * dt
        n = cfg.num_packages
        threads = self.threads
        packages = self.packages
        # Per-package bound methods plus index-assigned scratch lists,
        # reused every tick (their contents are consumed within the
        # tick before being overwritten).
        package_tick_funcs = [p.tick for p in packages]
        package_power_funcs = [p.power for p in packages]
        package_idle_funcs = [p._finish_idle_tick for p in packages]
        # Idle-branch constants (pstate is fixed for the batch: nothing
        # calls set_pstate while run_ticks is on the stack).
        package_cycles = [p._frequency_hz * dt for p in packages]
        package_isc = [p._interrupt_service_cycles for p in packages]
        package_ticks: list = [None] * n
        raw_traffic: list = [None] * n
        own_tx = [0.0] * n
        range_n = range(n)
        scheduler = self.scheduler
        bus = self.bus
        disk = self.disk
        process_stats = self.process_stats
        write_capacity = disk.write_capacity_bps()
        # Bound methods hoisted so the loop pays no attribute lookups.
        timer_tick = self.timer.tick
        irq_deliver_timer = self.irq.deliver_timer
        irq_drain = self.irq.drain_tick
        irq_deliver_device = self.irq.deliver_device
        scheduler_tick = scheduler.tick
        tlb_read_bytes = self.tlb_policy.disk_read_bytes
        pagecache_tick = self.pagecache.tick
        pagecache_request_sync = self.pagecache.request_sync
        disk_submit = disk.submit
        disk_do_tick = disk.tick
        dma_do_tick = self.dma.tick
        nic_do_tick = self.nic.tick
        bus_do_tick = bus.tick
        dram_do_tick = self.dram.tick
        chipset_do_tick = self.chipset.tick
        io_do_tick = self.io.tick
        # Energy integration is unrolled into local accumulators seeded
        # from (and written back to) the account's dict: each subsystem
        # accumulator sees the exact same sequence of ``+= watts * dt``
        # as EnergyAccount.record_dict would apply.
        if dt <= 0:
            raise ValueError("dt_s must be positive")
        energy_account = self.energy
        energy_j = energy_account._energy_j
        sub_cpu = Subsystem.CPU
        sub_chipset = Subsystem.CHIPSET
        sub_memory = Subsystem.MEMORY
        sub_io = Subsystem.IO
        sub_disk = Subsystem.DISK
        e_cpu = energy_j[sub_cpu]
        e_chipset = energy_j[sub_chipset]
        e_memory = energy_j[sub_memory]
        e_io = energy_j[sub_io]
        e_disk = energy_j[sub_disk]
        e_time = energy_account._time_s
        daq_record = self.daq.record_tick
        daq_close = self.daq.close_window
        maybe_sample = self.sampler.maybe_sample
        live_monitor = self._monitor
        vector_disk = Vector.DISK
        vector_network = Vector.NETWORK

        counters = self.counters
        fast = type(counters) is CounterBank
        if fast:
            row = counters.row
            r_cycles = row(Event.CYCLES)
            r_halted = row(Event.HALTED_CYCLES)
            r_fetched = row(Event.FETCHED_UOPS)
            r_l3 = row(Event.L3_MISSES)
            r_tlb = row(Event.TLB_MISSES)
            r_unc = row(Event.UNCACHEABLE_ACCESSES)
            r_dma = row(Event.DMA_ACCESSES)
            r_bus = row(Event.BUS_TRANSACTIONS)
            r_irq = row(Event.INTERRUPTS)
            r_disk_irq = row(Event.DISK_INTERRUPTS)
            r_net_irq = row(Event.NETWORK_INTERRUPTS)
            r_dram_reads = row(Event.DRAM_READS)
            r_dram_writes = row(Event.DRAM_WRITES)
            r_dram_act = row(Event.DRAM_ACTIVATIONS)
            r_dram_time = row(Event.DRAM_ACTIVE_TIME)
            r_prefetch = row(Event.PREFETCH_TRANSACTIONS)
            r_writeback = row(Event.WRITEBACK_TRANSACTIONS)
            r_io_bytes = row(Event.IO_BYTES)
            r_io_tx = row(Event.IO_TRANSACTIONS)
            r_seek = row(Event.DISK_SEEK_TIME)
            r_xfer = row(Event.DISK_TRANSFER_TIME)
            r_disk_bytes = row(Event.DISK_BYTES)
            r_sectors = row(Event.OS_DISK_SECTORS)
            r_ctx = row(Event.OS_CONTEXT_SWITCHES)

        now = self.now_s
        dram_latency_factor = self._dram_latency_factor
        total_energy_j = 0.0

        for _ in range(n_ticks):
            now += dt

            # 1. Timer interrupts land per package; device interrupts
            #    from the previous tick are drained and serviced now.
            irq_deliver_timer(timer_tick(dt))
            irq_counts, vector_irq_counts = irq_drain()

            # 2./3. Schedule threads, run the packages, and accumulate
            #    the file-I/O / TLB / network quantities in the same
            #    package-order pass; each accumulator sums in package
            #    order, exactly as the per-quantity generator
            #    expressions did.
            loads = scheduler_tick(threads, now, dt)
            latency = bus.latency_cycles * dram_latency_factor
            file_read = 0.0
            file_write = 0.0
            tlb_miss_total = 0.0
            weighted_hit = 0.0
            net_rx = 0.0
            net_tx = 0.0
            sync_requested = False
            for i in range_n:
                load = loads[i]
                if load.activities:
                    pt = package_tick_funcs[i](
                        load, smt_yield, latency, base_latency, irq_counts[i], dt
                    )
                else:
                    # Inlined CpuPackage.tick idle branch (same
                    # arithmetic; the idle-tick cache sits behind
                    # _finish_idle_tick).
                    cycles_i = package_cycles[i]
                    interrupt_busy = irq_counts[i] * package_isc[i] / cycles_i
                    if interrupt_busy > 0.5:
                        interrupt_busy = 0.5
                    pt = package_idle_funcs[i](cycles_i, interrupt_busy)
                package_ticks[i] = pt
                raw_traffic[i] = pt.traffic
                file_read += pt.file_read_bytes
                file_write += pt.file_write_bytes
                tlb_miss_total += pt.traffic.tlb_misses
                weighted_hit += pt.read_hit_ratio * pt.file_read_bytes
                net_rx += pt.net_rx_bps
                net_tx += pt.net_tx_bps
                if pt.sync_requested:
                    sync_requested = True
            fault_read = tlb_read_bytes(tlb_miss_total)
            total_read = file_read + fault_read
            if total_read > 0:
                hit_ratio = weighted_hit / total_read  # faults always miss
            else:
                hit_ratio = 1.0
            if sync_requested:
                pagecache_request_sync()
            disk_request = pagecache_tick(
                file_write / dt, total_read / dt, hit_ratio, dt, write_capacity
            )

            # 4. Disk service and the DMA it performs; the NIC moves
            #    its packets the same way (device DMA + coalesced
            #    interrupts).
            disk_submit(
                disk_request.read_bytes,
                disk_request.write_bytes,
                False,
                disk_request.write_sequential,
            )
            disk_tick = disk_do_tick(dt)
            dma_tick = dma_do_tick(
                disk_tick.served_read_bytes,
                disk_tick.served_write_bytes,
                background_dma_bytes,
            )
            if dma_tick.interrupts:
                irq_deliver_device(vector_disk, dma_tick.interrupts)
            nic_tick = nic_do_tick(net_rx, net_tx, dt)
            if nic_tick.dma.interrupts:
                irq_deliver_device(vector_network, nic_tick.dma.interrupts)

            # 5. Bus arbitration; scale package traffic by what was
            #    granted (raw_traffic was filled in the package pass).
            total_dma_snoops = dma_tick.bus_snoops + nic_tick.dma.bus_snoops
            bus_tick = bus_do_tick(raw_traffic, total_dma_snoops, dt)
            demand_ratio = bus_tick.demand_ratio
            prefetch_ratio = bus_tick.prefetch_ratio
            if demand_ratio == 1.0 and prefetch_ratio == 1.0:
                granted = raw_traffic  # scaled() is the identity
            else:
                granted = [
                    t.scaled(demand_ratio, prefetch_ratio) for t in raw_traffic
                ]

            # 6. DRAM sees granted CPU traffic plus northbridge DMA.
            #    Fused pass over granted traffic; ``own_tx`` doubles as
            #    the per-package bus-transaction shares counted below.
            #    The ground-truth CPU power pass (step 7) rides along:
            #    it has no dependency on this pass's totals, and every
            #    accumulator still sums in package order.
            cpu_reads = 0.0
            cpu_writes = 0.0
            traffic_weight = 0.0
            stream_weighted = 0.0
            uncacheable_cpu = 0.0
            prefetch_total = 0.0
            cpu_power = 0.0
            halted_total = 0.0
            cycles_total = 0.0
            for i in range_n:
                t = granted[i]
                writebacks = t.writebacks
                uncacheable = t.uncacheable_accesses
                prefetch = t.prefetch_requests
                cpu_reads += t.demand_load_misses + t.pagewalk_reads + prefetch
                cpu_writes += writebacks
                # demand_transactions inlined (same left-assoc order).
                tx = (
                    t.demand_load_misses
                    + writebacks
                    + t.pagewalk_reads
                    + uncacheable
                    + prefetch
                )
                own_tx[i] = tx
                traffic_weight += tx
                stream_weighted += t.streamability * tx
                uncacheable_cpu += uncacheable
                prefetch_total += prefetch
                pt = package_ticks[i]
                cpu_power += package_power_funcs[i](pt)
                halted_total += pt.halted_cycles
                cycles_total += pt.cycles
            if traffic_weight > 0:
                blended_stream = stream_weighted / traffic_weight
            else:
                blended_stream = 0.5
            n_running = 0
            for load in loads:
                n_running += len(load.activities)
            dma_active = dma_tick.io_bytes > 0 or nic_tick.dma.io_bytes > 0
            stream_count = n_running + (1.0 if dma_active else 0.0)
            if stream_count < 1.0:
                stream_count = 1.0
            dram_tick = dram_do_tick(
                cpu_reads,
                cpu_writes,
                blended_stream,
                dma_tick.dram_reads + nic_tick.dma.dram_reads,
                dma_tick.dram_writes + nic_tick.dma.dram_writes,
                stream_count,
                dt,
            )
            dram_latency_factor = dram_tick.latency_factor

            # 7. Ground-truth power (CPU part accumulated above).
            uncacheable_total = (
                uncacheable_cpu
                + dma_tick.uncacheable_accesses
                + nic_tick.dma.uncacheable_accesses
            )
            system_activity = 1.0 - halted_total / cycles_total
            chipset_power = chipset_do_tick(
                bus_tick.utilization, uncacheable_total / dt, system_activity, dt
            )
            io_bytes = dma_tick.io_bytes + nic_tick.dma.io_bytes
            io_transactions = dma_tick.io_transactions + nic_tick.dma.io_transactions
            io_tick = io_do_tick(io_bytes, io_transactions, uncacheable_total, dt)
            memory_power = dram_tick.power_w
            io_power = io_tick.power_w
            disk_power = disk_tick.power_w
            power_dict = {
                sub_cpu: cpu_power,
                sub_chipset: chipset_power,
                sub_memory: memory_power,
                sub_io: io_power,
                sub_disk: disk_power,
            }
            e_cpu += cpu_power * dt
            e_chipset += chipset_power * dt
            e_memory += memory_power * dt
            e_io += io_power * dt
            e_disk += disk_power * dt
            e_time += dt
            total_energy_j += (
                cpu_power + chipset_power + memory_power + io_power + disk_power
            ) * dt

            # 8. Per-process accounting (OS-virtualised counters).
            for pt in package_ticks:
                for stat in pt.thread_stats:
                    record = process_stats.setdefault(
                        stat.thread_id, ProcessStats(thread_id=stat.thread_id)
                    )
                    record.runtime_s += stat.runtime_s
                    record.executed_uops += stat.executed_uops
                    record.fetched_uops += stat.fetched_uops
                    record.bus_transactions += stat.bus_demand_tx * demand_ratio

            # 9. Counters: per-package events.  ``traffic_weight`` is
            #    the sum of ``own_tx`` in the same order, so it carries
            #    the cross-package coherence total.
            if fast:
                driver_uncacheable = (
                    dma_tick.uncacheable_accesses
                    + nic_tick.dma.uncacheable_accesses
                ) / n
                snoops = bus_tick.granted_dma_snoops
                disk_irqs = vector_irq_counts[vector_disk]
                net_irqs = vector_irq_counts[vector_network]
                for i in range(n):
                    pt = package_ticks[i]
                    t = granted[i]
                    tx = own_tx[i]
                    r_cycles[i] += pt.cycles
                    r_halted[i] += pt.halted_cycles
                    r_fetched[i] += pt.fetched_uops
                    r_l3[i] += t.demand_load_misses
                    r_tlb[i] += t.tlb_misses
                    r_unc[i] += t.uncacheable_accesses + driver_uncacheable
                    # Every package snoops the shared bus: its
                    # DMA/Other event counts all DMA snoops plus
                    # coherence from other packages.
                    other_coherence = (
                        traffic_weight - tx
                    ) * _CROSS_COHERENCE_FRACTION
                    r_dma[i] += snoops + other_coherence
                    r_bus[i] += tx + snoops + other_coherence
                    r_irq[i] += irq_counts[i]
                    r_disk_irq[i] += disk_irqs[i]
                    r_net_irq[i] += net_irqs[i]
                # Subsystem-local events (column 0 carries system-wide
                # totals).
                r_dram_reads[0] += dram_tick.reads
                r_dram_writes[0] += dram_tick.writes
                r_dram_act[0] += dram_tick.activations
                r_dram_time[0] += dram_tick.active_fraction * dt
                r_prefetch[0] += prefetch_total
                r_writeback[0] += cpu_writes
                r_io_bytes[0] += io_bytes
                r_io_tx[0] += io_transactions
                r_seek[0] += disk_tick.seek_time_s
                r_xfer[0] += disk_tick.transfer_time_s
                served = disk_tick.served_bytes
                r_disk_bytes[0] += served
                r_sectors[0] += served / 512.0
                r_ctx[0] += float(scheduler.context_switches)
            else:
                self._count_events(
                    package_ticks, granted, bus_tick, dma_tick, nic_tick,
                    disk_tick, dram_tick, irq_counts, vector_irq_counts,
                )

            # 10. Instrumentation: DAQ integrates power; the sampler
            #    may close a window (emitting the sync pulse to the
            #    DAQ).
            daq_record(power_dict, now, dt)
            pulse = maybe_sample(now)
            if pulse is not None:
                daq_close(pulse)
                if live_monitor is not None:
                    # Window-rate (~1 Hz), not tick-rate: the energy
                    # accumulators must be visible to the monitor, so
                    # flush the batch-local state first.
                    self.now_s = now
                    energy_j[sub_cpu] = e_cpu
                    energy_j[sub_chipset] = e_chipset
                    energy_j[sub_memory] = e_memory
                    energy_j[sub_io] = e_io
                    energy_j[sub_disk] = e_disk
                    energy_account._time_s = e_time
                    live_monitor.on_window(self, pulse)

        self.now_s = now
        self._dram_latency_factor = dram_latency_factor
        energy_j[sub_cpu] = e_cpu
        energy_j[sub_chipset] = e_chipset
        energy_j[sub_memory] = e_memory
        energy_j[sub_io] = e_io
        energy_j[sub_disk] = e_disk
        energy_account._time_s = e_time
        self._last_breakdown = PowerBreakdown(
            cpu_w=cpu_power,
            chipset_w=chipset_power,
            memory_w=memory_power,
            io_w=io_power,
            disk_w=disk_power,
        )
        if obs_on:
            self._record_telemetry(n_ticks, _monotonic() - obs_t0)
        return total_energy_j

    def _record_telemetry(self, n_ticks: int, elapsed_s: float) -> None:
        """Batch-boundary profiling hook for :meth:`run_ticks`.

        Deterministic metrics (tick counts, batch sizes, per-subsystem
        energy) are labelled by workload so a parallel sweep's merged
        registry equals the serial one; wall-clock metrics (batch
        seconds, ticks/s) are inherently machine- and load-dependent.
        """
        reg = obs.registry()
        labels = {"workload": self.workload.name}
        reg.inc("sim_ticks_total", float(n_ticks), labels)
        reg.observe("sim_batch_ticks", float(n_ticks), labels, buckets=_BATCH_BUCKETS)
        reg.observe("sim_run_ticks_seconds", elapsed_s, labels)
        if elapsed_s > 0:
            reg.gauge("sim_ticks_per_second", n_ticks / elapsed_s, labels)
        reg.gauge("sim_time_seconds", self.now_s, labels)
        for subsystem in SUBSYSTEMS:
            reg.gauge(
                "sim_energy_joules",
                self.energy._energy_j[subsystem],
                {"workload": self.workload.name, "subsystem": subsystem.value},
            )
        idle_ticks = sum(p.idle_ticks for p in self.packages)
        if idle_ticks:
            rebuilds = sum(p.idle_tick_builds for p in self.packages)
            reg.gauge(
                "sim_idle_cache_hit_ratio", 1.0 - rebuilds / idle_ticks, labels
            )

    def _count_events(
        self,
        package_ticks,
        granted,
        bus_tick,
        dma_tick,
        nic_tick,
        disk_tick,
        dram_tick,
        irq_counts,
        vector_irq_counts,
    ) -> None:
        """Accumulate this tick's events into the counter bank."""
        counters = self.counters
        advance = getattr(counters, "advance", None)
        if advance is not None:
            advance(self.config.tick_s)  # multiplexed PMU rotation
        n = self.config.num_packages
        own_tx = [
            t.demand_transactions + t.prefetch_requests for t in granted
        ]
        total_own = sum(own_tx)
        snoops = bus_tick.granted_dma_snoops
        for i, (pt, t) in enumerate(zip(package_ticks, granted)):
            counters.add(Event.CYCLES, i, pt.cycles)
            counters.add(Event.HALTED_CYCLES, i, pt.halted_cycles)
            counters.add(Event.FETCHED_UOPS, i, pt.fetched_uops)
            counters.add(Event.L3_MISSES, i, t.demand_load_misses)
            counters.add(Event.TLB_MISSES, i, t.tlb_misses)
            driver_uncacheable = (
                dma_tick.uncacheable_accesses + nic_tick.dma.uncacheable_accesses
            ) / n
            counters.add(
                Event.UNCACHEABLE_ACCESSES,
                i,
                t.uncacheable_accesses + driver_uncacheable,
            )
            # Every package snoops the shared bus: its DMA/Other event
            # counts all DMA snoops plus coherence from other packages.
            other_coherence = (total_own - own_tx[i]) * _CROSS_COHERENCE_FRACTION
            counters.add(Event.DMA_ACCESSES, i, snoops + other_coherence)
            counters.add(
                Event.BUS_TRANSACTIONS, i, own_tx[i] + snoops + other_coherence
            )
            counters.add(Event.INTERRUPTS, i, irq_counts[i])
            counters.add(Event.DISK_INTERRUPTS, i, vector_irq_counts[Vector.DISK][i])
            counters.add(
                Event.NETWORK_INTERRUPTS, i, vector_irq_counts[Vector.NETWORK][i]
            )

        # Subsystem-local events (column 0 carries system-wide totals).
        counters.add(Event.DRAM_READS, 0, dram_tick.reads)
        counters.add(Event.DRAM_WRITES, 0, dram_tick.writes)
        counters.add(Event.DRAM_ACTIVATIONS, 0, dram_tick.activations)
        counters.add(
            Event.DRAM_ACTIVE_TIME, 0, dram_tick.active_fraction * self.config.tick_s
        )
        counters.add(
            Event.PREFETCH_TRANSACTIONS,
            0,
            sum(t.prefetch_requests for t in granted),
        )
        counters.add(
            Event.WRITEBACK_TRANSACTIONS, 0, sum(t.writebacks for t in granted)
        )
        counters.add(
            Event.IO_BYTES, 0, dma_tick.io_bytes + nic_tick.dma.io_bytes
        )
        counters.add(
            Event.IO_TRANSACTIONS,
            0,
            dma_tick.io_transactions + nic_tick.dma.io_transactions,
        )
        counters.add(Event.DISK_SEEK_TIME, 0, disk_tick.seek_time_s)
        counters.add(Event.DISK_TRANSFER_TIME, 0, disk_tick.transfer_time_s)
        counters.add(Event.DISK_BYTES, 0, disk_tick.served_bytes)
        counters.add(Event.OS_DISK_SECTORS, 0, disk_tick.served_bytes / 512.0)
        counters.add(
            Event.OS_CONTEXT_SWITCHES, 0, float(self.scheduler.context_switches)
        )

    # -- DVFS (extension) ------------------------------------------------

    def set_pstate(self, package_id: int, state_index: int) -> None:
        """Switch one package's DVFS operating point (0 = nominal)."""
        self.packages[package_id].set_pstate(state_index)

    def set_all_pstates(self, state_index: int) -> None:
        """Switch every package to the same DVFS operating point."""
        for package in self.packages:
            package.set_pstate(state_index)

    # -- full runs -----------------------------------------------------

    def run(self, duration_s: float) -> MeasuredRun:
        """Run the workload for ``duration_s`` and assemble the traces."""
        if duration_s < 2.0 * self.config.measurement.sample_period_s:
            raise ValueError(
                "duration must cover at least two sampling windows; got "
                f"{duration_s}s"
            )
        n_ticks = int(round(duration_s / self.config.tick_s))
        self.run_ticks(n_ticks)
        counters = self.sampler.finish()
        power = self.daq.finish()
        counters, power = align_windows(counters, power)
        return MeasuredRun(
            workload=self.workload.name,
            counters=counters,
            power=power,
            seed=self.rng.seed,
            metadata={
                "duration_s": duration_s,
                "tick_s": self.config.tick_s,
                "n_threads": self.workload.n_threads,
                "true_mean_power_w": {
                    s.value: self.energy.mean_power_w(s) for s in SUBSYSTEMS
                },
            },
        )


def simulate_workload(
    workload: WorkloadSpec,
    duration_s: float = 300.0,
    seed: int = 1,
    config: SystemConfig | None = None,
    pstate: int = 0,
) -> MeasuredRun:
    """Instrumented run of ``workload``: the paper's measurement setup.

    Args:
        workload: behaviour profile (see :mod:`repro.workloads`).
        duration_s: simulated wall-clock seconds.
        seed: RNG seed; same (workload, seed), same run.  The workload
            name is mixed into the seed so different workloads at the
            same base seed do not share noise streams (a shared stream
            would give every run the same sensor-chain artefacts, e.g.
            an identical chipset derivation offset).
        config: server configuration; defaults to the calibrated 4-way
            Xeon-like machine.
        pstate: DVFS operating point for every package (0 = nominal).
    """
    from repro.simulator.rng import _stable_hash

    mixed_seed = (int(seed) * 1000003 + _stable_hash(workload.name)) % (2**31)
    server = Server(config or SystemConfig(), workload, mixed_seed)
    if pstate:
        server.set_all_pstates(pstate)
    run = server.run(duration_s)
    run.metadata["base_seed"] = int(seed)
    run.metadata["pstate"] = int(pstate)
    return run
