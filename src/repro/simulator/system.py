"""The simulated server: wiring and the main tick loop.

One :class:`Server` owns four CPU packages, the shared front-side bus,
DRAM, chipset, I/O chips, the disk array, the OS layer (scheduler, page
cache, timer, interrupt accounting) and the instrumentation (counter
bank + 1 Hz sampler, power sensors + DAQ).  Each tick the trickle-down
causality of the paper's Figure 1 plays out:

    threads -> uops -> cache/TLB misses -> bus -> DRAM
    threads -> file I/O -> page cache -> disk -> DMA -> bus snoops,
                 DRAM accesses, I/O switching, interrupts -> CPUs

:func:`simulate_workload` is the main entry point: it runs a workload
spec for a given duration and returns a
:class:`~repro.core.traces.MeasuredRun` ready for model training.
"""

from __future__ import annotations

from repro.core.events import Event, SUBSYSTEMS
from repro.core.traces import MeasuredRun
from repro.counters.perfctr import CounterBank
from repro.counters.sampler import CounterSampler
from repro.measurement.daq import DataAcquisition
from repro.measurement.sensors import PowerSensors
from repro.measurement.sync import align_windows
from repro.osim.pagecache import PageCache
from repro.osim.procfs import Vector
from repro.osim.process import SimThread
from repro.osim.scheduler import Scheduler
from repro.osim.timer import TimerSource
from repro.simulator.chipset import ChipsetSubsystem
from repro.simulator.config import SystemConfig
from repro.simulator.cpu import CpuPackage
from repro.simulator.disk import DiskSubsystem
from repro.simulator.dma import DmaEngine
from repro.simulator.dram import DramSubsystem
from repro.simulator.interrupts import InterruptController
from repro.simulator.io_subsys import IoSubsystem
from repro.simulator.membus import FrontSideBus
from repro.simulator.nic import NicConfig, NicDevice
from repro.simulator.power import EnergyAccount, PowerBreakdown, ProcessStats
from repro.simulator.rng import RngStreams
from repro.simulator.tlb import TlbPolicy
from repro.workloads.base import WorkloadSpec

#: Coherence traffic between processors as a fraction of a package's own
#: bus transactions (the paper notes it is very small for its workloads).
_CROSS_COHERENCE_FRACTION = 0.01


class Server:
    """A configured 4-way SMP server ready to run one workload."""

    def __init__(
        self,
        config: SystemConfig,
        workload: WorkloadSpec,
        seed: int,
        counter_bank: "CounterBank | None" = None,
    ) -> None:
        """Build the machine.

        ``counter_bank`` overrides the default full counter bank — pass
        a :class:`~repro.counters.multiplex.MultiplexedCounterBank` to
        emulate a PMU with fewer slots than events.
        """
        self.config = config
        self.workload = workload
        self.rng = RngStreams(seed)
        self.now_s = 0.0

        cpu_cfg, cache_cfg = config.cpu, config.cache
        self.packages = [
            CpuPackage(i, cpu_cfg, cache_cfg) for i in range(config.num_packages)
        ]
        self.bus = FrontSideBus(config.bus)
        self.dram = DramSubsystem(config.dram)
        self.chipset = ChipsetSubsystem(config.chipset, self.rng.stream("chipset"))
        self.io = IoSubsystem(config.io)
        self.disk = DiskSubsystem(config.disk)
        self.dma = DmaEngine(config.io)
        self.nic = NicDevice(NicConfig(), config.io)
        self.tlb_policy = TlbPolicy()

        self.scheduler = Scheduler(config.num_packages, cpu_cfg.smt_contexts)
        self.pagecache = PageCache(config.osim)
        self.timer = TimerSource(config.osim, config.num_packages)
        self.irq = InterruptController(config.num_packages)

        self.threads = [
            SimThread(i, plan, workload.variability, self.rng.stream(f"thread-{i}"))
            for i, plan in enumerate(workload.threads)
        ]

        self.counters = counter_bank or CounterBank(tuple(Event), config.num_packages)
        if self.counters.n_cpus != config.num_packages:
            raise ValueError(
                "counter bank CPU count does not match the machine"
            )
        self.sampler = CounterSampler(
            self.counters, config.measurement, self.rng.stream("sampler")
        )
        self.sensors = PowerSensors(
            SUBSYSTEMS, config.measurement, self.rng.stream("sensors")
        )
        self.daq = DataAcquisition(
            self.sensors, config.measurement, self.rng.stream("daq")
        )
        self.energy = EnergyAccount()
        #: DRAM-side latency inflation observed last tick (see
        #: DramTick.latency_factor); combines with FSB queueing.
        self._dram_latency_factor = 1.0
        #: Per-thread cumulative activity (OS-virtualised counters, the
        #: facility perfctr offered): thread_id -> ProcessStats.
        self.process_stats: "dict[int, ProcessStats]" = {}

    # -- one tick ------------------------------------------------------

    def tick(self) -> PowerBreakdown:
        """Advance the machine by one tick; returns true power."""
        cfg = self.config
        dt = cfg.tick_s
        self.now_s += dt

        # 1. Timer interrupts land per package; device interrupts from
        #    the previous tick are drained and serviced now.
        self.irq.deliver_timer(self.timer.tick(dt))
        irq_counts, vector_irq_counts = self.irq.drain_tick()

        # 2. Schedule threads and run the packages.
        loads = self.scheduler.tick(self.threads, self.now_s, dt)
        base_latency = cfg.bus.base_latency_cycles
        latency = self.bus.latency_cycles * self._dram_latency_factor
        package_ticks = [
            package.tick(
                load,
                self.workload.smt_yield,
                latency,
                base_latency,
                irq_counts[package.package_id],
                dt,
            )
            for package, load in zip(self.packages, loads)
        ]

        # 3. File I/O through the page cache, plus TLB major faults.
        file_read = sum(pt.file_read_bytes for pt in package_ticks)
        file_write = sum(pt.file_write_bytes for pt in package_ticks)
        fault_read = self.tlb_policy.disk_read_bytes(
            sum(pt.traffic.tlb_misses for pt in package_ticks)
        )
        total_read = file_read + fault_read
        if total_read > 0:
            weighted_hit = sum(
                pt.read_hit_ratio * pt.file_read_bytes for pt in package_ticks
            )
            hit_ratio = weighted_hit / total_read  # faults always miss
        else:
            hit_ratio = 1.0
        if any(pt.sync_requested for pt in package_ticks):
            self.pagecache.request_sync()
        disk_request = self.pagecache.tick(
            write_bps=file_write / dt,
            read_bps=total_read / dt,
            read_hit_ratio=hit_ratio,
            dt_s=dt,
            disk_write_capacity_bps=self.disk.write_capacity_bps(),
        )

        # 4. Disk service and the DMA it performs; the NIC moves its
        #    packets the same way (device DMA + coalesced interrupts).
        self.disk.submit(
            disk_request.read_bytes,
            disk_request.write_bytes,
            write_sequential=disk_request.write_sequential,
        )
        disk_tick = self.disk.tick(dt)
        dma_tick = self.dma.tick(
            device_to_memory_bytes=disk_tick.served_read_bytes,
            memory_to_device_bytes=disk_tick.served_write_bytes,
            background_bytes=self.workload.background_dma_bps * dt,
        )
        if dma_tick.interrupts:
            self.irq.deliver_device(Vector.DISK, dma_tick.interrupts)
        nic_tick = self.nic.tick(
            rx_bps=sum(pt.net_rx_bps for pt in package_ticks),
            tx_bps=sum(pt.net_tx_bps for pt in package_ticks),
            dt_s=dt,
        )
        if nic_tick.dma.interrupts:
            self.irq.deliver_device(Vector.NETWORK, nic_tick.dma.interrupts)

        # 5. Bus arbitration; scale package traffic by what was granted.
        raw_traffic = [pt.traffic for pt in package_ticks]
        total_dma_snoops = dma_tick.bus_snoops + nic_tick.dma.bus_snoops
        bus_tick = self.bus.tick(raw_traffic, total_dma_snoops, dt)
        granted = [
            t.scaled(bus_tick.demand_ratio, bus_tick.prefetch_ratio)
            for t in raw_traffic
        ]

        # 6. DRAM sees granted CPU traffic plus northbridge DMA.
        cpu_reads = sum(
            t.demand_load_misses + t.pagewalk_reads + t.prefetch_requests
            for t in granted
        )
        cpu_writes = sum(t.writebacks for t in granted)
        traffic_weight = sum(
            t.demand_transactions + t.prefetch_requests for t in granted
        )
        if traffic_weight > 0:
            blended_stream = (
                sum(
                    t.streamability * (t.demand_transactions + t.prefetch_requests)
                    for t in granted
                )
                / traffic_weight
            )
        else:
            blended_stream = 0.5
        n_running = sum(load.n_running for load in loads)
        dma_active = dma_tick.io_bytes > 0 or nic_tick.dma.io_bytes > 0
        stream_count = n_running + (1.0 if dma_active else 0.0)
        dram_tick = self.dram.tick(
            cpu_reads=cpu_reads,
            cpu_writes=cpu_writes,
            cpu_streamability=blended_stream,
            dma_reads=dma_tick.dram_reads + nic_tick.dma.dram_reads,
            dma_writes=dma_tick.dram_writes + nic_tick.dma.dram_writes,
            stream_count=max(1.0, stream_count),
            dt_s=dt,
        )
        self._dram_latency_factor = dram_tick.latency_factor

        # 7. Ground-truth power for this tick.
        cpu_power = sum(
            package.power(pt) for package, pt in zip(self.packages, package_ticks)
        )
        uncacheable_total = (
            sum(t.uncacheable_accesses for t in granted)
            + dma_tick.uncacheable_accesses
            + nic_tick.dma.uncacheable_accesses
        )
        system_activity = 1.0 - (
            sum(pt.halted_cycles for pt in package_ticks)
            / sum(pt.cycles for pt in package_ticks)
        )
        chipset_power = self.chipset.tick(
            bus_tick.utilization, uncacheable_total / dt, system_activity, dt
        )
        io_tick = self.io.tick(
            dma_tick.io_bytes + nic_tick.dma.io_bytes,
            dma_tick.io_transactions + nic_tick.dma.io_transactions,
            uncacheable_total,
            dt,
        )
        breakdown = PowerBreakdown(
            cpu_w=cpu_power,
            chipset_w=chipset_power,
            memory_w=dram_tick.power_w,
            io_w=io_tick.power_w,
            disk_w=disk_tick.power_w,
        )
        self.energy.record(breakdown, dt)

        # 8. Per-process accounting (OS-virtualised counters).
        for pt in package_ticks:
            for stat in pt.thread_stats:
                record = self.process_stats.setdefault(
                    stat.thread_id, ProcessStats(thread_id=stat.thread_id)
                )
                record.runtime_s += stat.runtime_s
                record.executed_uops += stat.executed_uops
                record.fetched_uops += stat.fetched_uops
                record.bus_transactions += stat.bus_demand_tx * bus_tick.demand_ratio

        # 9. Counters: per-package events.
        self._count_events(
            package_ticks, granted, bus_tick, dma_tick, nic_tick, disk_tick,
            dram_tick, irq_counts, vector_irq_counts,
        )

        # 10. Instrumentation: DAQ integrates power; the sampler may
        #    close a window (emitting the sync pulse to the DAQ).
        self.daq.record_tick(breakdown.as_dict(), self.now_s, dt)
        pulse = self.sampler.maybe_sample(self.now_s)
        if pulse is not None:
            self.daq.close_window(pulse)
        return breakdown

    def _count_events(
        self,
        package_ticks,
        granted,
        bus_tick,
        dma_tick,
        nic_tick,
        disk_tick,
        dram_tick,
        irq_counts,
        vector_irq_counts,
    ) -> None:
        """Accumulate this tick's events into the counter bank."""
        counters = self.counters
        advance = getattr(counters, "advance", None)
        if advance is not None:
            advance(self.config.tick_s)  # multiplexed PMU rotation
        n = self.config.num_packages
        own_tx = [
            t.demand_transactions + t.prefetch_requests for t in granted
        ]
        total_own = sum(own_tx)
        snoops = bus_tick.granted_dma_snoops
        for i, (pt, t) in enumerate(zip(package_ticks, granted)):
            counters.add(Event.CYCLES, i, pt.cycles)
            counters.add(Event.HALTED_CYCLES, i, pt.halted_cycles)
            counters.add(Event.FETCHED_UOPS, i, pt.fetched_uops)
            counters.add(Event.L3_MISSES, i, t.demand_load_misses)
            counters.add(Event.TLB_MISSES, i, t.tlb_misses)
            driver_uncacheable = (
                dma_tick.uncacheable_accesses + nic_tick.dma.uncacheable_accesses
            ) / n
            counters.add(
                Event.UNCACHEABLE_ACCESSES,
                i,
                t.uncacheable_accesses + driver_uncacheable,
            )
            # Every package snoops the shared bus: its DMA/Other event
            # counts all DMA snoops plus coherence from other packages.
            other_coherence = (total_own - own_tx[i]) * _CROSS_COHERENCE_FRACTION
            counters.add(Event.DMA_ACCESSES, i, snoops + other_coherence)
            counters.add(
                Event.BUS_TRANSACTIONS, i, own_tx[i] + snoops + other_coherence
            )
            counters.add(Event.INTERRUPTS, i, irq_counts[i])
            counters.add(Event.DISK_INTERRUPTS, i, vector_irq_counts[Vector.DISK][i])
            counters.add(
                Event.NETWORK_INTERRUPTS, i, vector_irq_counts[Vector.NETWORK][i]
            )

        # Subsystem-local events (column 0 carries system-wide totals).
        counters.add(Event.DRAM_READS, 0, dram_tick.reads)
        counters.add(Event.DRAM_WRITES, 0, dram_tick.writes)
        counters.add(Event.DRAM_ACTIVATIONS, 0, dram_tick.activations)
        counters.add(
            Event.DRAM_ACTIVE_TIME, 0, dram_tick.active_fraction * self.config.tick_s
        )
        counters.add(
            Event.PREFETCH_TRANSACTIONS,
            0,
            sum(t.prefetch_requests for t in granted),
        )
        counters.add(
            Event.WRITEBACK_TRANSACTIONS, 0, sum(t.writebacks for t in granted)
        )
        counters.add(
            Event.IO_BYTES, 0, dma_tick.io_bytes + nic_tick.dma.io_bytes
        )
        counters.add(
            Event.IO_TRANSACTIONS,
            0,
            dma_tick.io_transactions + nic_tick.dma.io_transactions,
        )
        counters.add(Event.DISK_SEEK_TIME, 0, disk_tick.seek_time_s)
        counters.add(Event.DISK_TRANSFER_TIME, 0, disk_tick.transfer_time_s)
        counters.add(Event.DISK_BYTES, 0, disk_tick.served_bytes)
        counters.add(Event.OS_DISK_SECTORS, 0, disk_tick.served_bytes / 512.0)
        counters.add(
            Event.OS_CONTEXT_SWITCHES, 0, float(self.scheduler.context_switches)
        )

    # -- DVFS (extension) ------------------------------------------------

    def set_pstate(self, package_id: int, state_index: int) -> None:
        """Switch one package's DVFS operating point (0 = nominal)."""
        self.packages[package_id].set_pstate(state_index)

    def set_all_pstates(self, state_index: int) -> None:
        """Switch every package to the same DVFS operating point."""
        for package in self.packages:
            package.set_pstate(state_index)

    # -- full runs -----------------------------------------------------

    def run(self, duration_s: float) -> MeasuredRun:
        """Run the workload for ``duration_s`` and assemble the traces."""
        if duration_s < 2.0 * self.config.measurement.sample_period_s:
            raise ValueError(
                "duration must cover at least two sampling windows; got "
                f"{duration_s}s"
            )
        n_ticks = int(round(duration_s / self.config.tick_s))
        for _ in range(n_ticks):
            self.tick()
        counters = self.sampler.finish()
        power = self.daq.finish()
        counters, power = align_windows(counters, power)
        return MeasuredRun(
            workload=self.workload.name,
            counters=counters,
            power=power,
            seed=self.rng.seed,
            metadata={
                "duration_s": duration_s,
                "tick_s": self.config.tick_s,
                "n_threads": self.workload.n_threads,
                "true_mean_power_w": {
                    s.value: self.energy.mean_power_w(s) for s in SUBSYSTEMS
                },
            },
        )


def simulate_workload(
    workload: WorkloadSpec,
    duration_s: float = 300.0,
    seed: int = 1,
    config: SystemConfig | None = None,
    pstate: int = 0,
) -> MeasuredRun:
    """Instrumented run of ``workload``: the paper's measurement setup.

    Args:
        workload: behaviour profile (see :mod:`repro.workloads`).
        duration_s: simulated wall-clock seconds.
        seed: RNG seed; same (workload, seed), same run.  The workload
            name is mixed into the seed so different workloads at the
            same base seed do not share noise streams (a shared stream
            would give every run the same sensor-chain artefacts, e.g.
            an identical chipset derivation offset).
        config: server configuration; defaults to the calibrated 4-way
            Xeon-like machine.
        pstate: DVFS operating point for every package (0 = nominal).
    """
    from repro.simulator.rng import _stable_hash

    mixed_seed = (int(seed) * 1000003 + _stable_hash(workload.name)) % (2**31)
    server = Server(config or SystemConfig(), workload, mixed_seed)
    if pstate:
        server.set_all_pstates(pstate)
    run = server.run(duration_s)
    run.metadata["base_seed"] = int(seed)
    run.metadata["pstate"] = int(pstate)
    return run
