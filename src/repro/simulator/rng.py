"""Deterministic per-component random-number streams.

Every stochastic component of the simulator draws from its own
``numpy.random.Generator`` derived from a single run seed, so runs are
reproducible and adding randomness to one component never perturbs the
stream of another.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A factory of independent, named random streams from one seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence.
        """
        if name not in self._cache:
            child_seed = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(_stable_hash(name),)
            )
            self._cache[name] = np.random.default_rng(child_seed)
        return self._cache[name]


def _stable_hash(name: str) -> int:
    """A process-independent 32-bit hash (``hash()`` is salted)."""
    value = 2166136261
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value
