"""Deterministic per-component random-number streams.

Every stochastic component of the simulator draws from its own
``numpy.random.Generator`` derived from a single run seed, so runs are
reproducible and adding randomness to one component never perturbs the
stream of another.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A factory of independent, named random streams from one seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence.
        """
        if name not in self._cache:
            child_seed = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(_stable_hash(name),)
            )
            self._cache[name] = np.random.default_rng(child_seed)
        return self._cache[name]


class NormalStream:
    """Buffered scalar standard-normal draws from one generator.

    ``Generator.standard_normal(n)`` fills its output element-by-element
    from the same ziggurat routine as repeated scalar calls, so a block
    draw yields exactly the same values as ``n`` scalar draws — this
    buffer therefore preserves the stream bit-for-bit while amortising
    the ~0.6 us per-call overhead of a scalar numpy draw.

    The wrapped generator must not be drawn from elsewhere once the
    stream is in use (block draws advance the underlying bit generator
    past the values handed out so far).
    """

    __slots__ = ("_rng", "_buf", "_pos", "_block")

    def __init__(self, rng: np.random.Generator, block: int = 1024) -> None:
        self._rng = rng
        self._buf: list[float] = []
        self._pos = 0
        self._block = block

    def next(self) -> float:
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            buf = self._buf = self._rng.standard_normal(self._block).tolist()
            pos = 0
        self._pos = pos + 1
        return buf[pos]


def _stable_hash(name: str) -> int:
    """A process-independent 32-bit hash (``hash()`` is salted)."""
    value = 2166136261
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value
