"""Configuration dataclasses for the simulated server.

Defaults are calibrated so the simulated machine matches the target
server of the paper: a 4-way Pentium 4 Xeon SMP (2 SMT contexts per
package), shared front-side bus, DDR SDRAM behind a northbridge memory
controller, two I/O chips with PCI-X buses, and two SCSI disks without
power management.  Power constants are chosen to land on the paper's
Table 1 characterisation (idle: CPU 38.4 W, chipset 19.9 W, memory
28.1 W, I/O 32.9 W, disk 21.6 W).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PState:
    """One DVFS operating point of a package.

    Dynamic power scales with V^2 * f; the simulator applies
    ``voltage_scale**2 * (frequency_hz / nominal)`` to the dynamic and
    active-baseline terms and ``voltage_scale**2`` to gated power.
    """

    frequency_hz: float
    voltage_scale: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if not 0.3 <= self.voltage_scale <= 1.2:
            raise ValueError("voltage_scale out of plausible range")


@dataclass(frozen=True)
class CpuConfig:
    """A Pentium 4 Xeon-like processor package.

    Power follows the structure of the paper's Equation 1 plus effects the
    fetch-based model cannot see: speculative instruction-window search
    activity (the mcf failure mode) and a small floating-point premium.
    """

    frequency_hz: float = 1.5e9
    #: DVFS ladder (extension; the paper's machine ran at one point).
    #: State 0 is nominal.
    dvfs_states: "tuple[PState, ...]" = (
        PState(1.5e9, 1.0),
        PState(1.2e9, 0.87),
        PState(0.9e9, 0.76),
        PState(0.6e9, 0.67),
    )
    smt_contexts: int = 2
    max_uops_per_cycle: float = 3.0
    #: Power of a package whose clock is gated (both contexts halted).
    halted_power_w: float = 9.25
    #: Power of an active package doing no work (clock running).
    active_idle_power_w: float = 34.6
    #: Fraction of the active-idle delta consumed while the pipeline is
    #: stalled on memory (execution units quiesce but clocks run); the
    #: remaining fraction scales with issue intensity.  This is one of
    #: the effects the paper's linear Equation-1 model cannot express.
    stall_power_fraction: float = 0.8
    #: Incremental power per fetched uop per cycle.
    uop_power_w: float = 4.31
    #: Incremental power per unit of speculative window-search activity,
    #: expressed in equivalent uops/cycle (invisible to the fetch counter).
    speculation_power_w: float = 4.31
    #: Extra power per FP uop relative to an integer uop (fraction).
    fp_power_premium: float = 0.12
    #: Cost in cycles of servicing one interrupt (timer, I/O).
    interrupt_service_cycles: float = 18000.0


@dataclass(frozen=True)
class CacheConfig:
    """Cache hierarchy behaviour (only what trickles down matters)."""

    line_bytes: int = 64
    #: Fraction of L3 misses that also cause a dirty writeback.
    base_writeback_ratio: float = 0.35
    #: Hardware prefetcher: prefetch transactions issued per demand miss
    #: when streams are detected; scales with the workload's streamability.
    prefetch_per_miss: float = 0.55
    #: Prefetches are dropped when the bus is congested beyond this
    #: utilisation; models prefetch throttling.
    prefetch_throttle_util: float = 0.85
    #: Page-walk bus reads caused by one TLB miss.
    pagewalk_reads_per_tlb_miss: float = 1.35


@dataclass(frozen=True)
class BusConfig:
    """Shared front-side bus (what Intel calls the FSB).

    All CPU packages share one bus; DMA traffic appears on it only as
    coherency snoops.  The bus transaction counter of the P4 cannot
    distinguish DMA snoops from other-processor coherence traffic, which
    is modelled by the combined ``dma_other`` counter.
    """

    #: Peak transactions per second (64 B lines; ~3.2 GB/s like a
    #: 400 MHz x 8 B FSB).
    capacity_tx_per_s: float = 85.0e6
    #: Memory latency in cycles when the bus is idle.
    base_latency_cycles: float = 320.0
    #: Queueing factor: latency grows as ``1 / (1 - util * factor)``.
    congestion_factor: float = 0.92


@dataclass(frozen=True)
class DramConfig:
    """DDR SDRAM modules plus the northbridge memory controller.

    Ground-truth power is computed Janzen-style from bank state: idle /
    precharge / active, per-access read and write energy, and activation
    energy per row miss.  The read/write asymmetry and row-locality
    dependence are exactly the effects the paper's CPU-visible models do
    not capture.
    """

    #: Background power: DRAM refresh + controller static (Watts).
    background_power_w: float = 27.9
    #: Energy per cache-line read burst (Joules).
    read_energy_j: float = 0.21e-6
    #: Energy per cache-line write burst; writes cost more than reads.
    write_energy_j: float = 0.85e-6
    #: Energy per row activation (precharge + activate).
    activation_energy_j: float = 0.12e-6
    #: Row-buffer hit rate for a perfectly streaming access pattern.
    streaming_row_hit_rate: float = 0.92
    #: Row-buffer hit rate for a fully random access pattern.
    random_row_hit_rate: float = 0.18
    #: Peak DRAM channel capacity (accesses/s); above the FSB capacity
    #: because DMA reaches DRAM through the northbridge, not the FSB.
    capacity_access_per_s: float = 140.0e6
    #: Fraction of peak throughput sustainable by a row-missing (fully
    #: random) access stream; random traffic congests the DRAM long
    #: before the FSB saturates (the mcf regime).
    random_throughput_factor: float = 0.30
    #: Queueing inflation of memory latency with DRAM utilisation.
    congestion_factor: float = 0.90
    #: Cap on the DRAM-induced latency inflation.
    max_latency_factor: float = 4.0


@dataclass(frozen=True)
class ChipsetConfig:
    """Processor-interface chips not included in other subsystems.

    The paper cannot measure this domain deterministically (it spans
    several power domains with a non-deterministic relationship) and ends
    up modelling it as a constant 19.9 W.  We simulate a near-constant
    true power plus a slowly wandering derivation offset so that the
    constant model exhibits the paper's 0.5-13 % error band while the
    within-run standard deviation stays tiny.
    """

    nominal_power_w: float = 19.9
    #: Sensitivity of the derived measurement to FSB utilisation.
    bus_sensitivity_w: float = 1.6
    #: Sensitivity to uncacheable (I/O config) traffic.
    io_sensitivity_w: float = 0.9
    #: Amplitude of the per-run domain-derivation offset (Watts).  The
    #: offset is drawn once per run from [-offset_range, +offset_range/4]
    #: and drifts slowly; it models deriving chipset power from multiple
    #: non-deterministically related domains.
    derivation_offset_range_w: float = 3.2


@dataclass(frozen=True)
class IoConfig:
    """I/O subsystem: two I/O chips providing six PCI-X buses.

    The DC term dominates (the server has many, mostly idle, I/O buses);
    dynamic power follows bytes actually switched, with write-combining
    in the I/O chips decoupling switched bytes from the DMA-access count
    seen at the processor.
    """

    #: Static power of the I/O chips and buses (Watts).
    static_power_w: float = 32.65
    #: Energy per byte switched on the PCI-X buses (Joules/B).
    switching_energy_per_byte_j: float = 41.0e-9
    #: Per-transaction overhead energy (arbitration, headers).
    transaction_overhead_j: float = 0.4e-6
    #: Fraction of adjacent transactions merged by write-combining at
    #: high throughput (reduces per-transaction overhead, not bytes).
    write_combining_efficiency: float = 0.6
    #: Bytes per DMA completion interrupt (devices interrupt on buffer
    #: boundaries, ~64 KB).
    bytes_per_interrupt: float = 64.0 * 1024.0
    #: Cache lines per DMA snoop transaction on the FSB.
    line_bytes: int = 64


@dataclass(frozen=True)
class DiskConfig:
    """Two SCSI disks without power-saving modes.

    Zedlewski-style mode model: rotation consumes ~80 % of peak
    continuously (the spindle never stops), the remainder is split
    between seeking and head read/write activity, giving the paper's
    tiny dynamic range (+2.8 % under DiskLoad).
    """

    num_disks: int = 2
    #: Spindle (rotation) power per disk; always on (Watts).
    rotation_power_w: float = 10.8
    #: Additional power while the arm is seeking (Watts per disk).
    seek_power_w: float = 0.3
    #: Additional power while the head reads or writes (Watts per disk).
    transfer_power_w: float = 0.55
    #: Sustained media transfer rate per disk (bytes/s).
    transfer_rate_bps: float = 52.0e6
    #: Average seek + rotational latency per random request (seconds).
    avg_access_time_s: float = 7.2e-3
    #: Bytes per request above which access is treated as sequential.
    sequential_threshold_bytes: float = 256.0 * 1024.0


@dataclass(frozen=True)
class OsConfig:
    """Operating-system behaviour (Linux-like)."""

    #: Timer interrupt frequency per CPU (HZ).
    timer_hz: float = 1000.0
    #: Page-cache capacity (bytes) before writeback pressure starts.
    page_cache_bytes: float = 512.0 * 1024.0 * 1024.0
    #: Dirty fraction that triggers background writeback.
    dirty_background_ratio: float = 0.10
    #: Dirty fraction that forces synchronous writeback.
    dirty_ratio: float = 0.40
    #: Page size (bytes).
    page_bytes: int = 4096


@dataclass(frozen=True)
class MeasurementConfig:
    """Sense-resistor / DAQ apparatus and counter sampling."""

    #: DAQ sample rate (Hz); samples are averaged per counter window.
    daq_rate_hz: float = 10000.0
    #: Counter (and power-average) sampling period (seconds).
    sample_period_s: float = 1.0
    #: Jitter of the counter sampling period (std dev, seconds) caused by
    #: cache effects and interrupt latency.
    sample_jitter_s: float = 2.0e-3
    #: Relative noise of one DAQ sample (std dev, fraction of reading).
    daq_noise_rel: float = 0.01
    #: Per-domain sense-resistor gain error (std dev, fraction).
    gain_error_rel: float = 0.003
    #: Slow sensor drift amplitude (fraction of reading).
    drift_rel: float = 0.002


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of the simulated server."""

    num_packages: int = 4
    tick_s: float = 1.0e-3
    cpu: CpuConfig = field(default_factory=CpuConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    chipset: ChipsetConfig = field(default_factory=ChipsetConfig)
    io: IoConfig = field(default_factory=IoConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    osim: OsConfig = field(default_factory=OsConfig)
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)

    @property
    def hardware_threads(self) -> int:
        """Total schedulable hardware contexts (packages x SMT)."""
        return self.num_packages * self.cpu.smt_contexts

    @property
    def cycles_per_tick(self) -> float:
        """Core cycles elapsing in one simulation tick."""
        return self.cpu.frequency_hz * self.tick_s

    def __post_init__(self) -> None:
        if self.num_packages < 1:
            raise ValueError("num_packages must be >= 1")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.tick_s > self.measurement.sample_period_s:
            raise ValueError("tick_s must not exceed the sample period")


def fast_config(tick_s: float = 10.0e-3) -> SystemConfig:
    """A coarser-tick configuration for tests and quick experiments.

    The 10 ms default tick runs ~10x faster than the fidelity default
    while preserving every rate relationship the models depend on.
    """
    return SystemConfig(tick_s=tick_s)
