"""Chipset power domain — near-constant, and not cleanly measurable.

The paper's chipset domain spans several supply rails with a
non-deterministic relationship, so the authors could not derive its
power deterministically and settled on a constant 19.9 W model, eating
0.5-13 % error depending on workload (their Tables 3/4) while the
within-run standard deviation stayed below ~0.33 W (their Table 2).

We reproduce that structure: true chipset power varies mildly with FSB
utilisation and uncacheable traffic, and the *derived measurement*
carries a per-run offset that wanders slowly (Ornstein-Uhlenbeck around
a per-run mean drawn from the derivation-offset range).  Different
workload runs therefore "measure" systematically different chipset
levels, exactly the failure mode that makes the constant model err.
"""

from __future__ import annotations

import math

import numpy as np

from repro.simulator.config import ChipsetConfig
from repro.simulator.rng import NormalStream


class ChipsetSubsystem:
    """Chipset power with the multi-domain derivation artefact."""

    #: Time constant of the derivation-offset wander (seconds).
    _DRIFT_TAU_S = 120.0
    #: Std dev of the wander around the per-run mean (Watts).
    _DRIFT_STD_W = 0.12

    def __init__(self, config: ChipsetConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        # Per-run derivation offset mean: skewed low (most workloads
        # measure below nominal, idle measures at nominal).
        low = -config.derivation_offset_range_w
        high = config.derivation_offset_range_w / 4.0
        self._offset_mean = float(rng.uniform(low, high))
        self._offset = self._offset_mean
        # Created after the offset-mean draw so the buffered stream
        # consumes exactly the values the per-tick scalar draws did.
        self._normal = NormalStream(rng)
        #: dt_s -> (alpha, noise) OU coefficients; the tick length is
        #: fixed per run, so exp/sqrt are paid once, not per tick.
        self._drift_coeff: "dict[float, tuple[float, float]]" = {}

    @property
    def derivation_offset_mean_w(self) -> float:
        return self._offset_mean

    def tick(
        self,
        bus_utilization: float,
        uncacheable_rate: float,
        system_activity: float,
        dt_s: float,
    ) -> float:
        """Derived chipset power reading for one tick (Watts).

        Args:
            bus_utilization: FSB utilisation in [0, 1].
            uncacheable_rate: uncacheable accesses per second.
            system_activity: overall non-halted CPU fraction in [0, 1];
                the derivation artefact only appears once the domains
                carry load (an idle machine derives cleanly, which is
                why the paper's constant matches idle exactly).
            dt_s: tick length.
        """
        if not 0.0 <= bus_utilization <= 1.0:
            raise ValueError("bus_utilization must be in [0, 1]")
        if not 0.0 <= system_activity <= 1.0:
            raise ValueError("system_activity must be in [0, 1]")
        coeff = self._drift_coeff.get(dt_s)
        if coeff is None:
            alpha = math.exp(-dt_s / self._DRIFT_TAU_S)
            noise = math.sqrt(max(0.0, 1.0 - alpha * alpha)) * self._DRIFT_STD_W
            coeff = (alpha, noise)
            self._drift_coeff[dt_s] = coeff
        alpha, noise = coeff
        self._offset = (
            self._offset_mean
            + alpha * (self._offset - self._offset_mean)
            + noise * self._normal.next()
        )
        # Smoothstep: the offset fades in as the machine leaves idle.
        gate = system_activity * system_activity * (3.0 - 2.0 * system_activity)
        dynamic = (
            self.config.bus_sensitivity_w * bus_utilization
            + self.config.io_sensitivity_w * min(1.0, uncacheable_rate / 2.0e5)
        )
        return self.config.nominal_power_w + dynamic * 0.35 + self._offset * gate
