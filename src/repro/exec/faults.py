"""Deterministic fault injection for the sweep engine.

The paper's data collection is an hours-long campaign; our equivalent
(the parallel sweep) must survive worker death, torn cache files and
runaway tasks.  Proving that requires *injecting* those faults
deterministically, so the fault-tolerance tests can assert the strong
property that matters: a sweep executed under faults produces runs
**bit-identical** to an undisturbed serial sweep.

A :class:`FaultPlan` names which spec indices misbehave and how:

* ``fail`` — the worker raises :class:`FaultInjected` (a per-task
  exception the retry loop must absorb);
* ``kill`` — the worker process hard-exits (``os._exit``), breaking
  the whole ``ProcessPoolExecutor`` (``BrokenProcessPool``);
* ``hang`` — the worker sleeps ``hang_s`` seconds before running,
  driving the retry policy's task timeout;
* ``exit_parent_after`` — the *parent* sweep process hard-exits after
  the Nth completed (and checkpointed) spec, simulating a mid-run
  ``SIGKILL`` for checkpoint/resume tests.

Each of ``fail``/``kill``/``hang`` maps a spec index to the number of
leading *submissions* that misbehave, so a plan like ``kill={0: 1}``
kills the first attempt at spec 0 and lets the retry succeed — the
sweep's final output is unchanged, only its execution path differs.

Plans cross the process boundary two ways: pickled inside the pool
task (in-process sweeps) or as JSON in the ``REPRO_FAULT_PLAN``
environment variable (CLI / CI smoke runs), e.g.::

    REPRO_FAULT_PLAN='{"exit_parent_after": 1}' repro-power sweep ...

:class:`TearingCache` complements the plan on the storage side: a
:class:`~repro.exec.cache.RunCache` that truncates files after writing
them, simulating a crash mid-write of a non-atomic writer so tests can
exercise the corrupt-entry heal paths.
"""

from __future__ import annotations

import json
import logging
import os
import random
import time
from dataclasses import dataclass, field

from repro.exec.cache import RunCache

logger = logging.getLogger(__name__)

#: Environment variable carrying a JSON-encoded :class:`FaultPlan`.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status of a killed worker (arbitrary, distinguishable).
WORKER_KILL_EXIT = 42

#: Exit status of a killed parent — 128+9, what a shell reports after
#: an actual ``SIGKILL``.
PARENT_KILL_EXIT = 137


class FaultInjected(RuntimeError):
    """The exception an injected per-task failure raises."""


@dataclass
class FaultPlan:
    """Which spec indices misbehave, how, and for how many attempts.

    All three fault maps key on the spec's index in the sweep and give
    the number of leading submissions that misbehave; attempts at or
    past that count run normally.  The plan must stay picklable (it
    rides to pool workers inside the task tuple).
    """

    #: spec index -> leading attempts that raise :class:`FaultInjected`.
    fail: "dict[int, int]" = field(default_factory=dict)
    #: spec index -> leading attempts where the pool worker hard-exits.
    #: Ignored by in-process (serial) execution, which is exactly what
    #: makes degrade-to-serial a safe escape hatch.
    kill: "dict[int, int]" = field(default_factory=dict)
    #: spec index -> leading attempts that sleep ``hang_s`` first.
    hang: "dict[int, int]" = field(default_factory=dict)
    #: How long a hung attempt sleeps (must exceed the retry policy's
    #: ``timeout_s`` to register as a timeout).
    hang_s: float = 30.0
    #: Hard-exit the parent after this many completed specs (``None``
    #: disables).  Completions are counted after the checkpoint store,
    #: so everything "done" at death is durably cached.
    exit_parent_after: "int | None" = None

    # -- queries -------------------------------------------------------

    def should_fail(self, index: int, attempt: int) -> bool:
        return attempt < self.fail.get(index, 0)

    def should_kill(self, index: int, attempt: int) -> bool:
        return attempt < self.kill.get(index, 0)

    def should_hang(self, index: int, attempt: int) -> bool:
        return attempt < self.hang.get(index, 0)

    @property
    def empty(self) -> bool:
        return not (self.fail or self.kill or self.hang) and (
            self.exit_parent_after is None
        )

    # -- application ---------------------------------------------------

    def apply_in_worker(self, index: int, attempt: int) -> None:
        """Inject this attempt's fault from inside a pool worker."""
        if self.should_kill(index, attempt):
            # Hard exit: no exception, no cleanup — the parent sees the
            # worker vanish and the executor break.
            os._exit(WORKER_KILL_EXIT)
        if self.should_hang(index, attempt):
            time.sleep(self.hang_s)
        if self.should_fail(index, attempt):
            raise FaultInjected(
                f"injected failure (spec {index}, attempt {attempt})"
            )

    def apply_in_process(self, index: int, attempt: int) -> None:
        """Inject from serial in-process execution.

        Kills and hangs are pool concepts (killing would take the whole
        sweep down, and serial execution has no task timeout), so only
        per-task exceptions inject here.
        """
        if self.should_fail(index, attempt):
            raise FaultInjected(
                f"injected failure (spec {index}, attempt {attempt})"
            )

    def maybe_exit_parent(self, completed: int) -> None:
        """Hard-exit the sweep process after the Nth completion."""
        if self.exit_parent_after is not None and completed >= self.exit_parent_after:
            logger.warning(
                "fault plan: hard-exiting parent after %d completed spec(s)",
                completed,
            )
            os._exit(PARENT_KILL_EXIT)

    # -- construction / serialisation ----------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_specs: int,
        fail_rate: float = 0.0,
        kill_rate: float = 0.0,
        attempts: int = 1,
    ) -> "FaultPlan":
        """A reproducible random plan over ``n_specs`` spec indices.

        Each index independently draws whether its first ``attempts``
        submissions fail and/or kill; the same seed always yields the
        same plan.
        """
        rng = random.Random(seed)
        fail: "dict[int, int]" = {}
        kill: "dict[int, int]" = {}
        for index in range(n_specs):
            if rng.random() < fail_rate:
                fail[index] = attempts
            if rng.random() < kill_rate:
                kill[index] = attempts
        return cls(fail=fail, kill=kill)

    def to_json(self) -> dict:
        doc: dict = {}
        for name in ("fail", "kill", "hang"):
            mapping = getattr(self, name)
            if mapping:
                doc[name] = {str(k): int(v) for k, v in mapping.items()}
        if self.hang:
            doc["hang_s"] = self.hang_s
        if self.exit_parent_after is not None:
            doc["exit_parent_after"] = self.exit_parent_after
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        def int_map(name: str) -> "dict[int, int]":
            return {int(k): int(v) for k, v in (doc.get(name) or {}).items()}

        exit_after = doc.get("exit_parent_after")
        return cls(
            fail=int_map("fail"),
            kill=int_map("kill"),
            hang=int_map("hang"),
            hang_s=float(doc.get("hang_s", 30.0)),
            exit_parent_after=None if exit_after is None else int(exit_after),
        )

    def to_env(self) -> str:
        """The ``REPRO_FAULT_PLAN`` value describing this plan."""
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan in ``$REPRO_FAULT_PLAN``, or ``None`` when unset.

        A malformed value is logged and ignored — a typo'd plan must
        not take a production sweep down (and a fault smoke that relies
        on it fails loudly anyway when no fault fires).
        """
        raw = os.environ.get(FAULT_PLAN_ENV)
        if not raw:
            return None
        try:
            plan = cls.from_json(json.loads(raw))
        except (ValueError, TypeError, AttributeError) as exc:
            logger.warning(
                "ignoring malformed %s=%r (%s: %s)",
                FAULT_PLAN_ENV,
                raw,
                type(exc).__name__,
                exc,
            )
            return None
        return None if plan.empty else plan


def tear_file(path: str, keep_fraction: float = 0.5) -> None:
    """Truncate ``path`` mid-byte, like a crash during a rewrite."""
    size = os.path.getsize(path)
    with open(path, "rb+") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))


@dataclass
class TearingCache(RunCache):
    """A :class:`RunCache` that tears files right after writing them.

    ``tear_next_runs`` / ``tear_next_index`` count down: each store (or
    index write) while the counter is positive leaves a truncated file
    behind, as if a non-atomic writer died mid-write.  Loaders must
    treat the torn file as a miss and the next store must heal it.
    """

    tear_next_runs: int = 0
    tear_next_index: int = 0

    def store(self, key, run):
        path = super().store(key, run)
        if path is not None and self.tear_next_runs > 0:
            self.tear_next_runs -= 1
            tear_file(path)
        return path

    def _write_index(self, index) -> None:
        super()._write_index(index)
        if self.tear_next_index > 0:
            self.tear_next_index -= 1
            tear_file(self._index_path())
