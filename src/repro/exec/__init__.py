"""Execution engine: parallel sweeps and the content-addressed run cache.

``repro.exec`` owns *how* simulated runs get produced — serial or
process-parallel, fresh or from disk — so the rest of the codebase only
ever says *which* runs it wants.  See :func:`sweep` for the main entry
point and :class:`RunCache` for the on-disk store.
"""

from repro.exec.cache import CacheStats, RunCache, run_key
from repro.exec.sweep import (
    SweepResult,
    SweepSpec,
    default_workers,
    run_spec,
    sweep,
    sweep_specs,
)

__all__ = [
    "CacheStats",
    "RunCache",
    "SweepResult",
    "SweepSpec",
    "default_workers",
    "run_key",
    "run_spec",
    "sweep",
    "sweep_specs",
]
