"""Execution engine: parallel sweeps and the content-addressed run cache.

``repro.exec`` owns *how* simulated runs get produced — serial or
process-parallel, fresh or from disk, retried or resumed after a crash
— so the rest of the codebase only ever says *which* runs it wants.
See :func:`sweep` for the main entry point, :class:`RunCache` for the
on-disk store, :class:`RetryPolicy` for the failure semantics and
:mod:`repro.exec.faults` for the deterministic fault-injection harness
that proves them.
"""

from repro.exec.cache import CacheStats, RunCache, run_key
from repro.exec.faults import FaultInjected, FaultPlan, TearingCache
from repro.exec.sweep import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    SweepError,
    SweepResult,
    SweepSpec,
    default_workers,
    run_spec,
    sweep,
    sweep_specs,
)

__all__ = [
    "CacheStats",
    "DEFAULT_RETRY_POLICY",
    "FaultInjected",
    "FaultPlan",
    "RetryPolicy",
    "RunCache",
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "TearingCache",
    "default_workers",
    "run_key",
    "run_spec",
    "sweep",
    "sweep_specs",
]
