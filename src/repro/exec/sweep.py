"""Parallel sweep engine: many independent simulated runs at once.

The paper's evaluation is a sweep — twelve workloads simulated under
one configuration, then fed to training and validation.  Each run is
completely independent (its RNG streams derive from the base seed and
the workload name, never from other runs), so runs parallelise across
worker processes with **bit-identical** results: the worker executes
exactly the same ``simulate_workload`` call the serial path would, and
result ordering follows the spec list, not completion order.

``sweep``/``sweep_specs`` are the single entry point the experiment
context, the CLI, the benchmarks and the calibration script all route
through; pair them with :class:`~repro.exec.cache.RunCache` to skip
already-simulated runs across processes.

Execution is **fault tolerant**: per-task exceptions and timeouts are
retried with capped exponential backoff (:class:`RetryPolicy`), a dead
worker (``BrokenProcessPool``) causes a bounded number of pool rebuilds
before the sweep degrades to serial in-process execution, and — when a
cache is attached — every completed run is checkpointed immediately, so
a killed sweep resumes from its last stored run (``repro-power sweep
--resume``).  Specs that still fail after ``max_attempts`` are reported
in ``SweepResult.failed``; by default that raises :class:`SweepError`,
with ``allow_partial=True`` the partial result is returned instead.
Deterministic fault injection for all of this lives in
:mod:`repro.exec.faults`.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro import obs
from repro.core.traces import MeasuredRun
from repro.exec.cache import RunCache, run_key
from repro.exec.faults import FaultPlan
from repro.simulator.config import SystemConfig

logger = logging.getLogger(__name__)

#: Bucket edges for the worker queue-wait histogram (seconds).
_QUEUE_WAIT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0)

#: Broken-pool rebuilds tolerated before degrading to serial execution.
_MAX_POOL_REBUILDS = 2


@dataclass(frozen=True)
class SweepSpec:
    """One run of the sweep: which workload, under which conditions.

    ``config=None`` means the default :class:`SystemConfig`; the spec
    must stay picklable because it crosses the process boundary whole.
    """

    workload: str
    seed: int = 7
    duration_s: float = 300.0
    pstate: int = 0
    config: "SystemConfig | None" = None
    #: Counter windows dropped from the front of the returned run
    #: (program initialisation); applied inside the worker so cached
    #: and freshly simulated runs are interchangeable.
    warmup_windows: int = 0

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else SystemConfig()

    def key(self) -> str:
        """Content-hash cache key for this spec's run."""
        return run_key(
            workload=self.workload,
            seed=self.seed,
            duration_s=self.duration_s,
            config=self.resolved_config(),
            pstate=self.pstate,
            warmup_windows=self.warmup_windows,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the sweep tries before declaring a spec failed.

    ``max_attempts`` bounds attributable per-task failures (exceptions
    and timeouts); a failed attempt is retried after
    ``min(base_delay * 2**n, max_delay_s)`` seconds.  ``timeout_s``
    bounds how long the parent waits on one task's result (``None``
    waits forever); a timed-out task counts as a failed attempt and the
    pool is rebuilt so the runaway worker cannot absorb a slot.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    timeout_s: "float | None" = None
    max_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 (got {self.max_attempts})")

    def delay_s(self, failures: int) -> float:
        """Backoff before the retry following the Nth failure (1-based)."""
        exponent = max(0, failures - 1)
        return min(self.base_delay * (2.0 ** exponent), self.max_delay_s)


#: Policy used when the caller does not choose one.
DEFAULT_RETRY_POLICY = RetryPolicy()


class SweepError(RuntimeError):
    """Some specs failed permanently; ``.result`` holds the partial sweep."""

    def __init__(self, message: str, result: "SweepResult"):
        super().__init__(message)
        self.result = result


def run_spec(spec: SweepSpec) -> MeasuredRun:
    """Execute one spec (module-level so it pickles to pool workers)."""
    # Imported here so a pool worker pays the simulator import once per
    # process, not per task, and the module import stays cheap.
    from repro.simulator.system import simulate_workload
    from repro.workloads.registry import get_workload

    run = simulate_workload(
        get_workload(spec.workload),
        duration_s=spec.duration_s,
        seed=spec.seed,
        config=spec.resolved_config(),
        pstate=spec.pstate,
    )
    if spec.warmup_windows > 0:
        run = run.drop_warmup(spec.warmup_windows)
    return run


def _run_spec_traced(spec: SweepSpec, inject=None) -> MeasuredRun:
    """``run_spec`` wrapped in a per-spec span (telemetry on).

    ``inject`` is a zero-argument fault hook applied *inside* the span,
    so an injected crash leaves an errored ``sweep.run_spec`` span
    behind, exactly like an organic one.
    """
    with obs.span(
        "sweep.run_spec",
        workload=spec.workload,
        seed=spec.seed,
        duration_s=spec.duration_s,
    ) as sp:
        if inject is not None:
            inject()
        run = run_spec(spec)
        if sp is not None:
            sp.set("n_samples", run.n_samples)
    return run


def _pool_run(task: "tuple[SweepSpec, bool, float, int, int, FaultPlan | None]"):
    """Pool-side task: one spec, optionally with telemetry and faults.

    Returns ``(run, snapshot_or_None)``.  With telemetry on, the worker
    starts from a clean registry/trace (a forked worker inherits the
    parent's pre-fork telemetry, which must not be double-counted),
    records the queue wait (Linux ``CLOCK_MONOTONIC`` is system-wide,
    so the parent's submit stamp is comparable) and ships its snapshot
    back over the existing result-return path.
    """
    spec, telemetry, submitted_monotonic, index, attempt, faults = task
    inject = None
    if faults is not None:
        def inject() -> None:
            faults.apply_in_worker(index, attempt)

    if not telemetry:
        if inject is not None:
            inject()
        return run_spec(spec), None
    obs.enable()
    obs.reset()
    obs.observe(
        "sweep_queue_wait_seconds",
        time.monotonic() - submitted_monotonic,
        buckets=_QUEUE_WAIT_BUCKETS,
    )
    run = _run_spec_traced(spec, inject=inject)
    return run, obs.snapshot()


def default_workers() -> int:
    """Worker count when the caller does not choose one.

    ``REPRO_SWEEP_WORKERS`` overrides; otherwise the machine's CPU
    count, so a laptop parallelises and a CI container degrades to
    serial without configuration.  A non-integer override is logged
    and ignored rather than crashing the sweep before it starts.
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning(
                "ignoring non-integer REPRO_SWEEP_WORKERS=%r; "
                "falling back to the CPU count",
                env,
            )
    return os.cpu_count() or 1


@dataclass
class SweepResult:
    """Runs in spec order plus where each one came from.

    ``runs[i]`` is ``None`` exactly when ``i in failed`` — possible
    only via ``allow_partial=True`` (the default raises
    :class:`SweepError` instead of returning holes).
    """

    runs: "list[MeasuredRun | None]"
    cache_stats_hits: int = 0
    cache_stats_misses: int = 0
    n_workers: int = 1
    #: Index positions that were simulated (vs loaded from cache).
    simulated: "list[int]" = field(default_factory=list)
    #: Spec index -> final error, for specs that exhausted retries.
    failed: "dict[int, str]" = field(default_factory=dict)
    #: Attributable per-task failures that were retried.
    retries: int = 0
    #: Worker deaths (``BrokenProcessPool``) absorbed by pool rebuilds.
    worker_failures: int = 0
    #: Whether the pool became unrecoverable and the tail of the sweep
    #: ran serially in-process.
    degraded: bool = False


@dataclass
class _ExecState:
    """Mutable bookkeeping shared by the parallel and serial runners."""

    retries: int = 0
    worker_failures: int = 0
    completed: int = 0
    degraded: bool = False
    failed: "dict[int, str]" = field(default_factory=dict)
    #: Spec index -> submissions so far (what the fault plan keys on).
    submissions: "dict[int, int]" = field(default_factory=dict)
    #: Spec index -> attributable failures (what max_attempts bounds).
    failures: "dict[int, int]" = field(default_factory=dict)


def sweep_specs(
    specs: "list[SweepSpec] | tuple[SweepSpec, ...]",
    n_workers: "int | None" = None,
    cache: "RunCache | None" = None,
    retry: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
    allow_partial: bool = False,
    fleet: str = "auto",
) -> SweepResult:
    """Run every spec, in parallel, returning runs in spec order.

    Cache hits are served without touching the pool; only the misses
    are simulated.  ``n_workers=1`` (or a single outstanding miss)
    runs inline in this process — the results are identical either
    way, only the wall-clock differs.

    ``fleet="auto"`` (the default) batches specs that differ *only in
    seed* — same workload, duration, pstate, warmup and config — into
    one vectorized :func:`~repro.simulator.fleet.simulate_fleet` pass,
    one lane per seed.  Lane results match the per-spec path exactly on
    the simulation side (counters, energy, metadata); measured power
    traces are tolerance-bounded per the fleet's documented epsilon.
    ``fleet="off"`` forces the per-spec path, and fault injection
    disables fleet batching automatically (faults key on per-spec
    attempts, which a batched pass does not have).  A fleet pass that
    fails falls back to per-spec execution for its specs.

    Failures are retried per ``retry`` (default
    :data:`DEFAULT_RETRY_POLICY`); when a cache is attached, completed
    runs are stored as they finish, so an interrupted sweep resumes
    from its last checkpoint.  ``faults`` injects deterministic faults
    (default: the ``REPRO_FAULT_PLAN`` environment variable, none when
    unset).  Permanent failures raise :class:`SweepError` unless
    ``allow_partial=True``.
    """
    specs = list(specs)
    if fleet not in ("auto", "off"):
        raise ValueError(f"fleet must be 'auto' or 'off' (got {fleet!r})")
    if n_workers is None:
        n_workers = default_workers()
    if retry is None:
        retry = DEFAULT_RETRY_POLICY
    if faults is None:
        faults = FaultPlan.from_env()
    with obs.span("sweep.sweep_specs", n_specs=len(specs)) as sweep_span:
        result = _sweep_specs(specs, n_workers, cache, retry, faults, fleet)
        if sweep_span is not None:
            sweep_span.set("n_simulated", len(result.simulated))
            sweep_span.set("n_workers", result.n_workers)
            sweep_span.set("n_retries", result.retries)
            sweep_span.set("n_failed", len(result.failed))
    if result.failed:
        # Post-mortem for the dead specs: if a flight recorder is
        # installed (CLI --flight-dir, CI's REPRO_FLIGHT_DIR hooks),
        # dump a bundle before raising/returning, while the telemetry
        # that explains the failure is still in this process.
        from repro.obs import flight as _flight

        _flight.trigger_global(
            "sweep.failed",
            detail={
                "n_specs": len(specs),
                "n_failed": len(result.failed),
                "retries": result.retries,
                "worker_failures": result.worker_failures,
                "failed": {
                    str(i): f"{specs[i].workload}: {error}"
                    for i, error in sorted(result.failed.items())
                },
            },
        )
    if result.failed and not allow_partial:
        summary = "; ".join(
            f"{specs[i].workload}[{i}]: {error}"
            for i, error in sorted(result.failed.items())
        )
        raise SweepError(
            f"{len(result.failed)} spec(s) failed permanently after "
            f"{retry.max_attempts} attempt(s): {summary}",
            result,
        )
    return result


def _checkpoint(
    cache: "RunCache | None", spec: SweepSpec, run: MeasuredRun
) -> None:
    """Persist one completed run immediately (checkpoint/resume)."""
    if cache is not None and cache.enabled:
        cache.store(spec.key(), run)


def _record_retry(
    state: _ExecState, spec: SweepSpec, index: int, kind: str, error: str
) -> None:
    state.retries += 1
    obs.inc("sweep_retries_total")
    obs.event(
        "sweep.retry",
        workload=spec.workload,
        spec_index=index,
        attempt=state.failures.get(index, 0),
        kind=kind,
        error=error,
    )
    logger.warning(
        "sweep: retrying %s (spec %d) after %s: %s",
        spec.workload,
        index,
        kind,
        error,
    )


def _record_permanent_failure(
    state: _ExecState, spec: SweepSpec, index: int, error: str
) -> None:
    state.failed[index] = error
    obs.inc("sweep_failed_specs_total")
    obs.event(
        "sweep.spec_failed",
        workload=spec.workload,
        spec_index=index,
        attempts=state.failures.get(index, 0),
        error=error,
    )
    logger.error(
        "sweep: %s (spec %d) failed permanently after %d attempt(s): %s",
        spec.workload,
        index,
        state.failures.get(index, 0),
        error,
    )


def _run_fleet_groups(
    specs: "list[SweepSpec]",
    pending: "list[int]",
    runs: "list[MeasuredRun | None]",
    cache: "RunCache | None",
    state: _ExecState,
) -> "list[int]":
    """Serve many-seed spec groups from one fleet pass each.

    Returns the spec indices still pending (singleton groups, plus any
    group whose fleet pass raised — those fall back to the per-spec
    path so one bad batch cannot fail a whole sweep).
    """
    from repro.simulator.fleet import simulate_fleet
    from repro.workloads.registry import get_workload

    groups: "dict[tuple, list[int]]" = {}
    for i in pending:
        spec = specs[i]
        key = (
            spec.workload,
            spec.duration_s,
            spec.pstate,
            spec.warmup_windows,
            repr(spec.resolved_config()),
        )
        groups.setdefault(key, []).append(i)
    remaining: "list[int]" = []
    for members in groups.values():
        if len(members) < 2:
            remaining.extend(members)
            continue
        spec0 = specs[members[0]]
        try:
            with obs.span(
                "sweep.fleet",
                workload=spec0.workload,
                n_lanes=len(members),
            ):
                fleet_runs = simulate_fleet(
                    get_workload(spec0.workload),
                    duration_s=spec0.duration_s,
                    seeds=[specs[i].seed for i in members],
                    config=spec0.resolved_config(),
                    pstate=spec0.pstate,
                )
        except Exception as exc:
            logger.warning(
                "sweep: fleet pass failed for %d %s spec(s) (%s: %s); "
                "falling back to per-spec execution",
                len(members),
                spec0.workload,
                type(exc).__name__,
                exc,
            )
            remaining.extend(members)
            continue
        obs.inc("sweep_fleet_lanes_total", len(members))
        for i, run in zip(members, fleet_runs):
            if specs[i].warmup_windows > 0:
                run = run.drop_warmup(specs[i].warmup_windows)
            runs[i] = run
            _checkpoint(cache, specs[i], run)
            state.completed += 1
    return sorted(remaining)


def _sweep_specs(
    specs: "list[SweepSpec]",
    n_workers: int,
    cache: "RunCache | None",
    retry: RetryPolicy,
    faults: "FaultPlan | None",
    fleet: str = "auto",
) -> SweepResult:
    runs: "list[MeasuredRun | None]" = [None] * len(specs)
    caching = cache is not None and cache.enabled
    stats_before = dataclasses.replace(cache.stats) if caching else None

    pending: "list[int]" = []
    hits = misses = 0
    for i, spec in enumerate(specs):
        if caching:
            cached = cache.load(spec.key())
            if cached is not None:
                runs[i] = cached
                hits += 1
                continue
            misses += 1
        pending.append(i)

    telemetry = obs.enabled()
    state = _ExecState()
    to_execute = pending
    if fleet == "auto" and faults is None:
        to_execute = _run_fleet_groups(specs, pending, runs, cache, state)
    effective_workers = min(n_workers, len(to_execute)) if to_execute else 0
    if effective_workers > 1:
        logger.debug(
            "sweeping %d spec(s) over %d worker(s) (%d cache hit(s))",
            len(to_execute),
            effective_workers,
            hits,
        )
        _run_pending_parallel(
            specs, to_execute, runs, cache, telemetry, retry, faults,
            effective_workers, state,
        )
    else:
        _run_pending_serial(
            specs, to_execute, runs, cache, telemetry, retry, faults, state
        )

    if caching:
        # Runs were checkpointed as they completed; here we only funnel
        # this sweep's cache activity into the registry and the on-disk
        # lifetime totals (loads and stores both happen in this
        # process, so the deltas are worker-count independent).
        if telemetry and stats_before is not None:
            reg = obs.registry()
            reg.inc("run_cache_hits_total", cache.stats.hits - stats_before.hits)
            reg.inc("run_cache_misses_total", cache.stats.misses - stats_before.misses)
            reg.inc("run_cache_writes_total", cache.stats.writes - stats_before.writes)
        cache.persist_stats()

    assert all(runs[i] is not None for i in range(len(specs)) if i not in state.failed)
    return SweepResult(
        runs=runs,
        cache_stats_hits=hits,
        cache_stats_misses=misses,
        n_workers=max(1, effective_workers),
        simulated=[i for i in pending if i not in state.failed],
        failed=dict(state.failed),
        retries=state.retries,
        worker_failures=state.worker_failures,
        degraded=state.degraded,
    )


def _run_pending_parallel(
    specs: "list[SweepSpec]",
    pending: "list[int]",
    runs: "list[MeasuredRun | None]",
    cache: "RunCache | None",
    telemetry: bool,
    retry: RetryPolicy,
    faults: "FaultPlan | None",
    n_workers: int,
    state: _ExecState,
) -> None:
    """Round-based submit/collect loop with retries and pool rebuilds.

    Results are collected in spec order (so worker telemetry snapshots
    merge in the order the serial path would record them) and each
    completed run is checkpointed to the cache before the next result
    is awaited — a killed parent loses at most the in-flight runs.
    """
    outstanding = list(pending)
    rebuilds = 0
    snapshots: "dict[int, dict]" = {}
    pool = ProcessPoolExecutor(max_workers=n_workers)
    try:
        while outstanding:
            submitted = time.monotonic()
            futures = []
            for i in outstanding:
                attempt = state.submissions.get(i, 0)
                state.submissions[i] = attempt + 1
                futures.append(
                    (
                        i,
                        pool.submit(
                            _pool_run,
                            (specs[i], telemetry, submitted, i, attempt, faults),
                        ),
                    )
                )
            retry_next: "list[int]" = []
            pool_broken = False
            needs_rebuild = False
            for i, future in futures:
                spec = specs[i]
                try:
                    run, snap = future.result(timeout=retry.timeout_s)
                except BrokenProcessPool:
                    # The culprit is unknowable (every unfinished future
                    # reports the same breakage), so worker death never
                    # counts against a spec's attempt budget — the
                    # bounded rebuild budget guards the pathological
                    # case instead.
                    if not pool_broken:
                        pool_broken = True
                        state.worker_failures += 1
                        obs.inc("sweep_worker_failures_total")
                        obs.event(
                            "sweep.retry",
                            workload=spec.workload,
                            spec_index=i,
                            kind="worker_death",
                            error="BrokenProcessPool",
                        )
                        logger.warning(
                            "sweep: worker process died (observed at %s, "
                            "spec %d); rebuilding the pool",
                            spec.workload,
                            i,
                        )
                    retry_next.append(i)
                except FuturesTimeoutError:
                    needs_rebuild = True  # a runaway task owns a slot
                    state.failures[i] = state.failures.get(i, 0) + 1
                    error = f"timed out after {retry.timeout_s:g}s"
                    if state.failures[i] >= retry.max_attempts:
                        _record_permanent_failure(state, spec, i, error)
                    else:
                        retry_next.append(i)
                        _record_retry(state, spec, i, "timeout", error)
                except Exception as exc:  # per-task failure, attributable
                    state.failures[i] = state.failures.get(i, 0) + 1
                    error = f"{type(exc).__name__}: {exc}"
                    if state.failures[i] >= retry.max_attempts:
                        _record_permanent_failure(state, spec, i, error)
                    else:
                        retry_next.append(i)
                        _record_retry(state, spec, i, "exception", error)
                else:
                    runs[i] = run
                    if snap is not None:
                        snapshots[i] = snap
                    _checkpoint(cache, spec, run)
                    state.completed += 1
                    if faults is not None:
                        faults.maybe_exit_parent(state.completed)
            outstanding = retry_next
            if pool_broken or needs_rebuild:
                pool.shutdown(wait=False, cancel_futures=True)
                if pool_broken:
                    rebuilds += 1
                    if rebuilds > _MAX_POOL_REBUILDS:
                        # Unrecoverable pool: finish the tail serially
                        # in this process, where a worker-kill fault (or
                        # a hostile preempt pattern) cannot reach.
                        state.degraded = True
                        obs.event(
                            "sweep.degraded",
                            n_remaining=len(outstanding),
                            rebuilds=rebuilds,
                        )
                        logger.error(
                            "sweep: process pool broke %d time(s); "
                            "degrading %d remaining spec(s) to serial "
                            "in-process execution",
                            rebuilds,
                            len(outstanding),
                        )
                        _run_pending_serial(
                            specs, outstanding, runs, cache, telemetry,
                            retry, faults, state,
                        )
                        outstanding = []
                        break
                pool = ProcessPoolExecutor(max_workers=n_workers)
            if outstanding:
                worst = max(state.failures.get(i, 0) for i in outstanding)
                time.sleep(retry.delay_s(worst) if worst else retry.base_delay)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    # Merged in spec order, so right-biased gauge merge reproduces the
    # serial last-write-wins value.
    for i in sorted(snapshots):
        obs.merge_snapshot(snapshots[i])


def _run_pending_serial(
    specs: "list[SweepSpec]",
    pending: "list[int]",
    runs: "list[MeasuredRun | None]",
    cache: "RunCache | None",
    telemetry: bool,
    retry: RetryPolicy,
    faults: "FaultPlan | None",
    state: _ExecState,
) -> None:
    """In-process execution with the same retry/checkpoint contract.

    Worker-kill and hang faults do not apply here (there is no worker
    to kill and no result wait to time out), which is what makes this
    the safe fallback when the pool is unrecoverable.
    """
    for i in pending:
        spec = specs[i]
        while True:
            attempt = state.submissions.get(i, 0)
            state.submissions[i] = attempt + 1
            inject = None
            if faults is not None:
                def inject(index=i, att=attempt) -> None:
                    faults.apply_in_process(index, att)

            try:
                if telemetry:
                    run = _run_spec_traced(spec, inject=inject)
                else:
                    if inject is not None:
                        inject()
                    run = run_spec(spec)
            except Exception as exc:
                state.failures[i] = state.failures.get(i, 0) + 1
                error = f"{type(exc).__name__}: {exc}"
                if state.failures[i] >= retry.max_attempts:
                    _record_permanent_failure(state, spec, i, error)
                    break
                _record_retry(state, spec, i, "exception", error)
                time.sleep(retry.delay_s(state.failures[i]))
            else:
                runs[i] = run
                _checkpoint(cache, spec, run)
                state.completed += 1
                if faults is not None:
                    faults.maybe_exit_parent(state.completed)
                break


def sweep(
    workloads: "tuple[str, ...] | list[str]",
    config: "SystemConfig | None" = None,
    seed: int = 7,
    duration_s: float = 300.0,
    pstate: int = 0,
    warmup_windows: int = 0,
    n_workers: "int | None" = None,
    cache: "RunCache | None" = None,
    retry: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
) -> "dict[str, MeasuredRun]":
    """Simulate ``workloads`` under one configuration, possibly in parallel.

    The name-keyed result dict preserves the input order.  Parallel and
    serial execution produce bit-identical runs (each run's RNG streams
    depend only on ``seed`` and the workload name).  Duplicate workload
    names raise ``ValueError`` — the name-keyed dict would silently
    collapse them last-wins otherwise.
    """
    workloads = list(workloads)
    if len(set(workloads)) != len(workloads):
        duplicates = sorted({w for w in workloads if workloads.count(w) > 1})
        raise ValueError(
            f"duplicate workload name(s) {duplicates} in sweep: the "
            "name-keyed result would drop all but the last run of each; "
            "use sweep_specs() for repeated runs of one workload"
        )
    specs = [
        SweepSpec(
            workload=name,
            seed=seed,
            duration_s=duration_s,
            pstate=pstate,
            config=config,
            warmup_windows=warmup_windows,
        )
        for name in workloads
    ]
    result = sweep_specs(
        specs, n_workers=n_workers, cache=cache, retry=retry, faults=faults
    )
    return dict(zip(workloads, result.runs))
