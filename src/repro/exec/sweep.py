"""Parallel sweep engine: many independent simulated runs at once.

The paper's evaluation is a sweep — twelve workloads simulated under
one configuration, then fed to training and validation.  Each run is
completely independent (its RNG streams derive from the base seed and
the workload name, never from other runs), so runs parallelise across
worker processes with **bit-identical** results: the worker executes
exactly the same ``simulate_workload`` call the serial path would, and
result ordering follows the spec list, not completion order.

``sweep``/``sweep_specs`` are the single entry point the experiment
context, the CLI, the benchmarks and the calibration script all route
through; pair them with :class:`~repro.exec.cache.RunCache` to skip
already-simulated runs across processes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.traces import MeasuredRun
from repro.exec.cache import RunCache, run_key
from repro.simulator.config import SystemConfig


@dataclass(frozen=True)
class SweepSpec:
    """One run of the sweep: which workload, under which conditions.

    ``config=None`` means the default :class:`SystemConfig`; the spec
    must stay picklable because it crosses the process boundary whole.
    """

    workload: str
    seed: int = 7
    duration_s: float = 300.0
    pstate: int = 0
    config: "SystemConfig | None" = None
    #: Counter windows dropped from the front of the returned run
    #: (program initialisation); applied inside the worker so cached
    #: and freshly simulated runs are interchangeable.
    warmup_windows: int = 0

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else SystemConfig()

    def key(self) -> str:
        """Content-hash cache key for this spec's run."""
        return run_key(
            workload=self.workload,
            seed=self.seed,
            duration_s=self.duration_s,
            config=self.resolved_config(),
            pstate=self.pstate,
            warmup_windows=self.warmup_windows,
        )


def run_spec(spec: SweepSpec) -> MeasuredRun:
    """Execute one spec (module-level so it pickles to pool workers)."""
    # Imported here so a pool worker pays the simulator import once per
    # process, not per task, and the module import stays cheap.
    from repro.simulator.system import simulate_workload
    from repro.workloads.registry import get_workload

    run = simulate_workload(
        get_workload(spec.workload),
        duration_s=spec.duration_s,
        seed=spec.seed,
        config=spec.resolved_config(),
        pstate=spec.pstate,
    )
    if spec.warmup_windows > 0:
        run = run.drop_warmup(spec.warmup_windows)
    return run


def default_workers() -> int:
    """Worker count when the caller does not choose one.

    ``REPRO_SWEEP_WORKERS`` overrides; otherwise the machine's CPU
    count, so a laptop parallelises and a CI container degrades to
    serial without configuration.
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


@dataclass
class SweepResult:
    """Runs in spec order plus where each one came from."""

    runs: "list[MeasuredRun]"
    cache_stats_hits: int = 0
    cache_stats_misses: int = 0
    n_workers: int = 1
    #: Index positions that were simulated (vs loaded from cache).
    simulated: "list[int]" = field(default_factory=list)


def sweep_specs(
    specs: "list[SweepSpec] | tuple[SweepSpec, ...]",
    n_workers: "int | None" = None,
    cache: "RunCache | None" = None,
) -> SweepResult:
    """Run every spec, in parallel, returning runs in spec order.

    Cache hits are served without touching the pool; only the misses
    are simulated.  ``n_workers=1`` (or a single outstanding miss)
    runs inline in this process — the results are identical either
    way, only the wall-clock differs.
    """
    specs = list(specs)
    if n_workers is None:
        n_workers = default_workers()
    runs: "list[MeasuredRun | None]" = [None] * len(specs)

    pending: "list[int]" = []
    hits = misses = 0
    for i, spec in enumerate(specs):
        if cache is not None and cache.enabled:
            cached = cache.load(spec.key())
            if cached is not None:
                runs[i] = cached
                hits += 1
                continue
            misses += 1
        pending.append(i)

    effective_workers = min(n_workers, len(pending)) if pending else 0
    if effective_workers > 1:
        with ProcessPoolExecutor(max_workers=effective_workers) as pool:
            for i, run in zip(pending, pool.map(run_spec, [specs[i] for i in pending])):
                runs[i] = run
    else:
        for i in pending:
            runs[i] = run_spec(specs[i])

    if cache is not None and cache.enabled:
        for i in pending:
            run = runs[i]
            assert run is not None
            cache.store(specs[i].key(), run)

    assert all(run is not None for run in runs)
    return SweepResult(
        runs=runs,  # type: ignore[arg-type]
        cache_stats_hits=hits,
        cache_stats_misses=misses,
        n_workers=max(1, effective_workers),
        simulated=pending,
    )


def sweep(
    workloads: "tuple[str, ...] | list[str]",
    config: "SystemConfig | None" = None,
    seed: int = 7,
    duration_s: float = 300.0,
    pstate: int = 0,
    warmup_windows: int = 0,
    n_workers: "int | None" = None,
    cache: "RunCache | None" = None,
) -> "dict[str, MeasuredRun]":
    """Simulate ``workloads`` under one configuration, possibly in parallel.

    The name-keyed result dict preserves the input order.  Parallel and
    serial execution produce bit-identical runs (each run's RNG streams
    depend only on ``(seed, workload name)``).
    """
    specs = [
        SweepSpec(
            workload=name,
            seed=seed,
            duration_s=duration_s,
            pstate=pstate,
            config=config,
            warmup_windows=warmup_windows,
        )
        for name in workloads
    ]
    result = sweep_specs(specs, n_workers=n_workers, cache=cache)
    return dict(zip(list(workloads), result.runs))
