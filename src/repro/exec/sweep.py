"""Parallel sweep engine: many independent simulated runs at once.

The paper's evaluation is a sweep — twelve workloads simulated under
one configuration, then fed to training and validation.  Each run is
completely independent (its RNG streams derive from the base seed and
the workload name, never from other runs), so runs parallelise across
worker processes with **bit-identical** results: the worker executes
exactly the same ``simulate_workload`` call the serial path would, and
result ordering follows the spec list, not completion order.

``sweep``/``sweep_specs`` are the single entry point the experiment
context, the CLI, the benchmarks and the calibration script all route
through; pair them with :class:`~repro.exec.cache.RunCache` to skip
already-simulated runs across processes.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.core.traces import MeasuredRun
from repro.exec.cache import RunCache, run_key
from repro.simulator.config import SystemConfig

logger = logging.getLogger(__name__)

#: Bucket edges for the worker queue-wait histogram (seconds).
_QUEUE_WAIT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0)


@dataclass(frozen=True)
class SweepSpec:
    """One run of the sweep: which workload, under which conditions.

    ``config=None`` means the default :class:`SystemConfig`; the spec
    must stay picklable because it crosses the process boundary whole.
    """

    workload: str
    seed: int = 7
    duration_s: float = 300.0
    pstate: int = 0
    config: "SystemConfig | None" = None
    #: Counter windows dropped from the front of the returned run
    #: (program initialisation); applied inside the worker so cached
    #: and freshly simulated runs are interchangeable.
    warmup_windows: int = 0

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else SystemConfig()

    def key(self) -> str:
        """Content-hash cache key for this spec's run."""
        return run_key(
            workload=self.workload,
            seed=self.seed,
            duration_s=self.duration_s,
            config=self.resolved_config(),
            pstate=self.pstate,
            warmup_windows=self.warmup_windows,
        )


def run_spec(spec: SweepSpec) -> MeasuredRun:
    """Execute one spec (module-level so it pickles to pool workers)."""
    # Imported here so a pool worker pays the simulator import once per
    # process, not per task, and the module import stays cheap.
    from repro.simulator.system import simulate_workload
    from repro.workloads.registry import get_workload

    run = simulate_workload(
        get_workload(spec.workload),
        duration_s=spec.duration_s,
        seed=spec.seed,
        config=spec.resolved_config(),
        pstate=spec.pstate,
    )
    if spec.warmup_windows > 0:
        run = run.drop_warmup(spec.warmup_windows)
    return run


def _run_spec_traced(spec: SweepSpec) -> MeasuredRun:
    """``run_spec`` wrapped in a per-spec span (telemetry on)."""
    with obs.span(
        "sweep.run_spec",
        workload=spec.workload,
        seed=spec.seed,
        duration_s=spec.duration_s,
    ) as sp:
        run = run_spec(spec)
        if sp is not None:
            sp.set("n_samples", run.n_samples)
    return run


def _pool_run(task: "tuple[SweepSpec, bool, float]"):
    """Pool-side task: one spec, optionally with telemetry.

    Returns ``(run, snapshot_or_None)``.  With telemetry on, the worker
    starts from a clean registry/trace (a forked worker inherits the
    parent's pre-fork telemetry, which must not be double-counted),
    records the queue wait (Linux ``CLOCK_MONOTONIC`` is system-wide,
    so the parent's submit stamp is comparable) and ships its snapshot
    back over the existing result-return path.
    """
    spec, telemetry, submitted_monotonic = task
    if not telemetry:
        return run_spec(spec), None
    obs.enable()
    obs.reset()
    obs.observe(
        "sweep_queue_wait_seconds",
        time.monotonic() - submitted_monotonic,
        buckets=_QUEUE_WAIT_BUCKETS,
    )
    run = _run_spec_traced(spec)
    return run, obs.snapshot()


def default_workers() -> int:
    """Worker count when the caller does not choose one.

    ``REPRO_SWEEP_WORKERS`` overrides; otherwise the machine's CPU
    count, so a laptop parallelises and a CI container degrades to
    serial without configuration.
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


@dataclass
class SweepResult:
    """Runs in spec order plus where each one came from."""

    runs: "list[MeasuredRun]"
    cache_stats_hits: int = 0
    cache_stats_misses: int = 0
    n_workers: int = 1
    #: Index positions that were simulated (vs loaded from cache).
    simulated: "list[int]" = field(default_factory=list)


def sweep_specs(
    specs: "list[SweepSpec] | tuple[SweepSpec, ...]",
    n_workers: "int | None" = None,
    cache: "RunCache | None" = None,
) -> SweepResult:
    """Run every spec, in parallel, returning runs in spec order.

    Cache hits are served without touching the pool; only the misses
    are simulated.  ``n_workers=1`` (or a single outstanding miss)
    runs inline in this process — the results are identical either
    way, only the wall-clock differs.
    """
    specs = list(specs)
    if n_workers is None:
        n_workers = default_workers()
    with obs.span("sweep.sweep_specs", n_specs=len(specs)) as sweep_span:
        result = _sweep_specs(specs, n_workers, cache)
        if sweep_span is not None:
            sweep_span.set("n_simulated", len(result.simulated))
            sweep_span.set("n_workers", result.n_workers)
    return result


def _sweep_specs(
    specs: "list[SweepSpec]",
    n_workers: int,
    cache: "RunCache | None",
) -> SweepResult:
    runs: "list[MeasuredRun | None]" = [None] * len(specs)
    caching = cache is not None and cache.enabled
    stats_before = dataclasses.replace(cache.stats) if caching else None

    pending: "list[int]" = []
    hits = misses = 0
    for i, spec in enumerate(specs):
        if caching:
            cached = cache.load(spec.key())
            if cached is not None:
                runs[i] = cached
                hits += 1
                continue
            misses += 1
        pending.append(i)

    telemetry = obs.enabled()
    effective_workers = min(n_workers, len(pending)) if pending else 0
    if effective_workers > 1:
        logger.debug(
            "sweeping %d spec(s) over %d worker(s) (%d cache hit(s))",
            len(pending),
            effective_workers,
            hits,
        )
        submitted = time.monotonic()
        tasks = [(specs[i], telemetry, submitted) for i in pending]
        with ProcessPoolExecutor(max_workers=effective_workers) as pool:
            for i, (run, snap) in zip(pending, pool.map(_pool_run, tasks)):
                runs[i] = run
                if snap is not None:
                    # Merged in spec order, so right-biased gauge merge
                    # reproduces the serial last-write-wins value.
                    obs.merge_snapshot(snap)
    else:
        for i in pending:
            runs[i] = _run_spec_traced(specs[i]) if telemetry else run_spec(specs[i])

    if caching:
        for i in pending:
            run = runs[i]
            assert run is not None
            cache.store(specs[i].key(), run)
        # Funnel this sweep's cache activity into the registry and the
        # on-disk lifetime totals (loads and stores both happen in this
        # process, so the deltas are worker-count independent).
        if telemetry and stats_before is not None:
            reg = obs.registry()
            reg.inc("run_cache_hits_total", cache.stats.hits - stats_before.hits)
            reg.inc("run_cache_misses_total", cache.stats.misses - stats_before.misses)
            reg.inc("run_cache_writes_total", cache.stats.writes - stats_before.writes)
        cache.persist_stats()

    assert all(run is not None for run in runs)
    return SweepResult(
        runs=runs,  # type: ignore[arg-type]
        cache_stats_hits=hits,
        cache_stats_misses=misses,
        n_workers=max(1, effective_workers),
        simulated=pending,
    )


def sweep(
    workloads: "tuple[str, ...] | list[str]",
    config: "SystemConfig | None" = None,
    seed: int = 7,
    duration_s: float = 300.0,
    pstate: int = 0,
    warmup_windows: int = 0,
    n_workers: "int | None" = None,
    cache: "RunCache | None" = None,
) -> "dict[str, MeasuredRun]":
    """Simulate ``workloads`` under one configuration, possibly in parallel.

    The name-keyed result dict preserves the input order.  Parallel and
    serial execution produce bit-identical runs (each run's RNG streams
    depend only on ``(seed, workload name)``).
    """
    specs = [
        SweepSpec(
            workload=name,
            seed=seed,
            duration_s=duration_s,
            pstate=pstate,
            config=config,
            warmup_windows=warmup_windows,
        )
        for name in workloads
    ]
    result = sweep_specs(specs, n_workers=n_workers, cache=cache)
    return dict(zip(list(workloads), result.runs))
