"""Content-addressed on-disk cache of simulated runs.

A cached run is addressed by the sha256 of everything that determines
its content: the full :class:`~repro.simulator.config.SystemConfig`
(every nested dataclass field), the workload name, the base seed, the
duration, the DVFS operating point and the number of warmup windows
dropped before storing.  Any change to any of these — a retuned power
constant, a different tick length — changes the key, so stale cache
entries can never be returned; the hand-rolled filename scheme this
replaces keyed only on ``(name, duration, seed, tick)`` and had to be
version-bumped by hand whenever the simulator changed behaviour.

Writes are atomic (write to a temp file in the cache directory, then
``os.replace``) so a crashed or killed process never leaves a torn
JSON behind, and concurrent sweep workers racing to store the same run
both succeed.  A best-effort ``index.json`` maps keys back to
human-readable run parameters for inspection.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field

from repro.core.traces import MeasuredRun
from repro.simulator.config import SystemConfig

logger = logging.getLogger(__name__)

#: Bump when the on-disk run format (not the run content) changes.
_SCHEMA_VERSION = 1

#: Reserved index key holding lifetime hit/miss/write totals.  Run keys
#: are sha256 hex digests, so this name can never collide with one.
_STATS_KEY = "__stats__"


def run_key(
    workload: str,
    seed: int,
    duration_s: float,
    config: SystemConfig,
    pstate: int = 0,
    warmup_windows: int = 0,
) -> str:
    """The content hash addressing one simulated run.

    The key is the sha256 hex digest of a canonical (sorted-keys,
    exact-float-repr) JSON document of every parameter that affects the
    run's content.  Two calls agree exactly when the runs they describe
    are bit-identical.
    """
    document = {
        "schema": _SCHEMA_VERSION,
        "workload": str(workload),
        "seed": int(seed),
        "duration_s": float(duration_s),
        "pstate": int(pstate),
        "warmup_windows": int(warmup_windows),
        "config": dataclasses.asdict(config),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def describe(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.writes} write(s)"
        )


@dataclass
class RunCache:
    """Content-addressed store of :class:`MeasuredRun` JSON files.

    Args:
        root: cache directory; created lazily on first write.  ``None``
            disables the cache (every lookup misses, stores are no-ops)
            so callers need no conditional plumbing.
    """

    root: "str | None"
    stats: CacheStats = field(default_factory=CacheStats)
    #: Portion of ``stats`` already folded into the on-disk lifetime
    #: totals (see :meth:`persist_stats`).
    _flushed: CacheStats = field(default_factory=CacheStats, repr=False)

    @classmethod
    def from_env(cls, default: "str | None" = None) -> "RunCache":
        """A cache rooted at ``$REPRO_CACHE_DIR`` (or ``default``)."""
        return cls(os.environ.get("REPRO_CACHE_DIR", default))

    @property
    def enabled(self) -> bool:
        return bool(self.root)

    def path_for(self, key: str) -> "str | None":
        if not self.root:
            return None
        return os.path.join(self.root, f"run-{key}.json")

    def load(self, key: str) -> "MeasuredRun | None":
        """The cached run for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        if path is None or not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            run = MeasuredRun.load(path)
        except (OSError, ValueError, KeyError) as exc:
            # A torn or foreign file: treat as a miss; the subsequent
            # store will atomically replace it.
            logger.warning(
                "run cache entry %s is corrupt (%s: %s); treating as a "
                "miss, the next store heals it",
                path,
                type(exc).__name__,
                exc,
            )
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return run

    def store(self, key: str, run: MeasuredRun) -> "str | None":
        """Atomically persist ``run`` under ``key``; returns its path."""
        path = self.path_for(key)
        if path is None:
            return None
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=f".run-{key[:12]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(run.to_dict(), handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        self._index_add(key, run)
        return path

    # -- index (best effort, for humans) --------------------------------

    def _index_path(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, "index.json")

    def _index_add(self, key: str, run: MeasuredRun) -> None:
        """Record human-readable parameters for ``key``.

        Purely informational: lookups never consult the index, so a
        lost race between concurrent writers costs nothing but an index
        line.  Riding along with the entry, the instance's unflushed
        hit/miss/write deltas are folded into the lifetime totals (the
        index is being rewritten anyway) — and committed as flushed
        only once the write lands, so a failed write keeps the deltas
        for the next attempt instead of discarding them.

        ``TypeError``/``ValueError`` cover ``json.dump`` choking on odd
        run metadata: one unserialisable run must not crash a sweep
        whose simulation already succeeded.
        """
        try:
            index = self._raw_index()
            index[key] = {
                "workload": run.workload,
                "n_samples": run.n_samples,
                "duration_s": run.duration_s,
                "base_seed": run.metadata.get("base_seed"),
            }
            flushed = self._fold_stats_into(index)
            self._write_index(index)
        except (OSError, TypeError, ValueError) as exc:
            logger.warning(
                "run cache index update failed (%s: %s)",
                type(exc).__name__,
                exc,
            )
        else:
            self._flushed = flushed

    def _write_index(self, index: dict) -> None:
        fd, tmp_path = tempfile.mkstemp(
            prefix=".index-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(index, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, self._index_path())
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _raw_index(self) -> dict:
        if not self.root:
            return {}
        try:
            with open(self._index_path(), encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return {}
        except (OSError, ValueError) as exc:
            logger.warning(
                "run cache index at %s is unreadable (%s); starting a "
                "fresh one",
                self._index_path(),
                exc,
            )
            return {}

    def index(self) -> dict:
        """The key -> run-parameters mapping (empty when absent)."""
        index = self._raw_index()
        index.pop(_STATS_KEY, None)
        return index

    # -- lifetime statistics --------------------------------------------

    def _fold_stats_into(self, index: dict) -> CacheStats:
        """Add this instance's unflushed deltas to ``index``'s totals.

        Returns the stats snapshot the caller must assign to
        ``_flushed`` **after** the index write succeeds; committing it
        eagerly would permanently discard the deltas when the write
        fails (they would look flushed without ever reaching disk).
        """
        stored = index.get(_STATS_KEY) or {}
        index[_STATS_KEY] = {
            "hits": int(stored.get("hits", 0)) + self.stats.hits - self._flushed.hits,
            "misses": int(stored.get("misses", 0))
            + self.stats.misses
            - self._flushed.misses,
            "writes": int(stored.get("writes", 0))
            + self.stats.writes
            - self._flushed.writes,
        }
        return dataclasses.replace(self.stats)

    def persist_stats(self) -> None:
        """Fold unflushed hit/miss/write deltas into the on-disk totals.

        Per-instance counters die with the process (a sweep worker, a
        one-shot CLI invocation); persisting them into ``index.json``
        lets ``repro-power obs`` report lifetime cache effectiveness.
        Best effort: a lost read-modify-write race with a concurrent
        process under-counts, it never corrupts.
        """
        if not self.root:
            return
        if (
            self.stats.hits == self._flushed.hits
            and self.stats.misses == self._flushed.misses
            and self.stats.writes == self._flushed.writes
        ):
            return
        try:
            os.makedirs(self.root, exist_ok=True)
            index = self._raw_index()
            flushed = self._fold_stats_into(index)
            self._write_index(index)
        except (OSError, TypeError, ValueError) as exc:
            logger.warning(
                "run cache stats persistence failed (%s: %s)",
                type(exc).__name__,
                exc,
            )
        else:
            self._flushed = flushed

    def lifetime_stats(self) -> CacheStats:
        """Stored totals plus this instance's unflushed activity."""
        stored = self._raw_index().get(_STATS_KEY) or {}
        return CacheStats(
            hits=int(stored.get("hits", 0)) + self.stats.hits - self._flushed.hits,
            misses=int(stored.get("misses", 0))
            + self.stats.misses
            - self._flushed.misses,
            writes=int(stored.get("writes", 0))
            + self.stats.writes
            - self._flushed.writes,
        )
