"""Content-addressed on-disk cache of simulated runs.

A cached run is addressed by the sha256 of everything that determines
its content: the full :class:`~repro.simulator.config.SystemConfig`
(every nested dataclass field), the workload name, the base seed, the
duration, the DVFS operating point and the number of warmup windows
dropped before storing.  Any change to any of these — a retuned power
constant, a different tick length — changes the key, so stale cache
entries can never be returned; the hand-rolled filename scheme this
replaces keyed only on ``(name, duration, seed, tick)`` and had to be
version-bumped by hand whenever the simulator changed behaviour.

Writes are atomic (write to a temp file in the cache directory, then
``os.replace``) so a crashed or killed process never leaves a torn
JSON behind, and concurrent sweep workers racing to store the same run
both succeed.  A best-effort ``index.json`` maps keys back to
human-readable run parameters for inspection.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

from repro.core.traces import MeasuredRun
from repro.simulator.config import SystemConfig

#: Bump when the on-disk run format (not the run content) changes.
_SCHEMA_VERSION = 1


def run_key(
    workload: str,
    seed: int,
    duration_s: float,
    config: SystemConfig,
    pstate: int = 0,
    warmup_windows: int = 0,
) -> str:
    """The content hash addressing one simulated run.

    The key is the sha256 hex digest of a canonical (sorted-keys,
    exact-float-repr) JSON document of every parameter that affects the
    run's content.  Two calls agree exactly when the runs they describe
    are bit-identical.
    """
    document = {
        "schema": _SCHEMA_VERSION,
        "workload": str(workload),
        "seed": int(seed),
        "duration_s": float(duration_s),
        "pstate": int(pstate),
        "warmup_windows": int(warmup_windows),
        "config": dataclasses.asdict(config),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.writes} write(s)"
        )


@dataclass
class RunCache:
    """Content-addressed store of :class:`MeasuredRun` JSON files.

    Args:
        root: cache directory; created lazily on first write.  ``None``
            disables the cache (every lookup misses, stores are no-ops)
            so callers need no conditional plumbing.
    """

    root: "str | None"
    stats: CacheStats = field(default_factory=CacheStats)

    @classmethod
    def from_env(cls, default: "str | None" = None) -> "RunCache":
        """A cache rooted at ``$REPRO_CACHE_DIR`` (or ``default``)."""
        return cls(os.environ.get("REPRO_CACHE_DIR", default))

    @property
    def enabled(self) -> bool:
        return bool(self.root)

    def path_for(self, key: str) -> "str | None":
        if not self.root:
            return None
        return os.path.join(self.root, f"run-{key}.json")

    def load(self, key: str) -> "MeasuredRun | None":
        """The cached run for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        if path is None or not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            run = MeasuredRun.load(path)
        except (OSError, ValueError, KeyError):
            # A torn or foreign file: treat as a miss; the subsequent
            # store will atomically replace it.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return run

    def store(self, key: str, run: MeasuredRun) -> "str | None":
        """Atomically persist ``run`` under ``key``; returns its path."""
        path = self.path_for(key)
        if path is None:
            return None
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=f".run-{key[:12]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(run.to_dict(), handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        self._index_add(key, run)
        return path

    # -- index (best effort, for humans) --------------------------------

    def _index_path(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, "index.json")

    def _index_add(self, key: str, run: MeasuredRun) -> None:
        """Record human-readable parameters for ``key``.

        Purely informational: lookups never consult the index, so a
        lost race between concurrent writers costs nothing but an index
        line.
        """
        try:
            index = self.index()
            index[key] = {
                "workload": run.workload,
                "n_samples": run.n_samples,
                "duration_s": run.duration_s,
                "base_seed": run.metadata.get("base_seed"),
            }
            fd, tmp_path = tempfile.mkstemp(
                prefix=".index-", suffix=".tmp", dir=self.root
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(index, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, self._index_path())
        except OSError:
            pass

    def index(self) -> dict:
        """The key -> run-parameters mapping (empty when absent)."""
        if not self.root:
            return {}
        try:
            with open(self._index_path(), encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return {}
