"""repro: complete-system power estimation from performance events.

A full reproduction of W. Lloyd Bircher and Lizy K. John, *"Complete
System Power Estimation: A Trickle-Down Approach Based on Performance
Events"* (ISPASS 2007): trickle-down power models for CPU, chipset,
memory, I/O and disk driven only by processor-visible performance
counters, plus the simulated 4-way SMP server, instrumentation and
workloads needed to train and validate them without the original
hardware.

Quickstart::

    from repro import (
        ModelTrainer, get_workload, simulate_workload, validate_suite,
    )

    runs = {
        name: simulate_workload(get_workload(name), duration_s=120.0)
        for name in ("idle", "gcc", "mcf", "DiskLoad")
    }
    suite = ModelTrainer().train(runs)
    print(suite.describe())
    report = validate_suite(suite, runs)
"""

from repro.core import (
    ConstantModel,
    CounterTrace,
    Event,
    MeasuredRun,
    ModelTrainer,
    PAPER_FEATURES,
    PAPER_RECIPE,
    PolynomialModel,
    PowerTrace,
    Subsystem,
    SystemPowerEstimator,
    TrainingRecipe,
    TrickleDownSuite,
    ValidationReport,
    average_error,
    validate_suite,
)
from repro.core.accounting import PowerAccountant, bill_processes
from repro.core.phases import PhaseDetector
from repro.core.selection import EventSelector
from repro.exec import RunCache, SweepSpec, sweep, sweep_specs
from repro.simulator import Server, SystemConfig, simulate_workload
from repro.simulator.config import fast_config
from repro.simulator.thermal import RcThermalModel, ThermalSensor
from repro.workloads import WorkloadSpec, get_workload, list_workloads
from repro.workloads.mixes import mix

__version__ = "1.0.0"

__all__ = [
    "ConstantModel",
    "EventSelector",
    "PhaseDetector",
    "PowerAccountant",
    "RcThermalModel",
    "ThermalSensor",
    "bill_processes",
    "mix",
    "CounterTrace",
    "Event",
    "MeasuredRun",
    "ModelTrainer",
    "PAPER_FEATURES",
    "PAPER_RECIPE",
    "PolynomialModel",
    "PowerTrace",
    "RunCache",
    "Server",
    "Subsystem",
    "SweepSpec",
    "sweep",
    "sweep_specs",
    "SystemConfig",
    "SystemPowerEstimator",
    "TrainingRecipe",
    "TrickleDownSuite",
    "ValidationReport",
    "WorkloadSpec",
    "average_error",
    "fast_config",
    "get_workload",
    "list_workloads",
    "simulate_workload",
    "validate_suite",
    "__version__",
]
