"""``repro.serve`` — the streaming estimation service.

The ROADMAP's "estimation-as-a-service" layer: a long-lived,
stdlib-only ingest service that turns the repo's batch trickle-down
pipeline into a live one.  Counter samples from many nodes stream in
as newline-JSON (HTTP POST ``/ingest`` or a raw socket line protocol),
sharded estimator workers fold them through batched
``TrickleDownSuite.evaluate`` passes, and per-node/fleet power,
attribution and drift state publish live over the existing
:mod:`repro.obs` HTTP plane — which also carries the service's own ops
surface: stage spans, backpressure gauges, staleness-aware
``/healthz`` and SLO burn-rate alerts.

Modules:

* :mod:`repro.serve.protocol` — the newline-JSON wire (single samples
  and columnar frames), with bit-exact float round-tripping;
* :mod:`repro.serve.queues`   — bounded shard queues that shed visibly
  under overload instead of OOMing;
* :mod:`repro.serve.staleness` — per-node liveness for ``/healthz``;
* :mod:`repro.serve.slo`      — error/freshness budgets with
  multiwindow burn-rate alerts firing the flight recorder;
* :mod:`repro.serve.service`  — :class:`EstimationService` itself;
* :mod:`repro.serve.transport` — the TCP line-protocol ingest.

Entry point: ``repro-power serve`` (see the CLI), load generator:
``scripts/load_ingest.py``.
"""

from repro.serve.protocol import (
    ProtocolError,
    SampleBatch,
    decode_line,
    decode_lines,
    encode_frame,
    encode_sample,
    frames_from_run,
    required_events,
)
from repro.serve.queues import BoundedQueue
from repro.serve.service import STAGE_BUCKETS, EstimationService, NodeState
from repro.serve.slo import DEFAULT_FAST_BURN_RATE, SLOEngine
from repro.serve.staleness import StalenessTracker
from repro.serve.transport import LineSocketServer

__all__ = [
    "BoundedQueue",
    "DEFAULT_FAST_BURN_RATE",
    "EstimationService",
    "LineSocketServer",
    "NodeState",
    "ProtocolError",
    "STAGE_BUCKETS",
    "SLOEngine",
    "SampleBatch",
    "StalenessTracker",
    "decode_line",
    "decode_lines",
    "encode_frame",
    "encode_sample",
    "frames_from_run",
    "required_events",
]
