"""The streaming estimation service: sharded, batched, observable.

:class:`EstimationService` inverts the repo's batch pipeline into a
long-lived ingest loop.  Counter samples arrive as newline-JSON
payloads (HTTP POST ``/ingest``, the socket line protocol, or replay),
are decoded into :class:`~repro.serve.protocol.SampleBatch` items,
routed to a shard by a stable hash of the node name (per-node order is
preserved — one node always lands on one shard), and evaluated by the
shard worker in coalesced batched
:meth:`~repro.core.suite.TrickleDownSuite.evaluate` passes.  Because
the compiled suite's design-matrix rows are independent, the streamed
estimates are **bit-identical** to the offline
:meth:`~repro.core.estimator.SystemPowerEstimator.estimate_trace` path
on the same samples, no matter how the stream is framed or coalesced
(proved in ``tests/test_serve.py``).

The ops plane rides :mod:`repro.obs` and is the headline feature:

* **stage spans** ``serve.ingest`` / ``serve.evaluate`` /
  ``serve.publish`` with per-stage latency histograms
  (``serve_stage_seconds{stage=decode|queue|evaluate|publish}``) and
  exemplar trace IDs flowing from the wire through every stage;
* **backpressure telemetry** — bounded shard queues
  (:class:`~repro.serve.queues.BoundedQueue`) with depth/high-water
  gauges and shed counters; overload sheds visibly instead of OOMing;
* **staleness** — :class:`~repro.serve.staleness.StalenessTracker`
  feeds ``/healthz`` (stale estimates are unhealthy estimates);
* **SLO burn** — :class:`~repro.serve.slo.SLOEngine` tracks error and
  freshness budgets and fires the flight recorder on fast burn.

Telemetry stays opt-in: with ``obs`` disabled and ``ops=False`` the
ingest path is the bare decode→evaluate→publish pipeline the
``ingest_samples_per_s`` benchmark measures; ``scripts/obs_overhead.py``
holds the full ops plane under 5 % on top of it.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
import zlib
from collections import deque
from contextlib import nullcontext

import numpy as np

from repro import obs
from repro.core.traces import CounterTrace
from repro.obs.drift import DEFAULT_SLO_PCT, DriftMonitor
from repro.serve.protocol import SampleBatch, decode_lines, required_events
from repro.serve.queues import BoundedQueue
from repro.serve.slo import SLOEngine
from repro.serve.staleness import StalenessTracker

logger = logging.getLogger(__name__)

__all__ = ["EstimationService", "NodeState", "STAGE_BUCKETS"]

#: Stage latencies are micro- to milli-second scale; the default
#: metric buckets (1 ms .. 60 s) are far too coarse for them.
STAGE_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,
    2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)

_STAGES = ("decode", "queue", "evaluate", "publish")


class NodeState:
    """Live estimate state of one ingesting node (guarded by the
    service's node lock; readers get copies via the document methods).
    """

    __slots__ = (
        "node", "shard", "n_samples", "last_t", "last_estimate",
        "last_total_w", "last_error_pct", "last_trace_id", "history",
        "estimates", "attribution", "drift",
    )

    def __init__(self, node: str, shard: int, history: int, keep_estimates: bool):
        self.node = node
        self.shard = shard
        self.n_samples = 0
        self.last_t = float("nan")
        self.last_estimate: "dict[str, float]" = {}
        self.last_total_w = float("nan")
        self.last_error_pct: "float | None" = None
        self.last_trace_id: "str | None" = None
        #: (timestamp, total watts) ring for the ``/nodes/<id>`` tail.
        self.history: "deque[tuple[float, float]]" = deque(maxlen=history)
        #: Full per-subsystem estimate ring (opt-in: the bit-identity
        #: tests need every streamed estimate, the service default
        #: keeps only totals to stay on budget).
        self.estimates: "deque[dict[str, float]] | None" = (
            deque(maxlen=history) if keep_estimates else None
        )
        self.attribution: "dict | None" = None
        self.drift: "DriftMonitor | None" = None


class _Shard:
    def __init__(self, index: int, depth: int) -> None:
        self.index = index
        self.queue = BoundedQueue(depth)
        self.thread: "threading.Thread | None" = None
        self.killed = False
        self.batches_total = 0
        self.samples_total = 0

    @property
    def alive(self) -> bool:
        return self.thread is not None and self.thread.is_alive()


class EstimationService:
    """Sharded streaming estimator with a first-class ops plane.

    Args:
        suite: fitted :class:`~repro.core.suite.TrickleDownSuite`.
        shards: estimator worker count (stable-hash node routing).
        queue_depth: per-shard queue bound, in batches.
        coalesce: max queued batches a worker folds into one evaluate.
        stale_after_s: node staleness horizon for ``/healthz``.
        drift_slo_pct: per-node drift bound (paper default 9 %).
        attribute: also publish per-term watt attribution per node.
        node_history: per-node estimate ring length.
        keep_estimates: retain full per-subsystem estimates per sample
            (tests); default keeps only ``(t, total)`` pairs.
        ops: master switch for the ops plane (staleness + SLO + stage
            telemetry).  ``ops=False`` with telemetry disabled is the
            bare pipeline the benchmark measures.
        span_sample: record stage spans (and exemplar trace IDs) for
            one in every N ingest payloads; stage *histograms* observe
            every batch regardless.  Spans cost tens of microseconds
            each, so tracing every 64-sample frame would blow the <5 %
            ops budget — sampling keeps exemplars flowing at ~2 % cost.
            1 traces everything (tests).
        slo: a pre-built :class:`~repro.serve.slo.SLOEngine` (optional).
        flight: :class:`~repro.obs.flight.FlightRecorder` for fast-burn
            bundles (optional; handed to a default-built SLO engine).
        clock: monotonic clock override for deterministic tests.
        housekeeping_interval_s: cadence of the liveness/SLO sweep
            thread started by :meth:`start`.
    """

    def __init__(
        self,
        suite,
        shards: int = 2,
        queue_depth: int = 256,
        coalesce: int = 32,
        stale_after_s: float = 10.0,
        drift_slo_pct: float = DEFAULT_SLO_PCT,
        attribute: bool = False,
        node_history: int = 240,
        keep_estimates: bool = False,
        ops: bool = True,
        span_sample: int = 16,
        slo: "SLOEngine | None" = None,
        flight=None,
        clock=None,
        housekeeping_interval_s: float = 0.5,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.suite = suite
        self.required_events = required_events(suite)
        self.attribute = bool(attribute)
        self.drift_slo_pct = float(drift_slo_pct)
        self.node_history = int(node_history)
        self.keep_estimates = bool(keep_estimates)
        self.ops = bool(ops)
        self.span_sample = max(1, int(span_sample))
        self.coalesce = max(1, int(coalesce))
        self.flight = flight
        self._clock = clock if clock is not None else time.monotonic
        self.staleness = StalenessTracker(stale_after_s, clock=self._clock)
        self.slo = slo if slo is not None else SLOEngine(
            error_bound_pct=drift_slo_pct, clock=self._clock, flight=flight
        )
        self.shards = tuple(_Shard(i, queue_depth) for i in range(shards))
        self.housekeeping_interval_s = float(housekeeping_interval_s)
        self._nodes: "dict[str, NodeState]" = {}
        self._nodes_lock = threading.Lock()
        self._stop = threading.Event()
        self._housekeeper: "threading.Thread | None" = None
        self._started_monotonic: "float | None" = None
        self._ingest_seq = itertools.count()
        self._stage_exemplar: "dict[str, str]" = {}
        # Lifetime tallies kept outside the obs registry so the ingest
        # response and /service stay accurate with telemetry disabled.
        # '+=' is not atomic and these run on HTTP handler, socket
        # handler and shard worker threads alike, so they share a lock.
        self._tally_lock = threading.Lock()
        self.samples_total = 0
        self.shed_samples_total = 0
        self.decode_errors_total = 0
        self.poison_samples_total = 0
        self.store = None
        self._store_windows = None

    def attach_store(self, db, window_s: float = 5.0) -> None:
        """Persist this service's telemetry into a TSDB.

        Every housekeeping :meth:`tick` folds the process registry into
        a :class:`~repro.obs.live.WindowedRegistry` whose evicted
        windows land in ``db`` (one sample per metric at the window's
        start); :meth:`stop` drains the remainder and flushes the
        store, so short runs persist too.
        """
        from repro.obs.live import WindowedRegistry
        from repro.obs.tsdb import WindowSink

        self.store = db
        self._store_windows = WindowedRegistry(
            window_s=window_s, on_evict=WindowSink(db)
        )

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._started_monotonic is not None

    def start(self) -> None:
        """Spawn shard workers and the housekeeping sweep (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._started_monotonic = self._clock()
        for shard in self.shards:
            shard.thread = threading.Thread(
                target=self._worker,
                args=(shard,),
                name=f"repro-serve-shard-{shard.index}",
                daemon=True,
            )
            shard.thread.start()
        self._housekeeper = threading.Thread(
            target=self._housekeeping,
            name="repro-serve-housekeeping",
            daemon=True,
        )
        self._housekeeper.start()

    def stop(self) -> None:
        """Stop workers and housekeeping; drains nothing (idempotent)."""
        self._stop.set()
        for shard in self.shards:
            shard.queue.close()
        for shard in self.shards:
            if shard.thread is not None:
                shard.thread.join(timeout=5.0)
                shard.thread = None
        if self._housekeeper is not None:
            self._housekeeper.join(timeout=5.0)
            self._housekeeper = None
        self._started_monotonic = None
        if self._store_windows is not None:
            self._store_windows.drain()
            self.store.flush()

    def __enter__(self) -> "EstimationService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def kill_shard(self, index: int) -> dict:
        """Chaos hook: stop one shard worker, leave the service up.

        Its queue closes (new batches for its nodes shed), its nodes go
        stale, the freshness SLO starts burning — exactly the
        degraded-but-serving path the ingest-smoke CI job asserts.
        There is no restart, so the HTTP exposure of this hook is a
        ``POST`` gated behind ``ObservabilityServer(chaos=True)``.
        """
        shard = self.shards[index]
        shard.killed = True
        shard.queue.close()
        if shard.thread is not None:
            shard.thread.join(timeout=5.0)
        obs.event("serve.shard_killed", shard=index)
        return {"shard": index, "killed": True, "alive": shard.alive}

    # -- ingest --------------------------------------------------------

    def shard_for(self, node: str) -> int:
        """Stable node→shard routing (crc32, process-independent)."""
        return zlib.crc32(node.encode("utf-8")) % len(self.shards)

    def ingest(self, data: str, transport: str = "http") -> dict:
        """Decode a newline-JSON body and enqueue to shard workers.

        Returns the backpressure-visible receipt:
        ``{"accepted": n, "shed": n, "errors": [...]}`` (sample
        counts).  Shed batches were rejected by a full or killed shard
        queue — the client is expected to slow down.
        """
        trace_id = self._next_trace_id()
        with self._span("serve.ingest", trace_id, transport=transport):
            t0 = time.monotonic()
            batches, errors = decode_lines(data, self.required_events)
            self._observe_stage("decode", time.monotonic() - t0, trace_id)
            accepted = shed = 0
            now = time.monotonic()
            for batch in batches:
                if batch.trace_id is None:
                    batch.trace_id = trace_id
                batch.enqueued_monotonic = now
                shard = self.shards[self.shard_for(batch.node)]
                if shard.queue.put(batch):
                    accepted += batch.n_samples
                else:
                    shed += batch.n_samples
                    obs.inc(
                        "serve_shed_samples_total",
                        batch.n_samples,
                        {"shard": str(shard.index)},
                    )
        with self._tally_lock:
            self.shed_samples_total += shed
            self.decode_errors_total += len(errors)
        if errors:
            obs.inc("serve_decode_errors_total", len(errors))
        obs.inc("serve_ingest_bytes_total", len(data), {"transport": transport})
        if accepted:
            obs.inc(
                "serve_samples_total", accepted, {"transport": transport}
            )
        return {"accepted": accepted, "shed": shed, "errors": errors}

    def ingest_inline(self, data: str, transport: str = "inline") -> dict:
        """Decode **and evaluate synchronously** (no queues, no threads).

        The benchmark and the bit-identity tests use this path; it runs
        the exact same processing code the shard workers run, minus the
        queue hop.
        """
        trace_id = self._next_trace_id()
        t0 = time.monotonic()
        batches, errors = decode_lines(data, self.required_events)
        self._observe_stage("decode", time.monotonic() - t0, trace_id)
        accepted = 0
        for batch in batches:
            if batch.trace_id is None:
                batch.trace_id = trace_id
            accepted += batch.n_samples
        if batches:
            self._process(None, batches)
        with self._tally_lock:
            self.decode_errors_total += len(errors)
        if accepted:
            obs.inc(
                "serve_samples_total", accepted, {"transport": transport}
            )
        return {"accepted": accepted, "shed": 0, "errors": errors}

    def _next_trace_id(self) -> "str | None":
        """A trace id for this payload, or ``None`` when unsampled."""
        if not (self.ops and obs.enabled()):
            return None
        # itertools.count is atomic under the GIL, so concurrent ingest
        # threads can never mint duplicate trace ids.
        seq = next(self._ingest_seq)
        if seq % self.span_sample:
            return None
        return f"ingest-{seq + 1}"

    # -- workers -------------------------------------------------------

    def _worker(self, shard: _Shard) -> None:
        while not (self._stop.is_set() or shard.killed):
            item = shard.queue.get(timeout=0.2)
            if item is None:
                continue
            items = [item] + shard.queue.drain(self.coalesce - 1)
            if self.ops and obs.enabled():
                now = time.monotonic()
                for batch in items:
                    self._observe_stage(
                        "queue", now - batch.enqueued_monotonic, batch.trace_id
                    )
            # The worker thread must outlive any poison batch: protocol
            # validation should make this unreachable, but an estimator
            # bug (or a future wire shape) killing the shard would
            # silently strand every node routed to it.
            try:
                self._process(shard, items)
            except Exception:
                dropped = sum(batch.n_samples for batch in items)
                logger.exception(
                    "shard %d dropped a poison batch group "
                    "(%d batches, %d samples)",
                    shard.index, len(items), dropped,
                )
                with self._tally_lock:
                    self.poison_samples_total += dropped
                obs.inc(
                    "serve_poison_samples_total",
                    dropped,
                    {"shard": str(shard.index)},
                )

    def _housekeeping(self) -> None:
        while not self._stop.wait(self.housekeeping_interval_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover - defensive
                logger.exception("serve housekeeping tick failed")

    def tick(self, now: "float | None" = None) -> dict:
        """One liveness/SLO sweep (housekeeping cadence; callable
        directly from tests with an injected clock)."""
        if not self.ops:
            return {}
        moment = self._clock() if now is None else now
        fresh, stale = self.staleness.sweep(moment)
        self.slo.record_freshness(len(fresh), len(stale), moment)
        state = self.slo.check(moment)
        obs.gauge("serve_nodes_fresh", len(fresh))
        obs.gauge("serve_nodes_stale", len(stale))
        for shard in self.shards:
            stats = shard.queue.stats()
            labels = {"shard": str(shard.index)}
            obs.gauge("serve_queue_depth", stats["depth"], labels)
            obs.gauge("serve_queue_high_water", stats["high_water"], labels)
        totals = [
            state_.last_total_w
            for state_ in self._node_states()
            if state_.node not in stale and state_.last_total_w == state_.last_total_w
        ]
        if totals:
            arr = np.asarray(totals)
            for agg, value in (
                ("sum", arr.sum()), ("mean", arr.mean()),
                ("min", arr.min()), ("max", arr.max()),
            ):
                obs.gauge("serve_fleet_power_watts", float(value), {"agg": agg})
        if self._store_windows is not None:
            self._store_windows.ingest(moment, obs.registry())
            # Closed windows persist eagerly (the sink is idempotent);
            # eviction and the stop() drain then skip them.
            self._store_windows.sink_closed(moment)
        return state

    # -- the shared processing pipeline --------------------------------

    def _process(self, shard: "_Shard | None", batches: "list[SampleBatch]") -> None:
        """Evaluate queued batches and publish per-node state.

        Consecutive batches with the same event signature coalesce into
        a single design-matrix pass; row independence of the compiled
        suite keeps the per-sample results bit-identical to evaluating
        each sample alone (or the whole trace at once).
        """
        group: "list[SampleBatch]" = []
        signature = None
        for batch in batches:
            key = (
                frozenset(batch.counts),
                batch.counts[next(iter(batch.counts))].shape[1],
            )
            if signature is not None and key != signature:
                self._evaluate_group(shard, group)
                group = []
            signature = key
            group.append(batch)
        if group:
            self._evaluate_group(shard, group)

    def _evaluate_group(self, shard, group: "list[SampleBatch]") -> None:
        trace_id = group[0].trace_id
        t0 = time.monotonic()
        with self._span(
            "serve.evaluate",
            trace_id,
            batches=len(group),
            shard=None if shard is None else shard.index,
        ):
            if len(group) == 1:
                only = group[0]
                timestamps = only.timestamps
                durations = only.durations
                counts = dict(only.counts)
            else:
                timestamps = [t for b in group for t in b.timestamps]
                durations = [d for b in group for d in b.durations]
                counts = {
                    e: np.concatenate([b.counts[e] for b in group])
                    for e in group[0].counts
                }
            trace = CounterTrace(
                timestamps=np.asarray(timestamps, dtype=float),
                durations=np.asarray(durations, dtype=float),
                counts=counts,
            )
            predictions, terms = self.suite.evaluate(trace, attribute=self.attribute)
        self._observe_stage("evaluate", time.monotonic() - t0, trace_id)

        t0 = time.monotonic()
        with self._span("serve.publish", trace_id):
            self._publish(shard, group, predictions, terms)
        self._observe_stage("publish", time.monotonic() - t0, trace_id)

    def _publish(self, shard, group, predictions, terms) -> None:
        subsystems = list(predictions)
        totals_arr = None
        for arr in predictions.values():
            totals_arr = arr if totals_arr is None else totals_arr + arr
        totals = totals_arr.tolist()
        n_total = len(totals)
        # Full per-sample columns are only needed for truth scoring and
        # the keep-estimates ring; the hot path indexes the last row of
        # the numpy arrays directly.
        columns = (
            {s: arr.tolist() for s, arr in predictions.items()}
            if self.keep_estimates
            or any(batch.true_w is not None for batch in group)
            else None
        )
        error_good = error_bad = 0
        row = 0
        now = self.staleness.now() if self.ops else 0.0
        for batch in group:
            n = batch.n_samples
            lo, hi = row, row + n
            row = hi
            with self._nodes_lock:
                state = self._nodes.get(batch.node)
                if state is None:
                    state = NodeState(
                        batch.node,
                        self.shard_for(batch.node),
                        self.node_history,
                        self.keep_estimates,
                    )
                    self._nodes[batch.node] = state
                state.n_samples += n
                state.last_t = batch.timestamps[-1]
                state.last_trace_id = batch.trace_id
                state.history.extend(zip(batch.timestamps, totals[lo:hi]))
                if state.estimates is not None:
                    for i in range(lo, hi):
                        state.estimates.append(
                            {s.value: columns[s][i] for s in subsystems}
                        )
                last = hi - 1
                state.last_estimate = {
                    s.value: float(predictions[s][last]) for s in subsystems
                }
                state.last_total_w = totals[last]
                if terms is not None:
                    state.attribution = {
                        s.value: {
                            term: float(arr[last])
                            for term, arr in terms[s].items()
                        }
                        for s in terms
                    }
                if batch.true_w is not None:
                    good, bad = self._score_truth(
                        state, batch, columns, subsystems, totals, lo
                    )
                    error_good += good
                    error_bad += bad
            if self.ops:
                self.staleness.touch(batch.node, now)
            if shard is not None:
                shard.batches_total += 1
                shard.samples_total += n
        with self._tally_lock:
            self.samples_total += n_total
        obs.inc("serve_published_total", n_total)
        if self.ops and (error_good or error_bad):
            self.slo.record_error_batch(error_good, error_bad)
        if group and group[-1].trace_id is not None:
            for stage in ("evaluate", "publish"):
                self._stage_exemplar[stage] = group[-1].trace_id

    def _score_truth(
        self, state, batch, columns, subsystems, totals, lo
    ) -> "tuple[int, int]":
        """Per-sample drift scoring against shipped truth watts."""
        if state.drift is None:
            state.drift = DriftMonitor(slo_pct=self.drift_slo_pct)
        truth = batch.true_w
        good = bad = 0
        bound = self.slo.error_bound_pct
        for i in range(batch.n_samples):
            estimated = {s.value: columns[s][lo + i] for s in subsystems}
            actual = {name: series[i] for name, series in truth.items()}
            state.drift.observe(batch.timestamps[i], estimated, actual)
            true_total = sum(actual.values())
            if true_total > 0:
                err = abs(totals[lo + i] - true_total) / true_total * 100.0
                state.last_error_pct = err
                if err <= bound:
                    good += 1
                else:
                    bad += 1
        return good, bad

    @staticmethod
    def _span(name: str, trace_id: "str | None", **attrs):
        """A tracing span on sampled payloads, else a free no-op."""
        if trace_id is None:
            return nullcontext()
        return obs.span(name, trace=trace_id, **attrs)

    def _observe_stage(self, stage: str, seconds: float, trace_id) -> None:
        if not (self.ops and obs.enabled()):
            return
        obs.observe(
            "serve_stage_seconds", seconds, {"stage": stage}, STAGE_BUCKETS
        )
        if trace_id is not None:
            self._stage_exemplar[stage] = trace_id

    # -- published documents -------------------------------------------

    def _node_states(self) -> "list[NodeState]":
        with self._nodes_lock:
            return list(self._nodes.values())

    @property
    def uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return self._clock() - self._started_monotonic

    def dead_shards(self) -> "list[int]":
        return [
            shard.index
            for shard in self.shards
            if shard.killed or (self.running and not shard.alive)
        ]

    def health(self) -> dict:
        """Liveness verdict merged into ``/healthz``.

        ``stale`` nodes or a fast-burning SLO make the service
        unhealthy (503 — estimates must not steer anything); dead
        shards alone are *degraded but serving* (200).
        """
        fresh, stale = self.staleness.sweep()
        burning = list(self.slo.fast_burning)
        drifting = sorted(
            state.node
            for state in self._node_states()
            if state.drift is not None and state.drift.firing
        )
        dead = self.dead_shards()
        healthy = not stale and not burning and not drifting
        status = "ok"
        if dead:
            status = "degraded"
        if stale or burning or drifting:
            status = "stale" if stale else "burning" if burning else "drifting"
        return {
            "status": status,
            "healthy": healthy,
            "nodes_fresh": len(fresh),
            "nodes_stale": len(stale),
            "stale_nodes": stale,
            "dead_shards": dead,
            "slo_fast_burn": burning,
            "drifting_nodes": drifting,
        }

    def nodes_document(self) -> dict:
        """The ``/nodes`` payload: per-node summary + fleet aggregate."""
        _, stale = self.staleness.sweep()
        stale_set = set(stale)
        nodes = []
        totals = []
        for state in sorted(self._node_states(), key=lambda s: s.node):
            age = self.staleness.age_s(state.node)
            is_stale = state.node in stale_set
            entry = {
                "node": state.node,
                "shard": state.shard,
                "n_samples": state.n_samples,
                "last_t": state.last_t,
                "age_s": None if age is None else round(age, 3),
                "stale": is_stale,
                "total_w": state.last_total_w,
                "error_pct": state.last_error_pct,
                "drift_firing": (
                    list(state.drift.firing) if state.drift is not None else []
                ),
            }
            nodes.append(entry)
            if not is_stale and state.last_total_w == state.last_total_w:
                totals.append(state.last_total_w)
        fleet = {
            "count": len(nodes),
            "fresh": len(nodes) - len(stale_set),
            "stale": len(stale_set),
        }
        if totals:
            arr = np.asarray(totals)
            fleet["power_w"] = {
                "sum": float(arr.sum()),
                "mean": float(arr.mean()),
                "min": float(arr.min()),
                "max": float(arr.max()),
            }
        return {"nodes": nodes, "fleet": fleet}

    def node_document(self, node: str) -> "dict | None":
        """The ``/nodes/<id>`` drill-down, or ``None`` when unknown."""
        with self._nodes_lock:
            state = self._nodes.get(node)
            if state is None:
                return None
            history = list(state.history)
            estimate = dict(state.last_estimate)
            attribution = state.attribution
            drift = state.drift
        age = self.staleness.age_s(node)
        return {
            "node": node,
            "shard": state.shard,
            "n_samples": state.n_samples,
            "last_t": state.last_t,
            "age_s": None if age is None else round(age, 3),
            "stale": self.staleness.is_stale(node),
            "estimate_w": estimate,
            "total_w": state.last_total_w,
            "error_pct": state.last_error_pct,
            "trace": state.last_trace_id,
            "attribution": attribution,
            "drift": drift.to_json() if drift is not None else None,
            "history": [[round(t, 6), w] for t, w in history],
        }

    def service_document(self) -> dict:
        """The ``/service`` payload: shards, stages, counters, SLOs."""
        shards = []
        for shard in self.shards:
            stats = shard.queue.stats()
            shards.append({
                "shard": shard.index,
                "alive": shard.alive,
                "killed": shard.killed,
                "batches": shard.batches_total,
                "samples": shard.samples_total,
                **stats,
            })
        return {
            "running": self.running,
            "uptime_s": round(self.uptime_s, 3),
            "shards": shards,
            "stages": self.stage_document(),
            "counters": {
                "samples_total": self.samples_total,
                "shed_samples_total": self.shed_samples_total,
                "decode_errors_total": self.decode_errors_total,
                "poison_samples_total": self.poison_samples_total,
            },
            "required_events": sorted(e.value for e in self.required_events),
            "slo": self.slo.check(),
            "staleness": self.staleness.to_json(),
            "health": self.health(),
        }

    def stage_document(self) -> dict:
        """Per-stage latency quantiles + exemplar trace IDs.

        Reads the ``serve_stage_seconds`` histograms straight from the
        obs registry; empty when telemetry is off.
        """
        from repro.obs.metrics import metric_key

        registry = obs.registry()
        stages = {}
        for stage in _STAGES:
            histogram = registry.histograms.get(
                metric_key("serve_stage_seconds", {"stage": stage})
            )
            if histogram is None or histogram.count == 0:
                continue
            stages[stage] = {
                "count": histogram.count,
                "p50_us": round(histogram.quantile(0.5) * 1e6, 1),
                "p95_us": round(histogram.quantile(0.95) * 1e6, 1),
                "p99_us": round(histogram.quantile(0.99) * 1e6, 1),
                "exemplar_trace": self._stage_exemplar.get(stage),
            }
        return stages
