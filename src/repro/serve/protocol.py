"""Wire protocol of the streaming estimation service.

Samples travel as **newline-delimited JSON**, one payload per line, in
two interchangeable shapes:

*Single sample* — one counter window from one node::

    {"node": "n3", "t": 12.0, "dur": 1.0,
     "counts": {"cycles": [1.2e9, 1.1e9, ...per-cpu...], ...},
     "true_w": {"cpu": 41.2, ...},          # optional, enables drift scoring
     "trace": "req-8f2"}                     # optional trace id

*Columnar frame* — a batch of consecutive windows from one node, with
``t``/``dur`` as arrays and each event as an ``(n_samples, n_cpus)``
nested list::

    {"node": "n3", "t": [12.0, 13.0], "dur": [1.0, 1.0],
     "counts": {"cycles": [[...], [...]], ...},
     "true_w": {"cpu": [41.2, 40.8], ...}}

Frames are the fast path: one ``json.loads`` amortises over the whole
batch, which is how the ``ingest_samples_per_s`` benchmark clears the
ROADMAP's 100k samples/s target.  Counter values are floats and the
encoder emits them with ``repr`` round-trip fidelity, so a decoded
frame reconstructs the original arrays **bit-identically** — the
foundation of the streamed-equals-batch guarantee in
``tests/test_serve.py``.

Both shapes normalise into :class:`SampleBatch`; decode is strict about
structure **and element types** (missing keys, ragged arrays, unknown
shapes, and non-numeric or non-finite values raise
:class:`ProtocolError` — nothing that passes decode can blow up inside
``evaluate``) but lenient about extra events — nodes may ship their
full counter set and the service keeps only what the suite's features
consume.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.events import Event

__all__ = [
    "ProtocolError",
    "SampleBatch",
    "decode_line",
    "decode_lines",
    "encode_frame",
    "encode_sample",
    "frames_from_run",
    "required_events",
]


class ProtocolError(ValueError):
    """A payload line that does not parse into a :class:`SampleBatch`."""


@dataclass
class SampleBatch:
    """One decoded payload: ``n`` consecutive windows from one node.

    ``counts`` values are ``(n, n_cpus)`` float arrays — decode pays
    the one ``np.asarray`` per event (which doubles as the numeric
    validation) so the shard workers can concatenate queued batches
    straight into an evaluate pass.
    """

    node: str
    timestamps: "list[float]"
    durations: "list[float]"
    counts: "dict[Event, np.ndarray]"
    true_w: "dict[str, list[float]] | None" = None
    trace_id: "str | None" = None
    #: Stamped by the service at enqueue time (monotonic seconds) so the
    #: shard worker can histogram queue wait.
    enqueued_monotonic: float = field(default=0.0, compare=False)

    @property
    def n_samples(self) -> int:
        return len(self.timestamps)


def required_events(suite) -> "frozenset[Event]":
    """Events the suite's features actually consume.

    The lean wire set: replayed nodes need only ship these (7 of the 24
    simulated events for the paper recipe), which roughly halves both
    payload bytes and decode time versus the full counter set.
    """
    events: "set[Event]" = set()
    for model in suite.models.values():
        for feature in getattr(model, "features", ()) or ():
            events.update(getattr(feature, "events", ()) or ())
    return frozenset(events)


def _as_float_list(value, *, what: str) -> "list[float]":
    if not isinstance(value, list) or not value:
        raise ProtocolError(f"{what} must be a non-empty array")
    # sum() is a C-speed sweep: a str/None/list element raises
    # TypeError, and any NaN/Infinity poisons the total.
    try:
        total = sum(value, 0.0)
    except TypeError:
        raise ProtocolError(f"{what} must contain only finite numbers") from None
    if not math.isfinite(total):
        raise ProtocolError(f"{what} must contain only finite numbers")
    return value


def decode_line(
    line: str,
    keep_events: "frozenset[Event] | None" = None,
) -> SampleBatch:
    """Decode one newline-JSON payload (single sample or frame).

    Args:
        line: one JSON document (no trailing newline required).
        keep_events: when given, only these events are retained and a
            payload missing any of them is rejected — the service
            passes its suite's :func:`required_events` so malformed
            input fails at the door instead of inside ``evaluate``.
    """
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"payload is not valid JSON: {exc}") from None
    if not isinstance(raw, dict):
        raise ProtocolError("payload must be a JSON object")
    try:
        node = raw["node"]
        t = raw["t"]
        dur = raw["dur"]
        counts_raw = raw["counts"]
    except KeyError as exc:
        raise ProtocolError(f"payload missing key {exc.args[0]!r}") from None
    if not isinstance(node, str) or not node:
        raise ProtocolError("node must be a non-empty string")
    if not isinstance(counts_raw, dict) or not counts_raw:
        raise ProtocolError("counts must be a non-empty object")

    columnar = isinstance(t, list)
    if columnar:
        timestamps = _as_float_list(t, what="t")
        durations = _as_float_list(dur, what="dur")
        if len(durations) != len(timestamps):
            raise ProtocolError("t and dur must have the same length")
    else:
        for what, value in (("t", t), ("dur", dur)):
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ProtocolError(f"{what} must be a finite number")
        timestamps = [t]
        durations = [dur]
    n = len(timestamps)

    counts: "dict[Event, np.ndarray]" = {}
    n_cpus = -1
    for name, rows in counts_raw.items():
        try:
            event = Event(name)
        except ValueError:
            continue  # unknown event: tolerated, dropped
        if keep_events is not None and event not in keep_events:
            continue
        if not columnar:
            rows = [rows]
        if not isinstance(rows, list) or len(rows) != n:
            raise ProtocolError(
                f"counts[{name!r}] must have {n} rows to match t"
            )
        # One asarray per event both converts for evaluate *and*
        # validates: ragged rows and non-numeric elements raise here,
        # never inside a shard worker.
        try:
            array = np.asarray(rows, dtype=float)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"counts[{name!r}] rows must be equal-width arrays of numbers"
            ) from None
        if array.ndim != 2 or array.shape[1] < 1:
            raise ProtocolError(
                f"counts[{name!r}] rows must be equal-width arrays of numbers"
            )
        if not np.isfinite(array).all():
            raise ProtocolError(f"counts[{name!r}] values must be finite numbers")
        width = array.shape[1]
        if n_cpus < 0:
            n_cpus = width
        elif width != n_cpus:
            raise ProtocolError("all events must report the same cpu count")
        counts[event] = array
    if keep_events is not None:
        missing = keep_events - counts.keys()
        if missing:
            raise ProtocolError(
                "payload missing required events: "
                + ", ".join(sorted(e.value for e in missing))
            )
    if not counts:
        raise ProtocolError("payload carried no known events")

    true_w = raw.get("true_w")
    if true_w is not None:
        if not isinstance(true_w, dict):
            raise ProtocolError("true_w must be an object")
        if not columnar:
            true_w = {k: [v] for k, v in true_w.items()}
        for key, series in true_w.items():
            if not isinstance(series, list) or len(series) != n:
                raise ProtocolError(
                    f"true_w[{key!r}] must have {n} entries to match t"
                )
            _as_float_list(series, what=f"true_w[{key!r}]")

    trace_id = raw.get("trace")
    return SampleBatch(
        node=node,
        timestamps=timestamps,
        durations=durations,
        counts=counts,
        true_w=true_w,
        trace_id=trace_id if isinstance(trace_id, str) else None,
    )


def decode_lines(
    data: str,
    keep_events: "frozenset[Event] | None" = None,
) -> "tuple[list[SampleBatch], list[str]]":
    """Decode a newline-JSON body; returns ``(batches, errors)``.

    Blank lines are skipped; each bad line contributes one error string
    and does not poison the rest of the body (per-line isolation is the
    shedding policy's decode-stage analogue).
    """
    batches: "list[SampleBatch]" = []
    errors: "list[str]" = []
    for line in data.splitlines():
        if not line.strip():
            continue
        try:
            batches.append(decode_line(line, keep_events))
        except ProtocolError as exc:
            errors.append(str(exc))
    return batches, errors


# -- encoding (replay / load generation) --------------------------------


def encode_sample(
    node: str,
    timestamp: float,
    duration: float,
    counts: "dict[Event, list[float]]",
    true_w: "dict[str, float] | None" = None,
    trace_id: "str | None" = None,
) -> str:
    """One single-sample payload line (no trailing newline)."""
    doc: dict = {
        "node": node,
        "t": timestamp,
        "dur": duration,
        "counts": {e.value: row for e, row in counts.items()},
    }
    if true_w is not None:
        doc["true_w"] = true_w
    if trace_id is not None:
        doc["trace"] = trace_id
    return json.dumps(doc, separators=(",", ":"))


def encode_frame(
    node: str,
    timestamps: "list[float]",
    durations: "list[float]",
    counts: "dict[Event, list[list[float]]]",
    true_w: "dict[str, list[float]] | None" = None,
    trace_id: "str | None" = None,
) -> str:
    """One columnar frame payload line (no trailing newline)."""
    doc: dict = {
        "node": node,
        "t": timestamps,
        "dur": durations,
        "counts": {e.value: rows for e, rows in counts.items()},
    }
    if true_w is not None:
        doc["true_w"] = true_w
    if trace_id is not None:
        doc["trace"] = trace_id
    return json.dumps(doc, separators=(",", ":"))


def frames_from_run(
    run,
    node: str,
    frame_samples: int = 64,
    events: "frozenset[Event] | None" = None,
    include_truth: bool = True,
) -> "list[str]":
    """Encode a :class:`~repro.core.traces.MeasuredRun` as frame lines.

    The replay path of ``repro-power serve`` and the load generator both
    use this: a simulated run becomes the stream a real node would emit.
    ``events`` restricts the wire to the lean set (see
    :func:`required_events`); truth watts ride along so the service can
    score drift exactly as the batch pipeline would.
    """
    trace = run.counters
    chosen = [e for e in trace.counts if events is None or e in events]
    timestamps = trace.timestamps.tolist()
    durations = trace.durations.tolist()
    columns = {e: trace.counts[e].tolist() for e in chosen}
    truth = (
        {s.value: v.tolist() for s, v in run.power.watts.items()}
        if include_truth and getattr(run, "power", None) is not None
        else None
    )
    lines = []
    for start in range(0, len(timestamps), max(1, frame_samples)):
        stop = start + max(1, frame_samples)
        lines.append(
            encode_frame(
                node,
                timestamps[start:stop],
                durations[start:stop],
                {e: rows[start:stop] for e, rows in columns.items()},
                true_w=(
                    {k: v[start:stop] for k, v in truth.items()}
                    if truth is not None
                    else None
                ),
            )
        )
    return lines
