"""Bounded shard queues with backpressure telemetry.

Each estimator shard owns one :class:`BoundedQueue` of decoded
:class:`~repro.serve.protocol.SampleBatch` items.  The queue is the
backpressure boundary: when a shard falls behind, ``put`` **rejects**
new batches instead of growing without bound — the service counts the
shed samples and the client sees them in the ingest response, so load
degrades visibly and gracefully rather than OOMing the process.

Depth is bounded in *batches*; with frames of ~64 samples the default
depth of 256 batches caps a shard's backlog near 16k samples, a few
hundred milliseconds of work at the benchmark's single-process rate.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["BoundedQueue"]


class BoundedQueue:
    """A lock-guarded FIFO that sheds on overflow and tracks high water.

    Unlike ``queue.Queue(maxsize=...)`` this never blocks producers —
    ``put`` returns ``False`` when full (the caller counts a shed) —
    and it exposes ``depth``/``high_water`` for the gauge plane plus
    ``drain`` so a worker can coalesce everything pending into one
    batched evaluate pass.
    """

    def __init__(self, depth: int = 256) -> None:
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth_limit = int(depth)
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self.high_water = 0
        self.shed_total = 0
        self.put_total = 0
        self._closed = False

    def put(self, item) -> bool:
        """Enqueue; ``False`` (and a shed count) when full or closed."""
        with self._lock:
            if self._closed or len(self._items) >= self.depth_limit:
                self.shed_total += 1
                return False
            self._items.append(item)
            self.put_total += 1
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)
            self._not_empty.notify()
            return True

    def get(self, timeout: "float | None" = 0.1):
        """Dequeue one item, or ``None`` on timeout / close."""
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def drain(self, limit: int) -> list:
        """Pop up to ``limit`` items without waiting (may be empty)."""
        with self._lock:
            out = []
            while self._items and len(out) < limit:
                out.append(self._items.popleft())
            return out

    def close(self) -> None:
        """Reject further puts and wake any waiting consumer."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._items),
                "depth_limit": self.depth_limit,
                "high_water": self.high_water,
                "put_total": self.put_total,
                "shed_total": self.shed_total,
            }
