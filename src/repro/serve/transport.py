"""Socket line-protocol transport for the streaming service.

A minimal TCP ingest path beside HTTP POST: clients connect, write
newline-JSON payload lines (the same wire shapes
:mod:`repro.serve.protocol` defines), and optionally read back one
receipt line per payload by sending the handshake line ``?ack`` first.
Fire-and-forget by default — the cheapest possible producer loop — with
backpressure still visible through the shard queues' shed counters and
the ``/service`` document.

Lines are read with a hard byte bound (``max_line_bytes``, default
1 MiB): an oversize line is drained and rejected with an error receipt
instead of being buffered wholly into memory, and a failure inside
ingest is logged and answered with an error receipt instead of killing
the connection's handler thread.
"""

from __future__ import annotations

import logging
import socketserver
import threading

__all__ = ["LineSocketServer"]

import json

logger = logging.getLogger(__name__)

#: Default per-line byte bound; a 64-sample frame over the lean wire
#: set is ~100 KiB, so 1 MiB leaves generous headroom.
DEFAULT_MAX_LINE_BYTES = 1 << 20


class LineSocketServer:
    """Threaded TCP server feeding :class:`EstimationService.ingest`."""

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.max_line_bytes = int(max_line_bytes)
        if self.max_line_bytes < 1:
            raise ValueError("max_line_bytes must be >= 1")
        self._server: "socketserver.ThreadingTCPServer | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._server is not None:
            return self.port
        service = self.service
        limit = self.max_line_bytes

        class Handler(socketserver.StreamRequestHandler):
            def _reply(self, receipt: dict) -> None:
                self.wfile.write(
                    (json.dumps(receipt, separators=(",", ":")) + "\n")
                    .encode("utf-8")
                )

            def handle(self) -> None:
                ack = False
                while True:
                    # readline with a cap never buffers more than one
                    # bounded chunk; a chunk that fills the cap without
                    # a newline is an oversize line.
                    raw = self.rfile.readline(limit + 1)
                    if not raw:
                        break
                    if len(raw) > limit and not raw.endswith(b"\n"):
                        # Drain the rest of the oversize line so the
                        # next read starts on a fresh line.
                        while True:
                            more = self.rfile.readline(limit + 1)
                            if not more or more.endswith(b"\n"):
                                break
                        logger.warning(
                            "socket ingest rejected a line over %d bytes", limit
                        )
                        if ack:
                            self._reply({
                                "accepted": 0,
                                "shed": 0,
                                "errors": [f"line exceeds {limit} bytes"],
                            })
                        continue
                    line = raw.decode("utf-8", errors="replace").strip()
                    if not line:
                        continue
                    if line == "?ack":
                        ack = True
                        continue
                    try:
                        receipt = service.ingest(line, transport="socket")
                    except Exception:
                        # One bad line must not kill the connection.
                        logger.exception("socket ingest line failed")
                        receipt = {
                            "accepted": 0,
                            "shed": 0,
                            "errors": ["internal error"],
                        }
                    if ack:
                        self._reply(receipt)

        server = socketserver.ThreadingTCPServer(
            (self.host, self.port), Handler, bind_and_activate=False
        )
        server.daemon_threads = True
        server.allow_reuse_address = True
        try:
            server.server_bind()
            server.server_activate()
        except OSError:
            server.server_close()
            raise
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-socket",
            daemon=True,
        )
        self._thread.start()
        logger.info("serve socket ingest listening on %s:%d", self.host, self.port)
        return self.port

    def stop(self) -> None:
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._server is not None
