"""Socket line-protocol transport for the streaming service.

A minimal TCP ingest path beside HTTP POST: clients connect, write
newline-JSON payload lines (the same wire shapes
:mod:`repro.serve.protocol` defines), and optionally read back one
receipt line per payload by sending the handshake line ``?ack`` first.
Fire-and-forget by default — the cheapest possible producer loop — with
backpressure still visible through the shard queues' shed counters and
the ``/service`` document.
"""

from __future__ import annotations

import logging
import socketserver
import threading

__all__ = ["LineSocketServer"]

import json

logger = logging.getLogger(__name__)


class LineSocketServer:
    """Threaded TCP server feeding :class:`EstimationService.ingest`."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self._server: "socketserver.ThreadingTCPServer | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._server is not None:
            return self.port
        service = self.service

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                ack = False
                for raw in self.rfile:
                    line = raw.decode("utf-8", errors="replace").strip()
                    if not line:
                        continue
                    if line == "?ack":
                        ack = True
                        continue
                    receipt = service.ingest(line, transport="socket")
                    if ack:
                        self.wfile.write(
                            (json.dumps(receipt, separators=(",", ":")) + "\n")
                            .encode("utf-8")
                        )

        server = socketserver.ThreadingTCPServer(
            (self.host, self.port), Handler, bind_and_activate=False
        )
        server.daemon_threads = True
        server.allow_reuse_address = True
        try:
            server.server_bind()
            server.server_activate()
        except OSError:
            server.server_close()
            raise
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-socket",
            daemon=True,
        )
        self._thread.start()
        logger.info("serve socket ingest listening on %s:%d", self.host, self.port)
        return self.port

    def stop(self) -> None:
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._server is not None
