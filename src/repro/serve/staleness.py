"""Per-node liveness/staleness tracking for the streaming service.

A node is *fresh* while its last accepted sample arrived within
``stale_after_s`` (service wall clock, injectable for tests).  The
tracker feeds three consumers:

* ``/healthz`` — stale nodes flip the service unhealthy (503), the
  same unresolved-alert semantics the drift monitor uses: stale
  estimates must not steer anything;
* the freshness SLO — every sweep records one good/bad event per known
  node into the :class:`~repro.serve.slo.SLOEngine`;
* the gauge plane — ``serve_nodes_fresh`` / ``serve_nodes_stale``.
"""

from __future__ import annotations

import threading
import time

__all__ = ["StalenessTracker"]


class StalenessTracker:
    """Tracks last-seen times and classifies nodes fresh/stale."""

    def __init__(
        self,
        stale_after_s: float = 10.0,
        clock=None,
    ) -> None:
        if stale_after_s <= 0:
            raise ValueError("stale_after_s must be positive")
        self.stale_after_s = float(stale_after_s)
        self._clock = clock if clock is not None else time.monotonic
        self._last_seen: "dict[str, float]" = {}
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._clock()

    def touch(self, node: str, now: "float | None" = None) -> None:
        """Record an accepted sample from ``node``."""
        with self._lock:
            self._last_seen[node] = self._clock() if now is None else now

    def forget(self, node: str) -> None:
        with self._lock:
            self._last_seen.pop(node, None)

    def age_s(self, node: str, now: "float | None" = None) -> "float | None":
        with self._lock:
            seen = self._last_seen.get(node)
        if seen is None:
            return None
        return (self._clock() if now is None else now) - seen

    def is_stale(self, node: str, now: "float | None" = None) -> bool:
        age = self.age_s(node, now)
        return age is not None and age > self.stale_after_s

    def sweep(self, now: "float | None" = None) -> "tuple[list[str], list[str]]":
        """``(fresh, stale)`` node lists, each sorted by name."""
        moment = self._clock() if now is None else now
        fresh, stale = [], []
        with self._lock:
            for node, seen in self._last_seen.items():
                (stale if moment - seen > self.stale_after_s else fresh).append(node)
        return sorted(fresh), sorted(stale)

    def to_json(self, now: "float | None" = None) -> dict:
        moment = self._clock() if now is None else now
        with self._lock:
            ages = {
                node: round(moment - seen, 6)
                for node, seen in sorted(self._last_seen.items())
            }
        return {
            "stale_after_s": self.stale_after_s,
            "age_s": ages,
            "stale": sorted(
                node for node, age in ages.items() if age > self.stale_after_s
            ),
        }
