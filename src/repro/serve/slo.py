"""Error-budget burn-rate tracking for the streaming service.

Two SLOs, Google-SRE style multiwindow burn alerts:

* **error** — the fraction of truth-scored samples whose total-power
  error stays within the drift monitor's bound (the paper's 9 %
  average-error result, :data:`repro.obs.drift.DEFAULT_SLO_PCT`);
* **freshness** — the fraction of per-node liveness sweeps that find
  the node fresh (see :class:`~repro.serve.staleness.StalenessTracker`).

Each SLO accumulates ``(t, good, bad)`` event tallies in a pruned ring.
The *burn rate* over a window is ``bad_fraction / (1 - objective)`` —
burn 1.0 spends the error budget exactly at the sustainable rate, burn
``fast_burn_rate`` (default 14.4, the classic "2 % of a 30-day budget
in one hour" alert) is an incident.  A fast-burn fires only when
**both** the short and the long window burn past the threshold (the
short window confirms it is still happening, the long window that it
is material), emitting a ``slo.burn`` trace event, bumping
``slo_fast_burn_total`` and triggering the
:class:`~repro.obs.flight.FlightRecorder` so the post-mortem bundle is
on disk before anyone pages.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro import obs
from repro.obs.drift import DEFAULT_SLO_PCT

__all__ = ["SLOEngine", "DEFAULT_FAST_BURN_RATE"]

#: Burn-rate threshold for the fast-burn alert (SRE workbook page rate).
DEFAULT_FAST_BURN_RATE = 14.4


class _Budget:
    """One SLO's pruned event ring and fast-burn state."""

    def __init__(self, name: str, objective: float) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"{name} objective must be in (0, 1)")
        self.name = name
        self.objective = objective
        self.events: "deque[tuple[float, int, int]]" = deque()
        self.good_total = 0
        self.bad_total = 0
        self.fast_burn = False
        self.fast_burn_count = 0

    def record(self, now: float, good: int, bad: int) -> None:
        if good < 0 or bad < 0:
            raise ValueError("event tallies must be non-negative")
        if good or bad:
            self.events.append((now, good, bad))
            self.good_total += good
            self.bad_total += bad

    def prune(self, now: float, keep_s: float) -> None:
        horizon = now - keep_s
        while self.events and self.events[0][0] < horizon:
            self.events.popleft()

    def burn_rate(self, now: float, window_s: float) -> float:
        horizon = now - window_s
        good = bad = 0
        for t, g, b in reversed(self.events):
            if t < horizon:
                break
            good += g
            bad += b
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.objective)

    def budget_remaining(self, now: float, window_s: float) -> float:
        """1.0 = untouched budget, 0.0 = spent (clamped below at 0)."""
        return max(0.0, 1.0 - self.burn_rate(now, window_s))


class SLOEngine:
    """Tracks error + freshness budgets and fires on fast burn."""

    def __init__(
        self,
        error_bound_pct: float = DEFAULT_SLO_PCT,
        error_objective: float = 0.99,
        freshness_objective: float = 0.99,
        short_window_s: float = 30.0,
        long_window_s: float = 120.0,
        fast_burn_rate: float = DEFAULT_FAST_BURN_RATE,
        clock=None,
        flight=None,
    ) -> None:
        if short_window_s <= 0 or long_window_s < short_window_s:
            raise ValueError("need 0 < short_window_s <= long_window_s")
        if fast_burn_rate <= 0:
            raise ValueError("fast_burn_rate must be positive")
        self.error_bound_pct = float(error_bound_pct)
        self.short_window_s = float(short_window_s)
        self.long_window_s = float(long_window_s)
        self.fast_burn_rate = float(fast_burn_rate)
        self.flight = flight
        self._clock = clock if clock is not None else time.monotonic
        self._budgets = {
            "error": _Budget("error", error_objective),
            "freshness": _Budget("freshness", freshness_objective),
        }
        self._lock = threading.Lock()

    def _now(self, now: "float | None") -> float:
        return self._clock() if now is None else now

    # -- recording -----------------------------------------------------

    def record_error_batch(
        self, good: int, bad: int, now: "float | None" = None
    ) -> None:
        """Tally truth-scored samples (within-bound vs out-of-bound)."""
        with self._lock:
            self._budgets["error"].record(self._now(now), good, bad)

    def record_freshness(
        self, fresh: int, stale: int, now: "float | None" = None
    ) -> None:
        """Tally one liveness sweep (fresh nodes good, stale nodes bad)."""
        with self._lock:
            self._budgets["freshness"].record(self._now(now), fresh, stale)

    # -- evaluation ----------------------------------------------------

    def check(self, now: "float | None" = None) -> dict:
        """Recompute burn rates, fire/clear fast-burn, publish gauges.

        Returns the same document :meth:`to_json` builds; call sites
        (the service housekeeping loop, the ``/slo`` route) use it as
        the scrapeable burn state.
        """
        moment = self._now(now)
        fired: "list[str]" = []
        with self._lock:
            state = {}
            for name, budget in self._budgets.items():
                budget.prune(moment, self.long_window_s)
                short = budget.burn_rate(moment, self.short_window_s)
                long = budget.burn_rate(moment, self.long_window_s)
                burning = (
                    short >= self.fast_burn_rate and long >= self.fast_burn_rate
                )
                if burning and not budget.fast_burn:
                    budget.fast_burn_count += 1
                    fired.append(name)
                budget.fast_burn = burning
                state[name] = {
                    "objective": budget.objective,
                    "burn_short": round(short, 4),
                    "burn_long": round(long, 4),
                    "budget_remaining": round(
                        budget.budget_remaining(moment, self.long_window_s), 4
                    ),
                    "fast_burn": burning,
                    "fast_burn_count": budget.fast_burn_count,
                    "good_total": budget.good_total,
                    "bad_total": budget.bad_total,
                }
                obs.gauge("slo_burn_rate", short, {"slo": name, "window": "short"})
                obs.gauge("slo_burn_rate", long, {"slo": name, "window": "long"})
                obs.gauge(
                    "slo_error_budget_remaining",
                    state[name]["budget_remaining"],
                    {"slo": name},
                )
        # Outside the lock: trace events and the flight trigger both may
        # take other locks (tracer, registry) and do file IO.
        for name in fired:
            detail = state[name]
            obs.event(
                "slo.burn",
                slo=name,
                burn_short=detail["burn_short"],
                burn_long=detail["burn_long"],
                threshold=self.fast_burn_rate,
            )
            obs.inc("slo_fast_burn_total", labels={"slo": name})
            if self.flight is not None:
                self.flight.trigger(
                    f"slo-fast-burn-{name}",
                    detail={"slo": name, **detail},
                )
        return {
            "error_bound_pct": self.error_bound_pct,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "fast_burn_rate": self.fast_burn_rate,
            "slos": state,
        }

    @property
    def fast_burning(self) -> "tuple[str, ...]":
        """Names of SLOs currently in fast burn (most recent check)."""
        with self._lock:
            return tuple(
                name
                for name, budget in self._budgets.items()
                if budget.fast_burn
            )

    def to_json(self, now: "float | None" = None) -> dict:
        return self.check(now)
