"""Command-line interface: ``repro-power <experiment>``.

Commands::

    repro-power table1|table2|table3|table4     # paper tables
    repro-power fig1|fig2|fig3|fig4|fig5|fig6|fig7
    repro-power equations                        # fitted models
    repro-power report [-o EXPERIMENTS.md]       # full paper-vs-measured
    repro-power run <workload>                   # one instrumented run
    repro-power list                             # available workloads
    repro-power export <workload> -o trace.csv   # trace to CSV
    repro-power select <subsystem>               # greedy event selection
    repro-power billing                          # per-process energy bill
    repro-power obs [DIR]                        # last run's telemetry
    repro-power obs --store DIR [--range 5m]     # summary of a TSDB store
    repro-power monitor --workload gcc           # live run + HTTP endpoint
    repro-power query METRIC --store DIR         # instant/range TSDB query
    repro-power sweep [gcc,mcf,...] [--resume]   # fault-tolerant bulk sweep
    repro-power explain [mcf]                    # per-term power attribution
    repro-power datacenter [--dc-zones 3]        # multi-zone EP scenario
    repro-power explain --bundle PATH            # print a flight bundle

Common options: ``--seed``, ``--duration`` (seconds per workload),
``--tick-ms`` (simulation resolution), ``--cache-dir`` (run cache),
``--workers`` (parallel sweep processes), ``--telemetry DIR`` (dump
``metrics.prom``/``metrics.json``/``trace.jsonl`` after the command;
``repro-power obs`` pretty-prints them), ``--flight-dir DIR`` (arm the
flight recorder: post-mortem bundles land in DIR on drift alerts,
sweep failures or crashes).  ``REPRO_LOG_LEVEL`` controls log
verbosity.

``explain`` reproduces the paper's Section 5 diagnosis style for any
workload: it decomposes each subsystem's estimate into per-term watts
(intercept, each counter's linear/quadratic share), compares against
measured power with the Table 3 error column, and names the dominant
term — on mcf the CPU row shows the fetched-uops term carrying the
estimate while true power runs higher (speculation the counter cannot
see).  With ``--bundle PATH`` it pretty-prints a flight-recorder
bundle from a fresh process instead.

``sweep`` runs many workloads (comma-separated positional, default:
all twelve paper workloads) through the fault-tolerant sweep engine:
failed tasks retry with capped exponential backoff (``--max-attempts``,
``--retry-delay``, ``--task-timeout``), dead pool workers trigger pool
rebuilds, and — with a cache directory — every completed run is
checkpointed immediately, so ``--resume`` continues a killed sweep
from its last stored run.  Specs that fail permanently are listed and
the command exits 1.

``monitor`` runs a workload (or, with ``--nodes N``, a power-managed
cluster) with the live observability endpoint up: ``/metrics`` serves
Prometheus text while the run progresses, ``/alerts`` the drift
monitor's state, and a summary line is printed every ``--refresh``
simulated seconds.  ``--perturb FACTOR`` deliberately mis-calibrates
the estimator to demonstrate drift alerts; ``--restore-at T`` swaps the
calibrated suite back mid-run so the alerts resolve.  ``--fleet WIDTH``
monitors a vectorized fleet of WIDTH lanes instead: per-lane drift
streams, cross-lane aggregates and drill-down on ``/fleet``,
``/fleet/lanes`` and ``/fleet/lane/<i>``, with ``--perturb-lanes``
restricting the mis-calibration to named lanes so alerts attribute to
exactly those lanes.

``--store DIR`` (on ``monitor``, ``serve`` and ``datacenter``) persists
the run's telemetry into an embedded time-series store
(:mod:`repro.obs.tsdb`): windowed metrics land as one sample per
window, recording rules distill 5-minute rollup series on every flush,
and alert firing/resolved transitions are stored as an
``alerts_firing`` series.  ``repro-power query`` reads the store back
from any later process — instant (``--at``) or range
(``--start``/``--end``/``--range``, ``--step``, ``--agg``, ``--by``,
``--tier``), with ``--label k=v`` / ``--label k=~regex`` matchers and
``--csv`` for machine consumption.  ``repro-power obs --store DIR``
prints a per-metric summary of the store's recent span.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import obs
from repro.analysis import experiments as ex
from repro.analysis.plots import ascii_chart, residual_summary
from repro.analysis.tables import format_table, format_trace_summary, sparkline
from repro.core.events import SUBSYSTEMS, render_propagation_diagram
from repro.simulator.config import SystemConfig
from repro.workloads.registry import PAPER_WORKLOADS, get_workload


def _context(args: argparse.Namespace) -> ex.ExperimentContext:
    return ex.ExperimentContext(
        config=SystemConfig(tick_s=args.tick_ms / 1000.0),
        seed=args.seed,
        duration_s=args.duration,
        cache_dir=args.cache_dir,
        n_workers=args.workers,
    )


def _print_table(result: "ex.TableResult") -> None:
    print(format_table(result.title, result.headers, result.rows))
    print()
    print(
        format_table(
            "Paper reference values", result.headers, result.paper_rows
        )
    )


def _print_figure(result: "ex.FigureResult") -> None:
    print(
        format_trace_summary(
            result.title,
            result.timestamps,
            result.measured,
            result.modeled,
            result.avg_error_pct,
        )
    )
    print()
    print(
        ascii_chart(
            {"measured": result.measured, "modeled": result.modeled},
            y_label="W",
        )
    )
    stats = residual_summary(result.measured, result.modeled)
    print(
        f"  residuals: bias {stats['bias_w']:+.2f} W, "
        f"RMSE {stats['rmse_w']:.2f} W, "
        f"p95 |err| {stats['p95_abs_error_w']:.2f} W, "
        f"corr {stats['correlation']:.3f}"
    )
    if result.paper_error_pct is not None:
        print(f"  (paper quotes ~{result.paper_error_pct:g}% for this figure)")


#: Where ``--telemetry`` dumps (and ``obs`` reads) when no directory is
#: given explicitly.
DEFAULT_TELEMETRY_DIR = ".repro-telemetry"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-power",
        description="Reproduce Bircher & John (ISPASS 2007) tables and figures.",
    )
    parser.add_argument(
        "command",
        help="table1..table4, fig1..fig7, equations, report, run, list, "
        "obs, monitor, serve, query, sweep, explain, datacenter",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        help="workload name (for 'run'), or metric name (for 'query')",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=300.0)
    parser.add_argument("--tick-ms", type=float, default=10.0)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for multi-workload sweeps "
        "(default: REPRO_SWEEP_WORKERS or the CPU count)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        nargs="?",
        const=DEFAULT_TELEMETRY_DIR,
        default=None,
        help="collect telemetry and dump metrics.prom/metrics.json/"
        f"trace.jsonl into DIR (default {DEFAULT_TELEMETRY_DIR}) "
        "after the command",
    )
    parser.add_argument("-o", "--output", default=None, help="write report here")
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        dest="flight_dir",
        default=None,
        help="arm the flight recorder: keep a ring of recent windows/"
        "attribution and dump post-mortem bundles into DIR on drift "
        "alerts, sweep failures, crashes or /flightrecorder?dump=1",
    )
    explain_group = parser.add_argument_group("explain options")
    explain_group.add_argument(
        "--bundle",
        metavar="PATH",
        default=None,
        help="pretty-print a flight-recorder bundle (directory or "
        "bundle.json) instead of simulating a workload",
    )
    sweep_group = parser.add_argument_group("sweep options")
    sweep_group.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep from its run-cache "
        "checkpoints (needs --cache-dir or REPRO_CACHE_DIR)",
    )
    sweep_group.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per spec before it is reported as permanently "
        "failed (default 3)",
    )
    sweep_group.add_argument(
        "--retry-delay",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="base delay of the capped exponential retry backoff "
        "(default 0.1)",
    )
    sweep_group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task result timeout; a timed-out task counts as a "
        "failed attempt (default: wait forever)",
    )
    monitor = parser.add_argument_group("monitor options")
    monitor.add_argument(
        "--workload",
        dest="workload_opt",
        default=None,
        help="workload for 'monitor' (alternative to the positional)",
    )
    monitor.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port for the observability endpoint (0 = ephemeral)",
    )
    monitor.add_argument(
        "--refresh",
        type=float,
        default=5.0,
        help="simulated seconds between summary lines (default 5)",
    )
    monitor.add_argument(
        "--window",
        type=float,
        default=5.0,
        help="windowed-telemetry aggregation width in seconds (default 5)",
    )
    monitor.add_argument(
        "--slo",
        type=float,
        default=None,
        help="drift SLO in percent (default: the paper's 9%% bound)",
    )
    monitor.add_argument(
        "--perturb",
        type=float,
        default=None,
        metavar="FACTOR",
        help="scale the estimator's coefficients by FACTOR "
        "(deliberate mis-calibration; demonstrates drift alerts)",
    )
    monitor.add_argument(
        "--restore-at",
        type=float,
        default=None,
        dest="restore_at",
        metavar="SECONDS",
        help="swap the calibrated suite back at this simulated time "
        "(with --perturb; alerts then resolve)",
    )
    monitor.add_argument(
        "--nodes",
        type=int,
        default=0,
        help="monitor a power-managed cluster of N nodes instead of "
        "a single workload run",
    )
    monitor.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="WIDTH",
        help="monitor a vectorized fleet of WIDTH lanes instead of a "
        "single server (per-lane drift drill-down on /fleet*)",
    )
    monitor.add_argument(
        "--perturb-lanes",
        default=None,
        dest="perturb_lanes",
        metavar="LANES",
        help="with --fleet and --perturb: comma-separated lane indices "
        "to mis-calibrate (default: every lane)",
    )
    serve = parser.add_argument_group("serve options")
    serve.add_argument(
        "--shards",
        type=int,
        default=2,
        help="estimator worker shards for 'serve' (default 2)",
    )
    serve.add_argument(
        "--socket-port",
        type=int,
        default=None,
        dest="socket_port",
        metavar="PORT",
        help="also accept the raw socket line protocol on PORT "
        "(0 = ephemeral; default: HTTP ingest only)",
    )
    serve.add_argument(
        "--replay",
        metavar="WORKLOAD",
        default=None,
        help="simulate WORKLOAD on --nodes nodes and stream their "
        "counter windows through the service (with truth watts, so "
        "drift and the error SLO score live)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        dest="queue_depth",
        help="per-shard ingest queue bound, in batches (default 256)",
    )
    serve.add_argument(
        "--stale-after",
        type=float,
        default=10.0,
        dest="stale_after",
        metavar="SECONDS",
        help="a node with no accepted sample for this long is stale "
        "and flips /healthz to 503 (default 10)",
    )
    serve.add_argument(
        "--attribute",
        action="store_true",
        help="publish per-term watt attribution per node on /nodes/<id>",
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help="enable the destructive POST /service/kill_shard chaos "
        "hook (CI smoke tests only; off by default)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="replay pacing in samples/s across all nodes "
        "(0 = as fast as possible)",
    )
    serve.add_argument(
        "--serve-for",
        type=float,
        default=0.0,
        dest="serve_for",
        metavar="SECONDS",
        help="keep serving this long after the replay drains "
        "(without --replay: 0 = serve until interrupted)",
    )
    dc_group = parser.add_argument_group("datacenter options")
    dc_group.add_argument(
        "--dc-zones",
        type=int,
        default=3,
        dest="dc_zones",
        help="availability zones for 'datacenter' (default 3)",
    )
    dc_group.add_argument(
        "--nodes-per-zone",
        type=int,
        default=16,
        dest="nodes_per_zone",
        help="nodes in each zone (default 16)",
    )
    dc_group.add_argument(
        "--cap-w",
        type=float,
        default=0.0,
        dest="cap_w",
        help="datacenter power cap in Watts "
        "(0 = --cap-frac of the calibrated full-on peak)",
    )
    dc_group.add_argument(
        "--cap-frac",
        type=float,
        default=0.6,
        dest="cap_frac",
        help="auto cap as a fraction of the calibrated full-on peak "
        "(default 0.6)",
    )
    dc_group.add_argument(
        "--dc-engine",
        choices=("fleet", "scalar"),
        default="fleet",
        dest="dc_engine",
        help="cluster engine for the zones (default fleet)",
    )
    dc_group.add_argument(
        "--no-static",
        action="store_true",
        dest="no_static",
        help="skip the static all-on baseline run",
    )
    dc_group.add_argument(
        "--no-regret",
        action="store_true",
        dest="no_regret",
        help="skip the ground-truth-sensor run (no regret numbers)",
    )
    dc_group.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="print the datacenter scenario document as JSON",
    )
    store_group = parser.add_argument_group("store / query options")
    store_group.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="durable telemetry: persist (monitor/serve/datacenter) or "
        "read (query, obs) an embedded time-series store at DIR",
    )
    store_group.add_argument(
        "--label",
        action="append",
        default=None,
        metavar="K=V",
        help="label matcher for 'query' (repeatable; k=v exact or "
        "k=~regex)",
    )
    store_group.add_argument(
        "--at",
        type=float,
        default=None,
        metavar="SECONDS",
        help="instant query: newest point at or before this timestamp "
        "(default: newest overall)",
    )
    store_group.add_argument(
        "--start",
        type=float,
        default=None,
        metavar="SECONDS",
        help="range query start timestamp (default 0)",
    )
    store_group.add_argument(
        "--end",
        type=float,
        default=None,
        metavar="SECONDS",
        help="range query end timestamp (default: newest in the store)",
    )
    store_group.add_argument(
        "--range",
        dest="range_s",
        default=None,
        metavar="SPAN",
        help="range query span ending at --end or the newest point, "
        "e.g. 90, 5m, 2h (also the 'obs --store' summary span)",
    )
    store_group.add_argument(
        "--step",
        default=None,
        metavar="SPAN",
        help="range query bucket width (e.g. 10, 1m; default: raw points)",
    )
    store_group.add_argument(
        "--agg",
        default="mean",
        choices=("mean", "min", "max", "sum", "count", "last"),
        help="range query bucket aggregation (default mean)",
    )
    store_group.add_argument(
        "--by",
        default=None,
        metavar="LABELS",
        help="collapse series onto these comma-separated labels "
        "(empty string = one fleet-wide series)",
    )
    store_group.add_argument(
        "--tier",
        default="auto",
        choices=("auto", "raw", "10s", "2m"),
        help="storage tier to answer from (default auto: the finest "
        "still covering the range)",
    )
    store_group.add_argument(
        "--csv",
        action="store_true",
        help="print query results as CSV instead of a table",
    )
    args = parser.parse_args(argv)
    obs.log.configure()

    if args.command in ("obs", "query"):
        try:
            if args.command == "query":
                return _cmd_query(args, parser)
            if args.store:
                return _cmd_obs_store(args)
            return _print_telemetry(
                args.telemetry or args.workload or DEFAULT_TELEMETRY_DIR,
                args.cache_dir,
            )
        except BrokenPipeError:
            # Reader (e.g. `| head`) closed the pipe: not an error, but
            # stdout is now unusable — hand it /dev/null so interpreter
            # shutdown doesn't print a second traceback.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
    if args.telemetry:
        obs.enable()
    recorder = None
    if args.flight_dir:
        from repro.obs import flight as flight_mod

        recorder = flight_mod.FlightRecorder(out_dir=args.flight_dir)
        flight_mod.set_global(recorder)
        recorder.install_excepthook()
    try:
        return _dispatch(args, parser)
    except Exception as error:
        # The finally below uninstalls the excepthook before the
        # interpreter would run it, so dump the crash bundle here.
        if recorder is not None:
            recorder.trigger(
                "unhandled_exception",
                detail={"type": type(error).__name__, "error": str(error)},
            )
        raise
    finally:
        if recorder is not None:
            recorder.uninstall_excepthook()
            flight_mod.clear_global()
            if recorder.bundles:
                print(
                    f"flight: wrote {len(recorder.bundles)} bundle(s) to "
                    f"{args.flight_dir}"
                )
        if args.telemetry:
            paths = obs.dump(args.telemetry)
            print(
                f"telemetry: wrote {', '.join(sorted(paths))} to "
                f"{args.telemetry}"
            )


def _dispatch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    command = args.command
    if command == "list":
        for name in PAPER_WORKLOADS:
            print(f"{name:10} {get_workload(name).description}")
        return 0
    if command == "fig1":
        print(render_propagation_diagram())
        return 0
    if command == "explain" and args.bundle:
        return _cmd_explain_bundle(args.bundle)

    context = _context(args)
    if command == "datacenter":
        return _cmd_datacenter(args, context)
    if command == "monitor":
        return _cmd_monitor(args, parser, context)
    if command == "serve":
        return _cmd_serve(args, parser, context)
    if command == "sweep":
        return _cmd_sweep(args, parser, context)
    if command == "explain":
        return _cmd_explain(args, parser, context)
    tables = {
        "table1": ex.table1_average_power,
        "table2": ex.table2_power_stddev,
        "table3": ex.table3_integer_errors,
        "table4": ex.table4_fp_errors,
    }
    figures = {
        "fig2": ex.figure2_cpu_model,
        "fig3": ex.figure3_memory_l3,
        "fig5": ex.figure5_memory_bus,
        "fig6": ex.figure6_disk_model,
        "fig7": ex.figure7_io_model,
    }
    if command in tables:
        _print_table(tables[command](context))
        return 0
    if command in figures:
        _print_figure(figures[command](context))
        return 0
    if command == "fig4":
        result = ex.figure4_prefetch_bus(context)
        print(result.title)
        for label, series in result.series.items():
            print(f"  {label:13}|{sparkline(series)}|  last={series[-1]:.0f}/Mcycle")
        return 0
    if command == "equations":
        print(context.paper_suite().describe())
        print("\nAblation (rejected Equation 2 analogue):")
        from repro.core.events import Subsystem

        print("  memory-l3:", context.l3_suite().model(Subsystem.MEMORY).describe())
        return 0
    if command == "report":
        from repro.analysis.report import build_report

        text = build_report(context)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0
    if command == "export":
        if not args.workload:
            parser.error("'export' needs a workload name")
        if not args.output:
            parser.error("'export' needs -o <file.csv>")
        from repro.analysis.export import run_to_csv

        run = context.run(args.workload)
        run_to_csv(run, args.output)
        print(f"wrote {run.n_samples} windows to {args.output}")
        return 0
    if command == "select":
        if not args.workload:
            parser.error("'select' needs a subsystem (cpu|memory|io|disk)")
        from repro.core.events import Subsystem
        from repro.core.selection import EventSelector
        from repro.core.training import PAPER_RECIPE

        subsystem = Subsystem(args.workload)
        train_name = PAPER_RECIPE.spec_for(subsystem).train_workload
        validation = [
            context.run(name)
            for name in ("idle", "gcc", "mcf", "mesa", "DiskLoad")
        ]
        result = EventSelector(max_features=3).select(
            subsystem, context.run(train_name), validation
        )
        print(result.describe())
        print("final model:", result.model.describe())
        return 0
    if command == "billing":
        from repro.core.accounting import bill_processes
        from repro.simulator.system import Server
        from repro.workloads.mixes import mix

        suite = context.paper_suite()
        spec = mix({"gcc": 2, "mcf": 2}, stagger_s=2.0)
        server = Server(context.config, spec, seed=context.seed + 3)
        run = server.run(min(context.duration_s, 150.0))
        bills = bill_processes(suite, run.counters, server.process_stats)
        rows = [
            [
                f"thread {bill.thread_id}",
                bill.runtime_s,
                bill.cpu_energy_j / 3600.0,
                bill.induced_energy_j / 3600.0,
                bill.total_energy_j / 3600.0,
            ]
            for bill in bills
        ]
        print(
            format_table(
                f"Per-process energy bill: {spec.name}",
                ("process", "runtime s", "cpu Wh", "induced Wh", "total Wh"),
                rows,
                precision=3,
            )
        )
        return 0
    if command == "run":
        if not args.workload:
            parser.error("'run' needs a workload name")
        run = context.run(args.workload)
        rows = [
            [s.value, run.power.mean(s), run.power.std(s)] for s in SUBSYSTEMS
        ]
        print(
            format_table(
                f"{args.workload}: measured power over {run.duration_s:.0f}s",
                ("subsystem", "mean W", "std W"),
                rows,
                precision=3,
            )
        )
        return 0
    parser.error(f"unknown command {command!r}")
    return 2


def _cmd_datacenter(args: argparse.Namespace, context) -> int:
    """Run the multi-zone energy-proportionality scenario.

    Builds a diurnal + flash-crowd + failover traffic model over
    ``--dc-zones`` zones of ``--nodes-per-zone`` nodes, calibrates the
    per-pstate sensor bank, and runs the subsystem-level policy on
    estimated power under the cap — then (by default) the same
    scenario with the ground-truth sensor (regret) and the static
    all-on baseline (EP reference).  Exits 1 if the estimated-sensor
    run ever exceeded the cap.
    """
    from repro.dc import (
        FlashCrowd,
        TrafficModel,
        ZoneOutage,
        ZoneSpec,
        run_scenario,
        train_zone_bank,
    )

    duration = max(int(args.duration), 30)
    n_zones = max(args.dc_zones, 1)
    per_zone = max(args.nodes_per_zone, 1)
    config = context.config
    print(
        f"calibrating sensor bank "
        f"({len(config.cpu.dvfs_states)} pstates)...",
        file=sys.stderr,
    )
    calibration = train_zone_bank(config, seed=args.seed)
    node_capacity = len(get_workload("SPECjbb").threads)
    users_per_thread = 25_000.0
    # Peak zone demand ~75 % of zone capacity; zones peak at staggered
    # times (time-zone phase offsets across half the run).
    zones = tuple(
        ZoneSpec(
            f"zone{i}",
            per_zone,
            0.75 * per_zone * node_capacity * users_per_thread,
            phase_s=i * duration / (2.0 * n_zones),
        )
        for i in range(n_zones)
    )
    crowds = (
        FlashCrowd(
            start_s=0.2 * duration,
            duration_s=0.15 * duration,
            magnitude=1.7,
            zone=zones[0].name,
            ramp_s=max(3.0, 0.03 * duration),
        ),
    )
    outages = (
        (ZoneOutage(zones[-1].name, 0.55 * duration, 0.12 * duration),)
        if n_zones > 1
        else ()
    )
    traffic = TrafficModel(
        zones,
        users_per_thread=users_per_thread,
        period_s=float(duration),
        flash_crowds=crowds,
        outages=outages,
        seed=args.seed,
    )
    total_nodes = n_zones * per_zone
    cap_w = args.cap_w or (
        args.cap_frac * calibration.reference_peak_w * total_nodes
    )
    print(
        f"running {total_nodes} nodes / {n_zones} zones for {duration}s "
        f"under a {cap_w:.0f} W cap ({args.dc_engine} engine)...",
        file=sys.stderr,
    )
    store = None
    if args.store:
        from repro.obs.tsdb import TSDB

        store = TSDB(args.store)
        print(f"datacenter: persisting per-second traces to {args.store}",
              file=sys.stderr)
    doc = run_scenario(
        traffic,
        cap_w,
        duration,
        config=config,
        engine=args.dc_engine,
        seed=args.seed,
        calibration=calibration,
        include_true_sensor=not args.no_regret,
        include_static=not args.no_static,
        store=store,
    )
    if store is not None:
        from types import SimpleNamespace

        from repro.obs.alertmgr import AlertManager

        # The scenario is batch, so the alert plane sees one evaluation
        # at end-of-run: cap violations / drift fallback fire (and
        # persist as alerts_firing) exactly when the report carries them.
        alerts = AlertManager(store=store)
        alerts.attach_dc(SimpleNamespace(**doc["subsystem_estimated"]))
        alerts.evaluate(float(duration))
        store.close()
    if args.json_output:
        print(json.dumps(doc, indent=2))
    else:
        rows = []
        for key, label in (
            ("subsystem_estimated", "subsystem (estimated sensor)"),
            ("subsystem_true", "subsystem (true sensor)"),
            ("static", "static all-on baseline"),
        ):
            run = doc.get(key)
            if run is None:
                continue
            ep = run["energy_proportionality"] or {}
            rows.append(
                [
                    label,
                    run["energy_j"] / 1000.0,
                    run["max_power_w"],
                    run["cap_violations"],
                    run["dropped_thread_seconds"],
                    ep.get("ep_score", float("nan")),
                ]
            )
        print(
            format_table(
                f"Datacenter scenario: {total_nodes} nodes, "
                f"{n_zones} zones, {duration}s, cap {cap_w:.0f} W",
                (
                    "policy",
                    "energy kJ",
                    "max W",
                    "cap viol",
                    "dropped t-s",
                    "EP score",
                ),
                rows,
                precision=3,
            )
        )
        managed = doc["subsystem_estimated"]
        print(
            f"  budget redistributions: {managed['budget_redistributions']}, "
            f"cap enforcements: {managed['cap_enforcements']}, "
            f"boots denied: {managed['boots_denied']}"
        )
        if "regret" in doc:
            regret = doc["regret"]
            print(
                f"  estimated-vs-true policy regret: "
                f"{regret['regret_j'] / 1000.0:+.2f} kJ "
                f"({regret['regret_pct']:+.2f} %)"
            )
        if "ep_comparison" in doc:
            comparison = doc["ep_comparison"]
            print(
                f"  energy proportionality: subsystem "
                f"{comparison['subsystem_ep_score']:.3f} vs static "
                f"{comparison['static_ep_score']:.3f} "
                f"(gain {comparison['ep_gain']:+.3f})"
            )
    return 0 if doc["subsystem_estimated"]["cap_violations"] == 0 else 1


def _cmd_explain(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    context: "ex.ExperimentContext",
) -> int:
    """``repro-power explain``: per-term attribution of one workload."""
    from repro.obs import attribution as attr_mod

    name = args.workload_opt or args.workload or "mcf"
    try:
        get_workload(name)
    except KeyError:
        parser.error(f"unknown workload {name!r}")
    print("explain: training trickle-down suite ...")
    suite = context.paper_suite()
    run = context.run(name)
    report = attr_mod.attribute_run(suite, run, workload=name)

    summary_rows = []
    for sub in report.subsystems.values():
        top_term, _ = sub.top_terms(1)[0]
        summary_rows.append(
            [
                sub.subsystem,
                sub.modeled_w,
                sub.true_w if sub.true_w is not None else float("nan"),
                sub.error_pct if sub.error_pct is not None else float("nan"),
                sub.residual_w if sub.residual_w is not None else float("nan"),
                top_term,
            ]
        )
    print(
        format_table(
            f"{name}: attribution vs measured power "
            f"({report.n_samples} window(s))",
            (
                "subsystem",
                "modeled W",
                "true W",
                "avg err %",
                "true-est W",
                "dominant term",
            ),
            summary_rows,
            precision=2,
        )
    )
    print()
    term_rows = []
    for sub in report.subsystems.values():
        for term, watts in sub.top_terms(n=len(sub.terms_w)):
            term_rows.append([sub.subsystem, term, watts, sub.share_pct(term)])
    print(
        format_table(
            "Per-term attribution (mean W over the run)",
            ("subsystem", "term", "watts", "share %"),
            term_rows,
            precision=2,
        )
    )
    print()
    cpu = report.subsystems.get("cpu")
    if cpu is not None:
        print("explain:", attr_mod.diagnose(cpu, n=1))
        fetched_w = sum(
            watts for term, watts in cpu.terms_w.items() if "fetched_uops" in term
        )
        if cpu.residual_w is not None and cpu.residual_w > 0 and fetched_w:
            share = 100.0 * fetched_w / cpu.modeled_w if cpu.modeled_w else 0.0
            print(
                f"explain: the fetched-uops terms attribute only "
                f"{fetched_w:.1f} W ({share:.0f}% of the CPU estimate) yet "
                f"true CPU power runs {cpu.residual_w:.1f} W above the "
                "model — speculative work that fetched uops cannot see "
                "(the paper's mcf diagnosis, Section 5)."
            )
    return 0


def _cmd_explain_bundle(path: str) -> int:
    """``repro-power explain --bundle``: print a flight bundle."""
    from repro.obs import attribution as attr_mod
    from repro.obs import flight as flight_mod

    try:
        doc = flight_mod.load_bundle(path)
    except (OSError, ValueError) as error:
        print(f"explain: cannot read bundle at {path!r}: {error}")
        return 1
    provenance = doc.get("provenance") or {}
    print(
        "flight bundle: {}  (recorded {} on {} @ {})".format(
            doc.get("reason", "?"),
            provenance.get("date", "?"),
            provenance.get("host", "?"),
            provenance.get("git_sha", "?"),
        )
    )
    detail = doc.get("detail")
    if detail:
        print(f"  trigger detail: {json.dumps(detail, sort_keys=True)}")
    frames = doc.get("frames") or []
    print(f"  frames recorded: {len(frames)}")
    for frame in frames[-5:]:
        if frame.get("kind") == "note":
            print(f"    t={frame.get('t_s', 0.0):9.1f}s  note: {frame.get('message')}")
            continue
        print(
            "    t={:9.1f}s  true {:6.1f}W  est {:6.1f}W  err {:5.1f}%".format(
                frame.get("t_s", 0.0),
                frame.get("true_w", float("nan")),
                frame.get("estimated_w", float("nan")),
                frame.get("error_pct", float("nan")),
            )
        )
    drift_doc = doc.get("drift")
    if drift_doc:
        print(
            f"  drift: slo {drift_doc.get('slo_pct')}%  "
            f"firing: {', '.join(drift_doc.get('firing', [])) or 'none'}"
        )
        for alert in (drift_doc.get("history") or [])[-8:]:
            top = ", ".join(
                f"{term}={watts:.1f}W" for term, watts in alert.get("top_terms", [])
            )
            print(
                f"    {alert['state']:>8}  {alert['subsystem']:8} "
                f"err {alert['error_pct']:5.1f}%  t={alert['timestamp_s']:.1f}s"
                + (f"  top: {top}" if top else "")
            )
    windows_doc = doc.get("windows")
    if windows_doc:
        print(
            f"  windows: {len(windows_doc.get('windows', []))} in bundle "
            f"(of {windows_doc.get('n_windows', '?')} recorded, "
            f"{windows_doc.get('window_s', '?')}s wide)"
        )
    attribution_doc = doc.get("attribution")
    if attribution_doc:
        attribution = attr_mod.Attribution.from_dict(attribution_doc)
        rows = [
            [sub, term, watts]
            for sub in attribution.subsystems()
            for term, watts in attribution.top_terms(sub, n=99)
        ]
        print()
        print(
            format_table(
                "Latest attribution (W)",
                ("subsystem", "term", "watts"),
                rows,
                precision=2,
            )
        )
        if attribution.residual_w:
            residuals = "  ".join(
                f"{sub} {watts:+.1f}W"
                for sub, watts in sorted(attribution.residual_w.items())
            )
            print(f"  residual (est-true): {residuals}")
    tail = doc.get("trace_tail") or []
    print(f"  trace events in tail: {len(tail)}")
    return 0


def _cmd_sweep(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    context: "ex.ExperimentContext",
) -> int:
    """``repro-power sweep``: fault-tolerant bulk simulation."""
    from repro.exec import RetryPolicy, sweep_specs

    names = (
        [n for n in args.workload.split(",") if n]
        if args.workload
        else list(PAPER_WORKLOADS)
    )
    unknown = []
    for name in names:
        try:
            get_workload(name)
        except KeyError:
            unknown.append(name)
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}")
    specs = [context.spec_for(name) for name in names]
    cache = context.cache
    if args.resume:
        if not cache.enabled:
            parser.error("--resume needs --cache-dir or REPRO_CACHE_DIR")
        done = sum(
            1
            for spec in specs
            if os.path.exists(cache.path_for(spec.key()) or "")
        )
        print(
            f"sweep: resuming — {done}/{len(specs)} spec(s) already "
            f"checkpointed in {cache.root}"
        )
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        base_delay=args.retry_delay,
        timeout_s=args.task_timeout,
    )
    result = sweep_specs(
        specs,
        n_workers=args.workers,
        cache=cache if cache.enabled else None,
        retry=retry,
        allow_partial=True,
    )
    rows = []
    for i, (name, run) in enumerate(zip(names, result.runs)):
        if run is None:
            rows.append([name, "FAILED", result.failed.get(i, "?")])
        else:
            source = "cache" if i not in result.simulated else "simulated"
            rows.append([name, source, f"{run.n_samples} windows"])
    print(
        format_table(
            f"Sweep of {len(names)} workload(s) over "
            f"{result.n_workers} worker(s)",
            ("workload", "status", "detail"),
            rows,
            precision=0,
        )
    )
    print(
        f"sweep: {result.cache_stats_hits} cache hit(s), "
        f"{len(result.simulated)} simulated, {result.retries} retried "
        f"task(s), {result.worker_failures} worker failure(s)"
        + (", degraded to serial" if result.degraded else "")
    )
    if obs.enabled():
        print(
            "sweep: counters — "
            f"sweep_retries_total={obs.counter('sweep_retries_total'):g} "
            "sweep_worker_failures_total="
            f"{obs.counter('sweep_worker_failures_total'):g} "
            "sweep_failed_specs_total="
            f"{obs.counter('sweep_failed_specs_total'):g}"
        )
    if result.failed:
        for i, error in sorted(result.failed.items()):
            print(f"sweep: PERMANENT FAILURE {names[i]}: {error}")
        return 1
    return 0


def _cmd_monitor(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    context: "ex.ExperimentContext",
) -> int:
    """``repro-power monitor``: live run with the HTTP endpoint up."""
    from repro.obs import drift as drift_mod
    from repro.obs.http import ObservabilityServer

    name = args.workload_opt or args.workload
    if args.nodes <= 0 and args.fleet <= 0 and not name:
        parser.error("'monitor' needs a workload (positional or --workload)")
    if args.nodes < 0:
        parser.error("--nodes must be positive")
    if args.fleet < 0:
        parser.error("--fleet must be positive")
    if args.fleet > 0 and args.nodes > 0:
        parser.error("--fleet and --nodes are mutually exclusive")
    perturb_lanes: "tuple[int, ...] | None" = None
    if args.perturb_lanes is not None:
        if args.fleet <= 0:
            parser.error("--perturb-lanes needs --fleet")
        if args.perturb is None:
            parser.error("--perturb-lanes needs --perturb")
        try:
            perturb_lanes = tuple(
                int(part)
                for part in args.perturb_lanes.split(",")
                if part.strip()
            )
        except ValueError:
            parser.error(
                "--perturb-lanes must be a comma-separated list of "
                "lane indices"
            )
        bad = [lane for lane in perturb_lanes if not 0 <= lane < args.fleet]
        if bad:
            parser.error(
                f"--perturb-lanes out of range for --fleet {args.fleet}: "
                + ",".join(map(str, bad))
            )

    obs.enable()
    slo = drift_mod.DEFAULT_SLO_PCT if args.slo is None else args.slo
    if args.fleet > 0:
        from repro.obs.fleet import FleetDriftMonitor

        # The vectorized monitor serves /alerts and drift-aware
        # /healthz exactly like the scalar one (same firing /
        # unresolved / to_json surface), with per-lane streams.
        drift = FleetDriftMonitor(args.fleet, slo_pct=slo)
    else:
        drift = drift_mod.DriftMonitor(slo_pct=slo)
    recorder = None
    if args.flight_dir:
        from repro.obs import flight as flight_mod

        recorder = flight_mod.get_global()
        if recorder is not None:
            recorder.drift = drift
    store = alerts = rule_engine = None
    if args.store:
        from repro.obs.alertmgr import AlertManager
        from repro.obs.rules import RuleEngine
        from repro.obs.tsdb import TSDB

        store = TSDB(args.store)
        rule_engine = RuleEngine()
        store.attach_rules(rule_engine)
        alerts = AlertManager(store=store)
        alerts.attach_drift(drift)
        print(f"monitor: persisting telemetry to {args.store}")
    endpoint = ObservabilityServer(
        drift=drift,
        flight=recorder,
        port=args.port,
        store=store,
        alerts=alerts,
        rules=rule_engine,
    )
    endpoint.phase = "training"
    try:
        endpoint.start()
    except OSError as error:
        print(f"monitor: {error.strerror or error}", file=sys.stderr)
        return 2
    # With --port 0 this prints the ephemeral port actually bound.
    print(
        f"monitor: endpoint at {endpoint.url()} "
        f"(routes: {' '.join(ObservabilityServer.ROUTES)})"
    )
    print("monitor: training trickle-down suite ...")
    suite = context.paper_suite()
    # Fleet mode perturbs per lane through the monitor instead of
    # forking a scaled suite, so the batched design-matrix pass stays
    # shared across calibrated and mis-calibrated lanes.
    scale_suite = args.perturb is not None and args.fleet <= 0
    active = suite.scaled(args.perturb) if scale_suite else suite
    if scale_suite:
        note = (
            f", restoring calibration at t={args.restore_at:g}s"
            if args.restore_at is not None
            else ""
        )
        print(
            f"monitor: estimator coefficients scaled x{args.perturb:g}{note}"
        )
    try:
        endpoint.phase = "running"
        if args.fleet > 0:
            code = _monitor_fleet(
                args, context, endpoint, drift, suite, name, perturb_lanes
            )
        elif args.nodes > 0:
            code = _monitor_cluster(args, context, endpoint, drift, suite, active, name)
        else:
            code = _monitor_server(args, context, endpoint, drift, suite, active, name)
        endpoint.phase = "done"
    finally:
        if args.telemetry:
            os.makedirs(args.telemetry, exist_ok=True)
            alerts_path = os.path.join(args.telemetry, "alerts.json")
            with open(alerts_path, "w", encoding="utf-8") as handle:
                json.dump(drift.to_json(), handle, indent=2, sort_keys=True)
            print(f"monitor: wrote alert log to {alerts_path}")
        if store is not None:
            # Short runs may never evict a window naturally; drain the
            # remainder, then commit everything in one final flush.
            if endpoint.windows is not None:
                endpoint.windows.drain()
            store.close()
            print(f"monitor: store committed to {args.store}")
        endpoint.stop()
    return code


def _cmd_serve(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    context: "ex.ExperimentContext",
) -> int:
    """``repro-power serve``: the long-lived streaming estimation service."""
    import signal
    from time import monotonic, sleep

    from repro.obs import drift as drift_mod
    from repro.obs.http import ObservabilityServer
    from repro.serve import EstimationService, LineSocketServer, SLOEngine

    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.replay is None and args.rate:
        parser.error("--rate needs --replay")
    nodes = args.nodes if args.nodes > 0 else 4
    obs.enable()
    slo_pct = drift_mod.DEFAULT_SLO_PCT if args.slo is None else args.slo
    recorder = None
    if args.flight_dir:
        from repro.obs import flight as flight_mod

        recorder = flight_mod.get_global()

    store = alerts = rule_engine = None
    if args.store:
        from repro.obs.alertmgr import AlertManager
        from repro.obs.rules import RuleEngine
        from repro.obs.tsdb import TSDB

        store = TSDB(args.store)
        rule_engine = RuleEngine()
        store.attach_rules(rule_engine)
        alerts = AlertManager(store=store)
        print(f"serve: persisting telemetry to {args.store}")
    endpoint = ObservabilityServer(
        flight=recorder,
        chaos=args.chaos,
        port=args.port,
        store=store,
        alerts=alerts,
        rules=rule_engine,
    )
    endpoint.phase = "training"
    try:
        endpoint.start()
    except OSError as error:
        print(f"serve: {error.strerror or error}", file=sys.stderr)
        return 2
    # With --port 0 this prints the ephemeral port actually bound.
    print(
        f"serve: endpoint at {endpoint.url()} "
        f"(POST {endpoint.url('/ingest')}, scrape /nodes /service /slo)"
    )
    print("serve: training trickle-down suite ...")
    suite = context.paper_suite()
    service = EstimationService(
        suite,
        shards=args.shards,
        queue_depth=args.queue_depth,
        stale_after_s=args.stale_after,
        drift_slo_pct=slo_pct,
        attribute=args.attribute,
        slo=SLOEngine(error_bound_pct=slo_pct, flight=recorder),
        flight=recorder,
    )
    endpoint.service = service
    if store is not None:
        service.attach_store(store, window_s=args.window)
        alerts.attach_slo(service.slo)
    service.start()
    socket_server = None
    if args.socket_port is not None:
        socket_server = LineSocketServer(service, port=args.socket_port)
        try:
            port = socket_server.start()
        except OSError as error:
            print(f"serve: {error}", file=sys.stderr)
            endpoint.stop()
            service.stop()
            return 2
        print(f"serve: socket line-protocol ingest on 127.0.0.1:{port}")
    print(
        f"serve: {args.shards} shard(s), queue depth {args.queue_depth}, "
        f"stale after {args.stale_after:g}s, drift SLO {slo_pct:g}%"
    )

    previous_sigterm = signal.getsignal(signal.SIGTERM)

    def _sigterm(signum, frame):  # noqa: ARG001
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    endpoint.phase = "running"
    code = 0
    try:
        if args.replay:
            _serve_replay(args, context, service, nodes)
        deadline = (
            monotonic() + args.serve_for
            if args.serve_for > 0
            else (None if args.replay is None else monotonic())
        )
        if deadline is None:
            print("serve: serving until interrupted (SIGINT/SIGTERM) ...")
        next_report = monotonic() + args.refresh
        while deadline is None or monotonic() < deadline:
            sleep(0.2)
            if monotonic() >= next_report:
                _print_serve_summary(service)
                _store_tick(endpoint, monotonic())
                next_report = monotonic() + args.refresh
        endpoint.phase = "done"
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down")
        endpoint.phase = "done"
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        _print_serve_summary(service)
        if args.telemetry:
            os.makedirs(args.telemetry, exist_ok=True)
            service_path = os.path.join(args.telemetry, "service.json")
            with open(service_path, "w", encoding="utf-8") as handle:
                json.dump(
                    service.service_document(), handle, indent=2, sort_keys=True,
                    default=str,
                )
            print(f"serve: wrote service state to {service_path}")
        if socket_server is not None:
            socket_server.stop()
        service.stop()
        if store is not None:
            # stop() drained the service's windows; record the final
            # alert state and commit.
            _store_tick(endpoint, monotonic())
            store.close()
            print(f"serve: store committed to {args.store}")
        endpoint.stop()
    return code


def _serve_replay(args, context, service, nodes: int) -> None:
    """Simulate ``nodes`` runs and stream their windows into the service."""
    from time import monotonic, sleep

    from repro.serve import frames_from_run
    from repro.simulator import simulate_workload

    spec = get_workload(args.replay)
    print(
        f"serve: replaying {args.replay} on {nodes} node(s) "
        f"({context.duration_s:g}s simulated each) ..."
    )
    streams = []
    for i in range(nodes):
        run = simulate_workload(
            spec,
            config=context.config,
            seed=context.seed + i,
            duration_s=context.duration_s,
        )
        streams.append(
            frames_from_run(
                run,
                f"node-{i}",
                frame_samples=64,
                events=service.required_events,
            )
        )
    # Round-robin across nodes so every shard sees interleaved load.
    min_len = min(len(stream) for stream in streams)
    lines = [line for group in zip(*streams) for line in group]
    for stream in streams:
        lines.extend(stream[min_len:])
    total = accepted = shed = 0
    started = monotonic()
    for line in lines:
        receipt = service.ingest(line, transport="replay")
        n = receipt["accepted"] + receipt["shed"]
        total += n
        accepted += receipt["accepted"]
        shed += receipt["shed"]
        if args.rate > 0:
            # Open-loop pacing: sleep to the schedule, never faster.
            due = started + total / args.rate
            delay = due - monotonic()
            if delay > 0:
                sleep(delay)
    elapsed = monotonic() - started
    print(
        f"serve: replay offered {total} sample(s) in {elapsed:.1f}s "
        f"({total / max(elapsed, 1e-9):,.0f}/s), accepted {accepted}, "
        f"shed {shed}"
    )


def _print_serve_summary(service) -> None:
    health = service.health()
    document = service.nodes_document()
    fleet = document["fleet"]
    power = fleet.get("power_w", {})
    burn = ",".join(health["slo_fast_burn"]) or "none"
    print(
        f"serve: status={health['status']:8} nodes={fleet['count']} "
        f"(stale {fleet['stale']})  samples={service.samples_total}  "
        f"shed={service.shed_samples_total}  "
        f"fleet={power.get('sum', float('nan')):.1f}W  fast-burn={burn}"
    )


def _report_alerts(drift, seen: int) -> int:
    """Print drift transitions recorded since index ``seen``."""
    history = drift.history()
    for alert in history[seen:]:
        top = ""
        if alert.top_terms:
            top = "  top: " + ", ".join(
                f"{term}={watts:.1f}W" for term, watts in alert.top_terms
            )
        lane = getattr(alert, "lane", -1)
        stream = (
            f"{alert.subsystem}[{lane}]" if lane >= 0 else alert.subsystem
        )
        print(
            f"monitor: ALERT {alert.state:>8}  {stream:8} "
            f"ewma err {alert.error_pct:5.1f}% "
            f"(threshold {alert.threshold_pct:.1f}%)  t={alert.timestamp_s:.1f}s"
            + top
        )
    return len(history)


def _attach_store_sink(endpoint, windows) -> None:
    """Route a monitor's evicted windows into the endpoint's store."""
    if endpoint.store is not None:
        from repro.obs.tsdb import WindowSink

        windows.on_evict = WindowSink(endpoint.store)


def _store_tick(endpoint, now_s: float) -> None:
    """Periodic store upkeep: sink closed windows, alerts, then flush.

    Closed windows persist eagerly (the sink is idempotent, so their
    eventual eviction is a no-op) — without this the store would trail
    the live registry by the whole sliding-window depth.  The flush
    evaluates recording rules at ``now_s`` and commits everything
    appended so far, so a killed run loses at most one refresh
    interval.
    """
    if endpoint.store is not None and endpoint.windows is not None:
        endpoint.windows.sink_closed(now_s)
    if endpoint.alerts is not None:
        endpoint.alerts.evaluate(now_s)
    if endpoint.store is not None:
        endpoint.store.flush(now_s)


def _monitor_server(
    args: argparse.Namespace,
    context: "ex.ExperimentContext",
    endpoint,
    drift,
    suite,
    active,
    name: str,
) -> int:
    from time import perf_counter

    from repro.core.estimator import SystemPowerEstimator
    from repro.obs.live import LiveMonitor
    from repro.simulator.system import Server

    spec = get_workload(name)
    server = Server(context.config, spec, seed=context.seed)
    monitor = LiveMonitor(
        SystemPowerEstimator(active, attribute=True),
        drift=drift,
        window_s=args.window,
        flight=endpoint.flight,
    )
    endpoint.windows = monitor.windows
    _attach_store_sink(endpoint, monitor.windows)
    if endpoint.flight is not None:
        endpoint.flight.windows = monitor.windows
    server.attach_monitor(monitor)

    ticks_per_s = max(1, int(round(1.0 / context.config.tick_s)))
    duration = max(1, int(round(args.duration)))
    restored = args.perturb is None or args.restore_at is None
    seen_alerts = 0
    next_report = args.refresh
    wall_start = perf_counter()
    print(f"monitor: running {name} for {duration}s of simulated time ...")
    for second in range(1, duration + 1):
        server.run_ticks(ticks_per_s)
        if not restored and server.now_s >= args.restore_at:
            monitor.set_suite(suite)
            restored = True
            print(f"monitor: t={server.now_s:6.1f}s  calibrated suite restored")
        seen_alerts = _report_alerts(drift, seen_alerts)
        _store_tick(endpoint, server.now_s)
        if second >= next_report:
            _print_live_summary(
                server.now_s,
                monitor.last,
                drift,
                second * ticks_per_s,
                perf_counter() - wall_start,
            )
            next_report += args.refresh
    server.detach_monitor()
    print(
        f"monitor: done — {monitor.n_windows} sampler window(s), "
        f"{len(drift.history())} alert transition(s), "
        f"firing now: {', '.join(drift.firing) or 'none'}"
    )
    return 0


def _monitor_fleet(
    args: argparse.Namespace,
    context: "ex.ExperimentContext",
    endpoint,
    drift,
    suite,
    name: "str | None",
    perturb_lanes: "tuple[int, ...] | None",
) -> int:
    from time import perf_counter

    from repro.obs.fleet import FleetMonitor
    from repro.simulator.fleet import FleetServer

    name = name or "gcc"
    spec = get_workload(name)
    seeds = [context.seed + lane for lane in range(args.fleet)]
    fleet = FleetServer(context.config, spec, seeds)
    monitor = FleetMonitor(
        suite,
        drift=drift,
        window_s=args.window,
        flight=endpoint.flight,
    )
    endpoint.windows = monitor.windows
    endpoint.fleet = monitor
    _attach_store_sink(endpoint, monitor.windows)
    if endpoint.flight is not None:
        endpoint.flight.windows = monitor.windows
    fleet.attach_fleet_monitor(monitor)

    if args.perturb is not None:
        lanes = (
            perturb_lanes
            if perturb_lanes is not None
            else tuple(range(args.fleet))
        )
        monitor.perturb_lanes(args.perturb, lanes)
        note = (
            f", restoring calibration at t={args.restore_at:g}s"
            if args.restore_at is not None
            else ""
        )
        print(
            f"monitor: lane(s) {','.join(map(str, lanes))} "
            f"scaled x{args.perturb:g}{note}"
        )

    ticks_per_s = max(1, int(round(1.0 / context.config.tick_s)))
    duration = max(1, int(round(args.duration)))
    restored = args.perturb is None or args.restore_at is None
    seen_alerts = 0
    next_report = args.refresh
    wall_start = perf_counter()
    print(
        f"monitor: fleet of {args.fleet} lane(s) running {name} for "
        f"{duration}s of simulated time ..."
    )
    for second in range(1, duration + 1):
        fleet.run_ticks(ticks_per_s)
        if not restored and fleet.now_s >= args.restore_at:
            # Flush first so windows captured under the perturbation
            # are judged with it still applied.
            monitor.flush()
            monitor.restore_lanes()
            restored = True
            print(f"monitor: t={fleet.now_s:6.1f}s  calibrated suite restored")
        monitor.flush()
        seen_alerts = _report_alerts(drift, seen_alerts)
        _store_tick(endpoint, fleet.now_s)
        if second >= next_report:
            _print_fleet_summary(
                fleet.now_s,
                monitor,
                second * ticks_per_s * args.fleet,
                perf_counter() - wall_start,
            )
            next_report += args.refresh
    monitor.flush()
    fleet.detach_fleet_monitor()
    firing = ",".join(map(str, drift.firing_lanes())) or "none"
    print(
        f"monitor: done — {monitor.n_windows} lane window(s) in "
        f"{monitor.n_flushes} flush(es), "
        f"{len(drift.history())} alert transition(s), "
        f"firing lanes: {firing}"
    )
    return 0


def _print_fleet_summary(
    now_s: float, monitor, ticks_done: int, wall_s: float
) -> None:
    summary = monitor.fleet_document()
    power = summary["power_w"]
    if not power["true"]:
        print(f"monitor: t={now_s:6.1f}s  (no lane window closed yet)")
        return
    error = summary.get("error_pct") or {}
    firing = ",".join(str(lane) for lane in summary["firing_lanes"]) or "-"
    ticks_per_s = ticks_done / wall_s if wall_s > 0 else 0.0
    print(
        f"monitor: t={now_s:6.1f}s  "
        f"true mean {power['true'].get('mean', 0.0):6.1f}W  "
        f"est mean {power.get('estimated', {}).get('mean', 0.0):6.1f}W  "
        f"err p95 {error.get('p95', float('nan')):4.1f}%  "
        f"firing lanes: {firing}  {ticks_per_s:,.0f} lane-ticks/s"
    )


def _print_live_summary(
    now_s: float, sample, drift, ticks_done: int, wall_s: float
) -> None:
    if sample is None:
        print(f"monitor: t={now_s:6.1f}s  (no sampler window closed yet)")
        return
    per_subsystem = "  ".join(
        f"{subsystem[:4]} {sample.estimated_w.get(subsystem, 0.0):5.1f}W"
        for subsystem in sorted(sample.true_w)
    )
    firing = ",".join(drift.firing) or "-"
    ticks_per_s = ticks_done / wall_s if wall_s > 0 else 0.0
    print(
        f"monitor: t={now_s:6.1f}s  true {sample.total_true_w:6.1f}W  "
        f"est {sample.total_estimated_w:6.1f}W  "
        f"err {sample.total_error_pct:4.1f}%  [{per_subsystem}]  "
        f"alerts: {firing}  {ticks_per_s:,.0f} ticks/s"
    )


def _monitor_cluster(
    args: argparse.Namespace,
    context: "ex.ExperimentContext",
    endpoint,
    drift,
    suite,
    active,
    name: "str | None",
) -> int:
    from repro.cluster import (
        Cluster,
        PowerAwareManager,
        diurnal_demand,
    )
    from repro.obs.live import ClusterObserver

    duration = max(1, int(round(args.duration)))
    service = name or "SPECjbb"
    cluster = Cluster(
        n_nodes=args.nodes,
        config=context.config,
        seed=context.seed,
        service_workload=service,
    )
    peak = max(1, int(cluster.capacity * 0.85))
    trough = max(1, cluster.capacity // 8)
    demand = diurnal_demand(
        duration,
        peak,
        trough,
        period_s=max(duration / 2.0, 60.0),
        seed=context.seed,
    )
    observer = ClusterObserver(
        suite=active,
        drift=drift,
        window_s=args.window,
        attribute=True,
        flight=endpoint.flight,
    )
    endpoint.windows = observer.windows
    _attach_store_sink(endpoint, observer.windows)
    if endpoint.flight is not None:
        endpoint.flight.windows = observer.windows
    manager = PowerAwareManager()
    restored = args.perturb is None or args.restore_at is None
    seen_alerts = 0
    next_report = args.refresh
    print(
        f"monitor: cluster of {args.nodes} node(s) serving {service}, "
        f"demand {trough}..{peak} threads over {duration}s ..."
    )
    total_energy_j = 0.0
    dropped = 0
    for t, threads in enumerate(demand):
        slice_trace = cluster.run(
            [threads], manager, observer=observer, start_s=float(t)
        )
        total_energy_j += slice_trace.energy_j
        dropped += slice_trace.dropped_thread_seconds
        now = float(t + 1)
        if not restored and now >= args.restore_at:
            observer.set_suite(suite)
            restored = True
            print(f"monitor: t={now:6.1f}s  calibrated suite restored")
        seen_alerts = _report_alerts(drift, seen_alerts)
        _store_tick(endpoint, now)
        if now >= next_report:
            firing = ",".join(drift.firing) or "-"
            error = (
                f"{observer.last.total_error_pct:4.1f}%"
                if observer.last is not None
                else "  n/a"
            )
            print(
                f"monitor: t={now:6.1f}s  demand {slice_trace.demand[-1]:3d}  "
                f"served {slice_trace.served[-1]:3d}  "
                f"nodes on {slice_trace.nodes_on[-1]}/{args.nodes}  "
                f"power {slice_trace.power_w[-1]:7.1f}W  est err {error}  "
                f"alerts: {firing}"
            )
            next_report += args.refresh
    print(
        f"monitor: done — energy {total_energy_j / 3600.0:.2f} Wh, "
        f"dropped {dropped} thread-second(s), "
        f"{len(drift.history())} alert transition(s), "
        f"firing now: {', '.join(drift.firing) or 'none'}"
    )
    return 0


def _print_telemetry(directory: str, cache_dir: "str | None") -> int:
    """Pretty-print the telemetry a previous ``--telemetry`` run dumped."""
    metrics_path = os.path.join(directory, obs.METRICS_JSON)
    trace_path = os.path.join(directory, obs.TRACE_JSONL)
    if not os.path.exists(metrics_path):
        print(
            f"no telemetry at {directory!r} (expected {obs.METRICS_JSON}); "
            "run any command with --telemetry first"
        )
        return 1
    with open(metrics_path, encoding="utf-8") as handle:
        data = json.load(handle)

    provenance = data.get("provenance", {})
    if provenance:
        print(
            "telemetry recorded {} on {} @ {}".format(
                provenance.get("date", "?"),
                provenance.get("host", "?"),
                provenance.get("git_sha", "?"),
            )
        )
        print()

    def label_str(labels: dict) -> str:
        if not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"

    counters = data.get("counters", [])
    gauges = data.get("gauges", [])
    if counters:
        rows = [
            [e["name"] + label_str(e.get("labels", {})), e["value"]]
            for e in counters
        ]
        print(format_table("Counters", ("metric", "value"), rows, precision=0))
        print()
    if gauges:
        rows = [
            [e["name"] + label_str(e.get("labels", {})), e["value"]]
            for e in gauges
        ]
        print(format_table("Gauges", ("metric", "value"), rows, precision=3))
        print()
    histograms = data.get("histograms", [])
    if histograms:
        rows = []
        for e in histograms:
            count = e["count"]
            mean = e["sum"] / count if count else 0.0
            # Quantiles straight from the bucket cells, so stage-latency
            # histograms read without scraping the Prometheus text.
            hist = obs.Histogram.from_dict(e)
            rows.append(
                [
                    e["name"] + label_str(e.get("labels", {})),
                    count,
                    mean,
                    hist.quantile(0.5),
                    hist.quantile(0.95),
                    hist.quantile(0.99),
                    e["sum"],
                ]
            )
        print(
            format_table(
                "Histograms",
                ("metric", "count", "mean", "p50", "p95", "p99", "sum"),
                rows,
                precision=4,
            )
        )
        print()

    if os.path.exists(trace_path):
        events = obs.read_jsonl(trace_path)
        if events:
            slowest = sorted(events, key=lambda e: e["dur_s"], reverse=True)[:10]
            rows = [
                [
                    event["name"],
                    event.get("attrs", {}).get("workload", ""),
                    event["dur_s"],
                ]
                for event in slowest
            ]
            print(
                format_table(
                    f"Slowest spans ({len(events)} event(s) total)",
                    ("span", "workload", "seconds"),
                    rows,
                    precision=4,
                )
            )
            print()

    from repro.exec import RunCache

    cache = RunCache(cache_dir or os.environ.get("REPRO_CACHE_DIR"))
    if cache.enabled:
        lifetime = cache.lifetime_stats()
        print(
            f"run cache at {cache.root}: lifetime {lifetime.describe()}, "
            f"hit ratio {lifetime.hit_ratio:.1%}"
        )
    return 0


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _cmd_query(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro-power query``: read a TSDB store from any process."""
    from repro.obs.tsdb import TSDB, parse_duration, parse_matchers

    if not args.store:
        parser.error("'query' needs --store DIR")
    name = args.workload
    if not name:
        parser.error("'query' needs a metric name (positional)")
    if not os.path.isdir(args.store):
        print(f"query: no store at {args.store!r}", file=sys.stderr)
        return 1
    db = TSDB(args.store)
    try:
        matchers = parse_matchers(args.label) or None
    except ValueError as error:
        parser.error(str(error))
    range_mode = any(
        value is not None
        for value in (args.start, args.end, args.range_s, args.step)
    )
    if not range_mode:
        results = db.query(name, matchers, at_s=args.at)
        if not results and not args.csv:
            print(f"query: no series matched {name}")
            return 1
        if args.csv:
            print("metric,labels,t_s,value")
            for series in results:
                print(
                    f"{name},{_label_str(series['labels'])},"
                    f"{series['t_s']:g},{series['value']:g}"
                )
        else:
            rows = [
                [name + _label_str(s["labels"]), s["t_s"], s["value"]]
                for s in results
            ]
            print(
                format_table(
                    f"{name} @ "
                    + (f"{args.at:g}s" if args.at is not None else "latest"),
                    ("series", "t_s", "value"),
                    rows,
                    precision=3,
                )
            )
        return 0 if results else 1

    start = args.start
    end = args.end
    if args.range_s is not None:
        span = parse_duration(args.range_s)
        anchor = end if end is not None else (db.max_t_s() or 0.0)
        start = anchor - span
        end = anchor
    by = None
    if args.by is not None:
        by = tuple(part for part in args.by.split(",") if part)
    results = db.query_range(
        name,
        matchers,
        start_s=start if start is not None else 0.0,
        end_s=end,
        step_s=parse_duration(args.step) if args.step else None,
        agg=args.agg,
        by=by,
        tier=args.tier,
    )
    if args.csv:
        print("metric,labels,tier,t_s,value")
        for series in results:
            labels = _label_str(series["labels"])
            for t_s, value in series["points"]:
                print(f"{name},{labels},{series['tier']},{t_s:g},{value:g}")
        return 0 if any(s["points"] for s in results) else 1
    rows = []
    for series in results:
        points = series["points"]
        if not points:
            continue
        values = [value for _, value in points]
        rows.append(
            [
                name + _label_str(series["labels"]),
                series["tier"],
                len(points),
                min(values),
                sum(values) / len(values),
                max(values),
                values[-1],
            ]
        )
    if not rows:
        print(f"query: no points for {name} in the requested range")
        return 1
    print(
        format_table(
            f"{name} [{args.agg}"
            + (f", step {args.step}" if args.step else "")
            + "]",
            ("series", "tier", "points", "min", "mean", "max", "last"),
            rows,
            precision=3,
        )
    )
    return 0


def _cmd_obs_store(args: argparse.Namespace) -> int:
    """``repro-power obs --store``: per-metric summary of a TSDB store."""
    from repro.obs.tsdb import TSDB, parse_duration

    if not os.path.isdir(args.store):
        print(
            f"no store at {args.store!r}; run monitor/serve/datacenter "
            "with --store first"
        )
        return 1
    db = TSDB(args.store)
    names = db.names()
    if not names:
        print(f"store at {args.store} holds no series yet")
        return 1
    newest = db.max_t_s() or 0.0
    span = parse_duration(args.range_s) if args.range_s else 300.0
    rows = []
    for name in names:
        for series in db.query_range(
            name, start_s=newest - span, end_s=newest, tier=args.tier
        ):
            points = series["points"]
            if not points:
                continue
            values = [value for _, value in points]
            rows.append(
                [
                    name + _label_str(series["labels"]),
                    series["tier"],
                    len(points),
                    min(values),
                    sum(values) / len(values),
                    max(values),
                    values[-1],
                ]
            )
    print(
        format_table(
            f"Store at {args.store}: last {span:g}s "
            f"({len(names)} metric(s))",
            ("series", "tier", "points", "min", "mean", "max", "last"),
            rows,
            precision=3,
        )
    )
    summary = db.document()
    shards = summary["shards"]
    appended = sum(entry["appended"] for entry in shards.values())
    segments = sum(
        count
        for entry in shards.values()
        for count in entry["segments"].values()
    )
    print(
        f"store: {len(shards)} metric shard(s), "
        f"{appended} sample(s) appended lifetime, "
        f"{segments} sealed segment(s), {summary['flushes']} flush(es)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
