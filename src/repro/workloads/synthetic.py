"""Synthetic workloads: idle and the paper's DiskLoad generator.

DiskLoad is the paper's own construction (Section 3.2.2): each instance
creates a large (1 GB) file, overwrites its contents — dirtying roughly
an OS-disk-cache worth of pages in main memory — and then calls
``sync()`` to force the modified pages to disk.  The write phase keeps
memory busy with stores; the flush phase keeps it busy with DMA reads,
which is why DiskLoad produces the highest sustained memory, I/O and
disk power of all twelve workloads while the disks themselves barely
move (+2.8 % — no power-saving modes to leave).
"""

from __future__ import annotations

from repro.workloads.base import Phase, PhaseBehavior, ThreadPlan, WorkloadSpec, staggered

#: A do-nothing behaviour: the machine executes only the OS timer tick.
_IDLE_BEHAVIOR = PhaseBehavior(
    uops_per_cycle=0.05,
    l3_load_misses_per_kuop=0.3,
    tlb_misses_per_kuop=0.01,
    uncacheable_per_s=300.0,
    speculation_factor=0.0,
    blocking_fraction=0.995,
)


def idle() -> WorkloadSpec:
    """An idle machine: scheduler slack, HLT, timer interrupts only."""
    return WorkloadSpec(
        name="idle",
        threads=(ThreadPlan(phases=(Phase(60.0, _IDLE_BEHAVIOR, "idle"),)),),
        smt_yield=0.5,
        variability=0.4,
        description="idle system (timer tick and background daemons only)",
    )


def netload() -> WorkloadSpec:
    """Extension workload: a static-content network server.

    Not part of the paper's twelve (its dbt-2 ran without network
    clients); exercises the Figure-1 network path: NIC DMA into memory,
    coalesced interrupts on the network vector, I/O-chip switching.
    Serving threads do light protocol work and stream data out.
    """
    serve = PhaseBehavior(
        uops_per_cycle=1.1,
        l3_load_misses_per_kuop=1.4,
        writeback_ratio=0.40,
        tlb_misses_per_kuop=0.15,
        streamability=0.60,
        memory_sensitivity=0.50,
        speculation_factor=0.20,
        blocking_fraction=0.55,
        net_rx_bps=1.5e6,     # requests in
        net_tx_bps=11.0e6,    # content out
        disk_read_bps=1.0e6,  # cold objects from disk
        page_cache_hit_ratio=0.97,
    )
    lull = serve.scaled(net_tx_bps=0.35, net_rx_bps=0.5, uops_per_cycle=0.7)
    return WorkloadSpec(
        name="netload",
        threads=staggered(
            [Phase(17.0, serve, "serve"), Phase(7.0, lull, "lull")],
            n_threads=8,
            stagger_s=20.0,
        ),
        smt_yield=0.70,
        variability=0.12,
        description="extension: network content server (NIC DMA + interrupts)",
    )


def diskload() -> WorkloadSpec:
    """The paper's synthetic disk workload: overwrite then sync."""
    modify = PhaseBehavior(
        uops_per_cycle=0.52,
        l3_load_misses_per_kuop=7.0,
        writeback_ratio=1.05,  # store-dominated: most misses evict dirty
        tlb_misses_per_kuop=0.45,
        streamability=0.70,
        memory_sensitivity=0.40,
        speculation_factor=0.15,
        blocking_fraction=0.12,
        disk_write_bps=16.0e6,  # dirtying page-cache pages
        page_cache_hit_ratio=1.0,
    )
    sync_flush = PhaseBehavior(
        uops_per_cycle=0.42,
        l3_load_misses_per_kuop=1.3,
        writeback_ratio=0.45,
        tlb_misses_per_kuop=0.20,
        streamability=0.75,
        memory_sensitivity=0.60,
        speculation_factor=0.10,
        sync_file=True,
        blocking_fraction=0.74,  # waiting for the flush to finish
    )
    return WorkloadSpec(
        name="DiskLoad",
        threads=staggered(
            [Phase(11.0, modify, "modify"), Phase(6.0, sync_flush, "sync")],
            n_threads=8,
            stagger_s=20.0,
        ),
        smt_yield=0.62,
        variability=0.08,
        description="synthetic disk workload: overwrite ~cache-sized file, sync()",
    )
