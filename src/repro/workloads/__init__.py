"""Workload behaviour profiles for the simulated server.

Each workload is a :class:`~repro.workloads.base.WorkloadSpec`: a set of
threads, each with a phase-structured stochastic behaviour profile.
Profiles are calibrated against the paper's Table 1/2 characterisation
(which workload stresses which subsystem, saturation points, staggered
thread starts for training variation).
"""

from repro.workloads.base import Phase, PhaseBehavior, ThreadPlan, WorkloadSpec
from repro.workloads.registry import (
    PAPER_WORKLOADS,
    VALIDATION_WORKLOADS,
    get_workload,
    list_workloads,
)

__all__ = [
    "Phase",
    "PhaseBehavior",
    "ThreadPlan",
    "WorkloadSpec",
    "PAPER_WORKLOADS",
    "VALIDATION_WORKLOADS",
    "get_workload",
    "list_workloads",
]
