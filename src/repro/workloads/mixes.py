"""Heterogeneous workload mixes.

The paper restricts itself to *homogeneous* combinations ("In this
study we only consider homogeneous combinations of the workloads",
Section 3.2.2).  Real consolidated servers run mixes, and a model
trained on homogeneous runs is only useful if it transfers to them —
so this extension builds mixed workloads from the registry profiles and
the benchmarks check that the trickle-down suite holds up.

A mix takes threads from several donor workloads.  Global workload
knobs that cannot be split per-thread (SMT yield, variability) are
blended weighted by thread count; this is the approximation a real
scheduler would face too (a gcc thread sharing a package with an mcf
thread gets neither workload's exact SMT behaviour).
"""

from __future__ import annotations

from repro.workloads.base import ThreadPlan, WorkloadSpec
from repro.workloads.registry import get_workload


def mix(
    components: "dict[str, int]",
    name: "str | None" = None,
    stagger_s: float = 15.0,
) -> WorkloadSpec:
    """Build a mixed workload from registry components.

    Args:
        components: workload name -> number of threads to take from it
            (taken in plan order; a workload's own staggering is
            replaced by the mix's).
        name: mix name; defaults to e.g. ``mix(gcc:4+mcf:4)``.
        stagger_s: start-time spacing across all mixed threads.
    """
    if not components:
        raise ValueError("a mix needs at least one component")
    plans: "list[ThreadPlan]" = []
    total_threads = 0
    smt_yield = 0.0
    variability = 0.0
    background_dma = 0.0
    for workload_name, count in components.items():
        if count < 1:
            raise ValueError(f"{workload_name}: thread count must be >= 1")
        donor = get_workload(workload_name)
        if count > donor.n_threads:
            raise ValueError(
                f"{workload_name} provides {donor.n_threads} threads; "
                f"{count} requested"
            )
        for plan in donor.threads[:count]:
            plans.append(
                ThreadPlan(
                    phases=plan.phases,
                    start_time_s=len(plans) * stagger_s,
                    loop=plan.loop,
                )
            )
        total_threads += count
        smt_yield += donor.smt_yield * count
        variability += donor.variability * count
        background_dma += donor.background_dma_bps * count / donor.n_threads
    label = name or "mix(" + "+".join(
        f"{wl}:{n}" for wl, n in components.items()
    ) + ")"
    return WorkloadSpec(
        name=label,
        threads=tuple(plans),
        description="heterogeneous mix: "
        + ", ".join(f"{n}x {wl}" for wl, n in components.items()),
        smt_yield=min(1.0, max(0.5, smt_yield / total_threads)),
        variability=variability / total_threads,
        background_dma_bps=background_dma,
    )


#: Ready-made mixes used by the generalisation benchmarks.
STANDARD_MIXES: "tuple[dict[str, int], ...]" = (
    {"gcc": 4, "mcf": 4},          # compute + memory pressure
    {"SPECjbb": 4, "DiskLoad": 4},  # balanced server + disk churn
    {"mesa": 2, "lucas": 2, "dbt-2": 4},  # three-way consolidation
)
