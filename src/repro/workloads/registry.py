"""Name -> workload lookup and the paper's canonical workload sets."""

from __future__ import annotations

from typing import Callable

from repro.workloads import commercial, spec2000, synthetic
from repro.workloads.base import WorkloadSpec

_FACTORIES: "dict[str, Callable[[], WorkloadSpec]]" = {
    "idle": synthetic.idle,
    "gcc": spec2000.gcc,
    "mcf": spec2000.mcf,
    "vortex": spec2000.vortex,
    "art": spec2000.art,
    "lucas": spec2000.lucas,
    "mesa": spec2000.mesa,
    "mgrid": spec2000.mgrid,
    "wupwise": spec2000.wupwise,
    "dbt-2": commercial.dbt2,
    "SPECjbb": commercial.specjbb,
    "DiskLoad": synthetic.diskload,
    "netload": synthetic.netload,
}

#: Row order of the paper's Table 1/2.
PAPER_WORKLOADS: tuple[str, ...] = (
    "idle",
    "gcc",
    "mcf",
    "vortex",
    "art",
    "lucas",
    "mesa",
    "mgrid",
    "wupwise",
    "dbt-2",
    "SPECjbb",
    "DiskLoad",
)

#: The validation set of Section 3.2.2 (same twelve runs).
VALIDATION_WORKLOADS = PAPER_WORKLOADS

#: Extension workloads beyond the paper's evaluation set.
EXTENSION_WORKLOADS: tuple[str, ...] = ("netload",)

#: Row order of Table 3 (integer + commercial + synthetic).
INTEGER_TABLE_WORKLOADS: tuple[str, ...] = (
    "idle",
    "gcc",
    "mcf",
    "vortex",
    "dbt-2",
    "SPECjbb",
    "DiskLoad",
)

#: Row order of Table 4 (floating point).
FP_TABLE_WORKLOADS: tuple[str, ...] = ("art", "lucas", "mesa", "mgrid", "wupwise")


def list_workloads() -> "tuple[str, ...]":
    """All registered workload names: the paper's twelve + extensions."""
    return PAPER_WORKLOADS + EXTENSION_WORKLOADS


def get_workload(name: str) -> WorkloadSpec:
    """Build the named workload spec.

    Raises KeyError with the available names when unknown.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(PAPER_WORKLOADS)}"
        ) from None
    return factory()
