"""SPEC CPU 2000 behaviour profiles.

Eight of the paper's workloads come from SPEC CPU 2000, run as eight
homogeneous instances with staggered starts (30 s apart) so the models
can be trained over a wide utilisation range.  The profiles below are
behavioural stand-ins calibrated to the paper's Table 1/2
characterisation rather than instruction-accurate replays:

* integer: gcc (CPU-bound, saturates at four threads because SMT adds
  nothing), mcf (pointer chasing, CPI > 10 under load, heavy
  speculative window-search power), vortex (highest CPU power);
* floating point: art, lucas (highest memory power), mesa (CPU-bound
  FP), mgrid and wupwise (streaming, memory-heavy).

Each workload alternates between a few program phases (loop nests,
allocation/rebuild passes) so traces show realistic structure.
"""

from __future__ import annotations

from repro.workloads.base import Phase, PhaseBehavior, WorkloadSpec, staggered

#: Number of instances the paper runs (one per hardware thread).
N_INSTANCES = 8
#: Thread start stagger used in the paper's traces.
STAGGER_S = 30.0


def _spec(name, phases, smt_yield, variability=0.05, description=""):
    return WorkloadSpec(
        name=name,
        threads=staggered(phases, N_INSTANCES, STAGGER_S),
        smt_yield=smt_yield,
        variability=variability,
        description=description,
    )


def gcc() -> WorkloadSpec:
    """Compiler: integer, CPU-bound, phase-rich, SMT-unfriendly."""
    parse = PhaseBehavior(
        uops_per_cycle=1.17,
        l3_load_misses_per_kuop=1.4,
        writeback_ratio=0.40,
        tlb_misses_per_kuop=0.06,
        streamability=0.45,
        memory_sensitivity=0.55,
        speculation_factor=0.12,
        wrongpath_fraction=0.16,
    )
    optimize = parse.scaled(uops_per_cycle=1.15, l3_load_misses_per_kuop=0.55)
    codegen = parse.scaled(uops_per_cycle=0.95, l3_load_misses_per_kuop=1.35)
    return _spec(
        "gcc",
        [
            Phase(22.0, parse, "parse"),
            Phase(30.0, optimize, "optimize"),
            Phase(18.0, codegen, "codegen"),
        ],
        smt_yield=0.5,
        variability=0.12,
        description="SPEC CPU2000 176.gcc, 8 staggered instances",
    )


def mcf() -> WorkloadSpec:
    """Network simplex: pointer chasing, memory bound, CPI > 10.

    The speculative window-search power (the processor hunting for
    ready instructions while fetch starves) is what makes the paper's
    fetch-based CPU model underestimate mcf by ~12 %.
    """
    chase = PhaseBehavior(
        uops_per_cycle=1.45,
        l3_load_misses_per_kuop=3.2,
        writeback_ratio=0.30,
        cache_pressure=0.55,
        tlb_misses_per_kuop=0.9,
        streamability=0.45,
        memory_sensitivity=1.0,
        speculation_factor=0.92,
        wrongpath_fraction=0.22,
        disk_read_bps=0.4e6,  # light paging churn on the huge arcs array
        disk_write_bps=0.3e6,
        page_cache_hit_ratio=0.75,
    )
    rebuild = chase.scaled(
        l3_load_misses_per_kuop=0.75,
        uops_per_cycle=1.1,
        speculation_factor=0.75,
    )
    return _spec(
        "mcf",
        [Phase(42.0, chase, "simplex"), Phase(9.0, rebuild, "rebuild")],
        smt_yield=0.72,
        variability=0.10,
        description="SPEC CPU2000 181.mcf, 8 staggered instances",
    )


def vortex() -> WorkloadSpec:
    """Object database: integer, highest CPU power of the suite."""
    transact = PhaseBehavior(
        uops_per_cycle=1.58,
        l3_load_misses_per_kuop=0.75,
        writeback_ratio=0.45,
        tlb_misses_per_kuop=0.10,
        streamability=0.40,
        memory_sensitivity=0.45,
        speculation_factor=0.18,
        wrongpath_fraction=0.14,
    )
    lookup = transact.scaled(uops_per_cycle=0.9, l3_load_misses_per_kuop=1.25)
    return _spec(
        "vortex",
        [Phase(35.0, transact, "transact"), Phase(12.0, lookup, "lookup")],
        smt_yield=0.58,
        description="SPEC CPU2000 255.vortex, 8 staggered instances",
    )


def art() -> WorkloadSpec:
    """Neural-network image recognition: FP, memory-intensive."""
    scan = PhaseBehavior(
        uops_per_cycle=0.87,
        fp_fraction=0.45,
        l3_load_misses_per_kuop=1.95,
        writeback_ratio=0.35,
        tlb_misses_per_kuop=0.08,
        streamability=0.55,
        memory_sensitivity=0.72,
        speculation_factor=0.18,
    )
    match = scan.scaled(l3_load_misses_per_kuop=0.7, uops_per_cycle=1.25)
    return _spec(
        "art",
        [Phase(38.0, scan, "scan"), Phase(10.0, match, "match")],
        smt_yield=0.68,
        variability=0.03,
        description="SPEC CPU2000 179.art, 8 staggered instances",
    )


def lucas() -> WorkloadSpec:
    """Lucas-Lehmer FFT: streaming FP, highest memory power."""
    fft = PhaseBehavior(
        uops_per_cycle=0.71,
        fp_fraction=0.60,
        l3_load_misses_per_kuop=7.0,
        writeback_ratio=0.55,
        tlb_misses_per_kuop=0.05,
        streamability=0.92,
        memory_sensitivity=0.34,
        speculation_factor=0.12,
        wrongpath_fraction=0.06,
    )
    square = fft.scaled(l3_load_misses_per_kuop=0.85, uops_per_cycle=1.1)
    return _spec(
        "lucas",
        [Phase(45.0, fft, "fft"), Phase(11.0, square, "square")],
        smt_yield=0.75,
        description="SPEC CPU2000 189.lucas, 8 staggered instances",
    )


def mesa() -> WorkloadSpec:
    """3-D rendering library: FP but CPU-bound; the paper's memory
    training workload for the L3-miss model (its Figure 3)."""
    render = PhaseBehavior(
        uops_per_cycle=1.18,
        fp_fraction=0.35,
        l3_load_misses_per_kuop=0.75,
        writeback_ratio=0.35,
        tlb_misses_per_kuop=0.03,
        streamability=0.5,
        memory_sensitivity=0.40,
        speculation_factor=0.14,
        wrongpath_fraction=0.10,
    )
    raster = render.scaled(uops_per_cycle=0.85, l3_load_misses_per_kuop=1.5)
    return _spec(
        "mesa",
        [Phase(28.0, render, "render"), Phase(14.0, raster, "rasterize")],
        smt_yield=0.60,
        description="SPEC CPU2000 177.mesa, 8 staggered instances",
    )


def mgrid() -> WorkloadSpec:
    """Multigrid solver: streaming FP stencil, memory-heavy."""
    smooth = PhaseBehavior(
        uops_per_cycle=1.25,
        fp_fraction=0.55,
        l3_load_misses_per_kuop=5.6,
        writeback_ratio=0.50,
        tlb_misses_per_kuop=0.05,
        streamability=0.88,
        memory_sensitivity=0.38,
        speculation_factor=0.18,
        wrongpath_fraction=0.05,
    )
    restrict = smooth.scaled(l3_load_misses_per_kuop=0.6, uops_per_cycle=1.05)
    return _spec(
        "mgrid",
        [Phase(40.0, smooth, "smooth"), Phase(8.0, restrict, "restrict")],
        smt_yield=0.70,
        description="SPEC CPU2000 172.mgrid, 8 staggered instances",
    )


def wupwise() -> WorkloadSpec:
    """Lattice QCD: FP, both CPU- and memory-hungry."""
    bicg = PhaseBehavior(
        uops_per_cycle=1.85,
        fp_fraction=0.60,
        l3_load_misses_per_kuop=2.3,
        writeback_ratio=0.50,
        tlb_misses_per_kuop=0.04,
        streamability=0.85,
        memory_sensitivity=0.28,
        speculation_factor=0.16,
        wrongpath_fraction=0.07,
    )
    gamma = bicg.scaled(l3_load_misses_per_kuop=0.75, uops_per_cycle=1.15)
    return _spec(
        "wupwise",
        [Phase(36.0, bicg, "bicg"), Phase(9.0, gamma, "gamma")],
        smt_yield=0.72,
        description="SPEC CPU2000 168.wupwise, 8 staggered instances",
    )


INTEGER_SPEC = ("gcc", "mcf", "vortex")
FP_SPEC = ("art", "lucas", "mesa", "mgrid", "wupwise")
