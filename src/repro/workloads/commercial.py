"""Commercial server workloads: dbt-2 (OLTP) and SPECjbb (server Java).

dbt-2 approximates TPC-C through PostgreSQL with real disk access; on
the paper's machine it is disk-limited, so CPU sits barely above idle
while the disks seek continuously.  SPECjbb is the balanced in-memory
counterpart: it sustains ~61 % of peak CPU and ~84 % of peak memory
power without touching the disks.
"""

from __future__ import annotations

from repro.workloads.base import Phase, PhaseBehavior, ThreadPlan, WorkloadSpec, staggered


def dbt2() -> WorkloadSpec:
    """TPC-C-like OLTP, disk-limited (too few spindles for 4 CPUs)."""
    transaction = PhaseBehavior(
        uops_per_cycle=1.3,
        l3_load_misses_per_kuop=2.6,
        writeback_ratio=0.45,
        tlb_misses_per_kuop=0.30,
        streamability=0.25,
        memory_sensitivity=0.70,
        speculation_factor=0.35,
        wrongpath_fraction=0.18,
        uncacheable_per_s=9000.0,
        disk_read_bps=0.30e6,
        disk_write_bps=0.22e6,
        page_cache_hit_ratio=0.90,
        blocking_fraction=0.96,  # waiting on the saturated disks
    )
    checkpoint = transaction.scaled(disk_write_bps=2.2, blocking_fraction=0.80)
    threads = tuple(
        ThreadPlan(
            phases=(
                Phase(25.0, transaction, "transactions"),
                Phase(6.0, checkpoint, "checkpoint"),
            ),
            start_time_s=i * 5.0,
        )
        for i in range(8)
    )
    return WorkloadSpec(
        name="dbt-2",
        threads=threads,
        smt_yield=0.75,
        variability=0.28,
        description="OSDL dbt-2 (TPC-C-like) on PostgreSQL, disk-limited",
    )


def specjbb() -> WorkloadSpec:
    """Server-side Java: warehouses with think time, no disk I/O."""
    warehouse = PhaseBehavior(
        uops_per_cycle=2.0,
        l3_load_misses_per_kuop=2.0,
        writeback_ratio=0.50,
        tlb_misses_per_kuop=0.20,
        streamability=0.35,
        memory_sensitivity=0.60,
        speculation_factor=0.30,
        wrongpath_fraction=0.15,
        blocking_fraction=0.53,
    )
    gc_pause = warehouse.scaled(
        uops_per_cycle=0.65,
        l3_load_misses_per_kuop=2.4,
        blocking_fraction=0.35,
    )
    return WorkloadSpec(
        name="SPECjbb",
        threads=staggered(
            [Phase(30.0, warehouse, "warehouse"), Phase(4.0, gc_pause, "gc")],
            n_threads=8,
            stagger_s=12.0,
        ),
        smt_yield=0.70,
        variability=0.24,
        description="SPECjbb2005-like server Java, 8 warehouses",
    )
