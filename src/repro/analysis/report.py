"""Assemble the paper-vs-measured record (EXPERIMENTS.md).

``python -m repro.cli report`` (or :func:`build_report`) runs every
table and figure experiment, renders measured values next to the
paper's, and returns the markdown document that is checked in as
EXPERIMENTS.md.
"""

from __future__ import annotations

import io

from repro.analysis.experiments import (
    ExperimentContext,
    FigureResult,
    TableResult,
    figure2_cpu_model,
    figure3_memory_l3,
    figure4_prefetch_bus,
    figure5_memory_bus,
    figure6_disk_model,
    figure7_io_model,
    table1_average_power,
    table2_power_stddev,
    table3_integer_errors,
    table4_fp_errors,
)
from repro.core.events import Subsystem
from repro.core.validation import average_error, dc_adjusted_error


def _markdown_table(result: TableResult, precision: int = 2) -> str:
    out = io.StringIO()
    headers = list(result.headers)
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join(["---"] * len(headers)) + "|\n")
    for row, paper_row in zip(result.rows, result.paper_rows):
        cells = [str(row[0])]
        for measured, paper in zip(row[1:], paper_row[1:]):
            cells.append(f"{measured:.{precision}f} *({paper:.{precision}f})*")
        out.write("| " + " | ".join(cells) + " |\n")
    return out.getvalue()


def _figure_section(result: FigureResult) -> str:
    paper = (
        f"paper quotes ~{result.paper_error_pct:g} %"
        if result.paper_error_pct is not None
        else "no paper error quoted"
    )
    return (
        f"**{result.title}**  \n"
        f"Average error: **{result.avg_error_pct:.2f} %** ({paper}).  \n"
        f"Measured {result.measured.mean():.1f} W "
        f"[{result.measured.min():.1f}, {result.measured.max():.1f}]; "
        f"modeled {result.modeled.mean():.1f} W "
        f"[{result.modeled.min():.1f}, {result.modeled.max():.1f}] "
        f"over {len(result.measured)} one-second samples.\n"
    )


def build_report(context: "ExperimentContext | None" = None) -> str:
    """Run every experiment and return the EXPERIMENTS.md markdown."""
    context = context or ExperimentContext()
    out = io.StringIO()
    out.write("# EXPERIMENTS — paper vs. measured\n\n")
    out.write(
        "Every table and figure of Bircher & John (ISPASS 2007), regenerated "
        "on the simulated server. Values are `measured *(paper)*`. Absolute "
        "Watts depend on the substrate; the reproduction target is the "
        "*shape*: subsystem rankings, model failure modes, error bands.\n\n"
        f"Configuration: seed={context.seed}, duration={context.duration_s:g}s "
        f"per workload, tick={context.config.tick_s * 1e3:g}ms.\n\n"
    )

    for builder in (table1_average_power, table2_power_stddev):
        result = builder(context)
        out.write(f"## {result.title}\n\n")
        out.write(_markdown_table(result))
        out.write("\n")

    suite = context.paper_suite()
    out.write("## Fitted models (Equations 1-5 analogues)\n\n```\n")
    out.write(suite.describe())
    out.write("\n```\n\n")
    out.write("L3-miss memory model (Equation 2 analogue, ablation):\n\n```\n")
    out.write(context.l3_suite().model(Subsystem.MEMORY).describe())
    out.write("\n```\n\n")

    for builder in (table3_integer_errors, table4_fp_errors):
        result = builder(context)
        out.write(f"## {result.title}\n\n")
        out.write(_markdown_table(result))
        out.write("\n")

    out.write("## Figures\n\n")
    for builder in (
        figure2_cpu_model,
        figure3_memory_l3,
        figure5_memory_bus,
        figure6_disk_model,
        figure7_io_model,
    ):
        out.write(_figure_section(builder(context)))
        out.write("\n")

    fig4 = figure4_prefetch_bus(context)
    n = len(fig4.timestamps)
    quarter = max(1, n // 4)
    out.write(f"**{fig4.title}**  \n")
    for label, series in fig4.series.items():
        out.write(
            f"{label}: {series[:quarter].mean():.0f} -> "
            f"{series[-quarter:].mean():.0f} tx/Mcycle "
            "(first vs last quarter)  \n"
        )
    out.write(
        "\nPrefetch traffic grows with congestion while demand misses "
        "saturate — the mechanism behind the L3-miss model failure "
        "(Section 4.2.2 of the paper).\n\n"
    )

    # DC-adjusted errors the paper quotes in Sections 4.2.3/4.2.4.
    disk = figure6_disk_model(context)
    io_fig = figure7_io_model(context)
    disk_dc = dc_adjusted_error(disk.modeled, disk.measured, 21.6)
    io_raw = average_error(io_fig.modeled, io_fig.measured)
    io_dc = dc_adjusted_error(io_fig.modeled, io_fig.measured, 32.65)
    out.write("## DC-offset-adjusted errors (Sections 4.2.3-4.2.4)\n\n")
    out.write(
        f"- Disk model on DiskLoad, DC-adjusted: **{disk_dc:.1f} %** "
        "(paper: 1.75 %)\n"
        f"- I/O model on DiskLoad: raw **{io_raw:.2f} %** (paper < 1 %), "
        f"DC-adjusted **{io_dc:.1f} %** (paper: 32 %)\n"
    )

    out.write(
        "\n## Extensions (beyond the paper's evaluation)\n\n"
        "Regenerated by `pytest benchmarks/bench_extensions.py "
        "benchmarks/bench_sensitivity.py benchmarks/bench_dvfs_models.py "
        "benchmarks/bench_cluster.py --benchmark-only`:\n\n"
        "- **Per-vector interrupt attribution**: with a NIC active, a "
        "disk model keyed on total interrupts mispredicts by >3x the "
        "per-vector model's error — why the paper simulated vector "
        "information from `/proc/interrupts`.\n"
        "- **Thermal detection lead**: the counter-based power estimate "
        "sees a load step tens of seconds before a realistic "
        "temperature sensor (the Section-1 motivation, measured).\n"
        "- **DVFS**: a nominal-trained suite misestimates CPU power by "
        ">50 % at a lower operating point; a per-state bank stays under "
        "~1 %; a frequency-aware single model lands in between because "
        "the paper's cross-term-free family cannot express V^2*f x "
        "activity.\n"
        "- **PMU multiplexing**: the eight-event model survives on 2-4 "
        "counter slots with graceful error growth (<5 % total).\n"
        "- **Training budget**: the staggered-start protocol makes the "
        "recipe robust down to ~10 % of the training trace.\n"
        "- **Mixes**: homogeneous-trained models hold (<10 % total "
        "error) on heterogeneous consolidation mixes.\n"
        "- **Ensemble power-down**: Rajamani-style consolidation saves "
        "15-30 % cluster energy on the simulated diurnal demand, with "
        "the boot-headroom service trade-off quantified.\n"
    )

    out.write(
        "\n## Known deviations from the paper\n\n"
        "1. **Heavy-FP memory error sign.** The paper notes its memory "
        "model *under*estimates the high-sustained-power FP workloads "
        "(lucas/mgrid/wupwise). On the simulated DRAM the mcf-trained "
        "quadratic *over*estimates them instead: those workloads run at "
        "bus-transaction rates ~2x beyond the training range, and the "
        "fitted curvature extrapolates high. Error *magnitudes* match the "
        "paper's Table 4 band (~10-17 %) and the cause is the same model "
        "blind spot (read/write mix and bank behaviour invisible to the "
        "CPU counters).\n"
        "2. **Chipset per-workload means.** The paper measured specific "
        "derived-chipset offsets per workload (e.g. mesa at 16.8 W). The "
        "simulator draws each run's derivation offset from a seeded "
        "distribution, so individual workloads land at different offsets "
        "than the paper's, while the within-run flatness and the 0.5-13 % "
        "constant-model error band are preserved.\n"
        "3. **Table 2 magnitudes.** Within-workload power variation "
        "depends on program-phase amplitude, which behavioural profiles "
        "only approximate; the subsystem ordering (CPU >> memory >> "
        "chipset/I/O/disk; SPECjbb and DiskLoad most variable) is "
        "reproduced, absolute standard deviations are smaller.\n"
        "4. **Interrupt-vector accounting.** Like the paper, per-vector "
        "interrupt counts come from the OS (`/proc/interrupts` analogue), "
        "not from a hardware counter event.\n"
    )
    return out.getvalue()
