"""One entry point per table and figure of the paper's evaluation.

Every function takes an :class:`ExperimentContext`, which owns the
simulated runs (cached in memory and optionally on disk) and the
trained model suites, and returns a structured result that renders to
text via :mod:`repro.analysis.tables`.

Paper reference values are embedded alongside each experiment so the
printed output and EXPERIMENTS.md can show paper-vs-measured directly.
Absolute Watts are not expected to match (the substrate is a simulator,
not the authors' instrumented Xeon server); the *shape* — who consumes
what, which model fails where — is the reproduction target.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.events import Event, SUBSYSTEMS, Subsystem
from repro.core.suite import TrickleDownSuite
from repro.core.training import L3_MEMORY_RECIPE, ModelTrainer, PAPER_RECIPE
from repro.core.traces import MeasuredRun
from repro.core.validation import average_error, validate_suite
from repro.exec import RetryPolicy, RunCache, SweepSpec, sweep_specs
from repro.simulator.config import SystemConfig, fast_config
from repro.workloads.registry import (
    FP_TABLE_WORKLOADS,
    INTEGER_TABLE_WORKLOADS,
    PAPER_WORKLOADS,
    get_workload,
)

#: Paper Table 1 — subsystem average power in Watts.
PAPER_TABLE1: "dict[str, tuple[float, ...]]" = {
    "idle": (38.4, 19.9, 28.1, 32.9, 21.6),
    "gcc": (162, 20.0, 34.2, 32.9, 21.8),
    "mcf": (167, 20.0, 39.6, 32.9, 21.9),
    "vortex": (175, 17.3, 35.0, 32.9, 21.9),
    "art": (159, 18.7, 35.8, 33.5, 21.9),
    "lucas": (135, 19.5, 46.4, 33.5, 22.1),
    "mesa": (165, 16.8, 33.9, 33.0, 21.8),
    "mgrid": (146, 19.0, 45.1, 32.9, 22.1),
    "wupwise": (167, 18.8, 45.2, 33.5, 22.1),
    "dbt-2": (48.3, 19.8, 29.0, 33.2, 21.6),
    "SPECjbb": (112, 18.7, 37.8, 32.9, 21.9),
    "DiskLoad": (123, 19.9, 42.5, 35.2, 22.2),
}

#: Paper Table 2 — subsystem power standard deviation in Watts.
PAPER_TABLE2: "dict[str, tuple[float, ...]]" = {
    "idle": (0.340, 0.0918, 0.0328, 0.127, 0.0271),
    "gcc": (8.37, 0.226, 2.36, 0.133, 0.0532),
    "mcf": (5.62, 0.171, 1.43, 0.125, 0.0328),
    "vortex": (1.22, 0.0711, 0.719, 0.135, 0.0171),
    "art": (0.393, 0.0686, 0.190, 0.135, 0.00550),
    "lucas": (1.64, 0.123, 0.266, 0.133, 0.00719),
    "mesa": (1.00, 0.0587, 0.299, 0.127, 0.00839),
    "mgrid": (0.525, 0.0469, 0.151, 0.132, 0.00523),
    "wupwise": (2.60, 0.131, 0.427, 0.135, 0.0110),
    "dbt-2": (8.23, 0.133, 0.688, 0.145, 0.0349),
    "SPECjbb": (26.2, 0.327, 2.88, 0.0558, 0.0734),
    "DiskLoad": (18.6, 0.0948, 3.80, 0.153, 0.0746),
}

#: Paper Table 3 — integer-set model error in percent.
PAPER_TABLE3: "dict[str, tuple[float, ...]]" = {
    "idle": (1.74, 0.586, 3.80, 0.356, 0.172),
    "gcc": (4.23, 10.9, 10.7, 0.411, 0.201),
    "mcf": (12.3, 7.7, 2.2, 0.332, 0.154),
    "vortex": (6.53, 13.0, 15.6, 0.295, 0.332),
    "dbt-2": (9.67, 0.561, 2.17, 5.62, 0.176),
    "SPECjbb": (9.00, 7.45, 6.14, 0.393, 0.144),
    "DiskLoad": (5.93, 3.06, 2.93, 0.706, 0.161),
}

#: Paper Table 4 — floating-point-set model error in percent.
PAPER_TABLE4: "dict[str, tuple[float, ...]]" = {
    "art": (9.65, 5.87, 8.92, 0.240, 1.90),
    "lucas": (7.69, 1.46, 17.51, 0.245, 0.307),
    "mesa": (5.59, 11.3, 8.31, 0.334, 0.168),
    "mgrid": (0.360, 4.51, 11.4, 0.365, 0.546),
    "wupwise": (7.34, 5.21, 15.9, 0.588, 0.420),
}

def _traced(span_name: str):
    """Wrap an experiment entry point in a telemetry span."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with obs.span(span_name):
                result = fn(*args, **kwargs)
            obs.inc("experiments_total", 1.0, {"experiment": span_name})
            return result

        return wrapper

    return decorate


#: Paper figure-level error quotes (Section 4.2).
PAPER_FIGURE_ERRORS = {
    "fig2_cpu_gcc": 3.1,
    "fig3_memory_l3_mesa": 1.0,
    "fig5_memory_bus_mcf": 2.2,
    "fig6_disk_diskload": 1.75,
    "fig7_io_diskload": 1.0,
}


@dataclass
class ExperimentContext:
    """Owns runs and trained suites for a reproduction session.

    Runs are cached in memory; set ``cache_dir`` (or the
    ``REPRO_CACHE_DIR`` environment variable) to also cache them on
    disk across processes — a full twelve-workload sweep takes about a
    minute of simulation otherwise.  The disk cache is content-addressed
    (see :mod:`repro.exec.cache`): any change to the configuration,
    seed or duration changes the key, so stale entries are never
    served.  Cached runs are stored **after** warmup removal, so a
    disk hit is returned as-is instead of re-dropping windows on every
    load (the former behaviour silently shortened cached runs twice
    when the stored trace already lacked its warmup).

    ``n_workers`` parallelises multi-run requests (:meth:`runs`) over
    worker processes; results are bit-identical to serial execution.
    """

    config: SystemConfig = field(default_factory=fast_config)
    seed: int = 7
    duration_s: float = 300.0
    warmup_windows: int = 3
    cache_dir: "str | None" = field(
        default_factory=lambda: os.environ.get("REPRO_CACHE_DIR")
    )
    #: Worker processes for multi-run sweeps; ``None`` = auto
    #: (``REPRO_SWEEP_WORKERS`` or the CPU count).
    n_workers: "int | None" = None
    #: Failure semantics for sweeps (retries, backoff, task timeout);
    #: ``None`` = the engine's default policy.
    retry_policy: "RetryPolicy | None" = None
    _runs: "dict[str, MeasuredRun]" = field(default_factory=dict, repr=False)
    _suites: "dict[str, TrickleDownSuite]" = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._cache = RunCache(self.cache_dir)

    @property
    def cache(self) -> RunCache:
        """The content-addressed disk cache (disabled when no dir set)."""
        return self._cache

    def spec_for(self, name: str) -> SweepSpec:
        """The sweep spec this context would run for ``name``."""
        return SweepSpec(
            workload=name,
            seed=self.seed,
            duration_s=self.duration_s,
            pstate=0,
            config=self.config,
            warmup_windows=self.warmup_windows,
        )

    def run(self, name: str) -> MeasuredRun:
        """The instrumented run of a workload (simulate or load)."""
        if name not in self._runs:
            result = sweep_specs(
                [self.spec_for(name)],
                n_workers=1,
                cache=self._cache,
                retry=self.retry_policy,
            )
            self._runs[name] = result.runs[0]
        return self._runs[name]

    def runs(self, names: "tuple[str, ...]" = PAPER_WORKLOADS) -> "dict[str, MeasuredRun]":
        """Runs for every name, simulating the missing ones in parallel."""
        missing = [name for name in names if name not in self._runs]
        if missing:
            result = sweep_specs(
                [self.spec_for(name) for name in missing],
                n_workers=self.n_workers,
                cache=self._cache,
                retry=self.retry_policy,
            )
            self._runs.update(zip(missing, result.runs))
        return {name: self._runs[name] for name in names}

    def paper_suite(self) -> TrickleDownSuite:
        """The paper's five models, trained per its recipe."""
        if "paper" not in self._suites:
            trainer = ModelTrainer(PAPER_RECIPE)
            self._suites["paper"] = trainer.train(
                self.runs(PAPER_RECIPE.training_workloads)
            )
        return self._suites["paper"]

    def l3_suite(self) -> TrickleDownSuite:
        """The rejected L3-miss memory model (Equation 2), for ablation."""
        if "l3" not in self._suites:
            trainer = ModelTrainer(L3_MEMORY_RECIPE)
            self._suites["l3"] = trainer.train(
                self.runs(L3_MEMORY_RECIPE.training_workloads)
            )
        return self._suites["l3"]

    def steady_run(self, name: str) -> MeasuredRun:
        """The run restricted to its steady-state window.

        Table 1/2 characterise workloads at sustained utilisation; the
        staggered ramp used for model training is excluded.
        """
        run = self.run(name)
        spec = get_workload(name)
        start = max(plan.start_time_s for plan in spec.threads) + 20.0
        idx = np.searchsorted(run.counters.timestamps, start)
        idx = min(int(idx), run.n_samples - 2)
        return run.drop_warmup(idx) if idx > 0 else run


@dataclass
class TableResult:
    """A rendered-comparison-ready table."""

    title: str
    headers: "tuple[str, ...]"
    rows: "list[list]"
    paper_rows: "list[list]"

    def measured_row(self, label: str) -> "list":
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(label)


@dataclass
class FigureResult:
    """A measured-vs-modeled trace, like the paper's Figures 2-7."""

    title: str
    timestamps: np.ndarray
    measured: np.ndarray
    modeled: np.ndarray
    avg_error_pct: float
    paper_error_pct: "float | None" = None


@dataclass
class SeriesResult:
    """Multiple labelled series over time (Figure 4)."""

    title: str
    timestamps: np.ndarray
    series: "dict[str, np.ndarray]"


# -- Tables ------------------------------------------------------------


def _power_table(
    context: ExperimentContext,
    title: str,
    statistic: str,
    paper: "dict[str, tuple[float, ...]]",
) -> TableResult:
    headers = ("workload",) + tuple(s.value for s in SUBSYSTEMS) + ("total",)
    rows, paper_rows = [], []
    for name in PAPER_WORKLOADS:
        if statistic == "mean":
            # Sustained-utilisation averages: the staggered training
            # ramp is excluded (the paper characterises workloads at
            # full load).
            run = context.steady_run(name)
            values = [run.power.mean(s) for s in SUBSYSTEMS]
            values.append(float(run.power.total().mean()))
        else:
            # Variation at sustained load: program phases and service
            # cycles, excluding the training ramp (whose staircase
            # would dominate the statistic).
            run = context.steady_run(name)
            values = [run.power.std(s) for s in SUBSYSTEMS]
            values.append(float(run.power.total().std()))
        rows.append([name] + values)
        reference = list(paper[name])
        paper_rows.append([name] + reference + [sum(reference)])
    return TableResult(title=title, headers=headers, rows=rows, paper_rows=paper_rows)


@_traced("experiment.table1")
def table1_average_power(context: ExperimentContext) -> TableResult:
    """Table 1: subsystem average power (Watts) per workload."""
    return _power_table(
        context, "Table 1: Subsystem Average Power (Watts)", "mean", PAPER_TABLE1
    )


@_traced("experiment.table2")
def table2_power_stddev(context: ExperimentContext) -> TableResult:
    """Table 2: subsystem power standard deviation (Watts)."""
    return _power_table(
        context,
        "Table 2: Subsystem Power Standard Deviation (Watts)",
        "std",
        PAPER_TABLE2,
    )


def _error_table(
    context: ExperimentContext,
    title: str,
    workloads: "tuple[str, ...]",
    paper: "dict[str, tuple[float, ...]]",
) -> TableResult:
    suite = context.paper_suite()
    report = validate_suite(suite, context.runs(workloads))
    headers = ("workload",) + tuple(s.value for s in SUBSYSTEMS)
    rows = [
        [name] + [report.errors[name][s] for s in SUBSYSTEMS] for name in workloads
    ]
    averages = ["average"] + [report.subsystem_average(s, workloads) for s in SUBSYSTEMS]
    rows.append(averages)
    paper_rows = [[name] + list(paper[name]) for name in workloads]
    paper_rows.append(
        ["average"]
        + [float(np.mean([paper[name][i] for name in workloads])) for i in range(5)]
    )
    return TableResult(title=title, headers=headers, rows=rows, paper_rows=paper_rows)


@_traced("experiment.table3")
def table3_integer_errors(context: ExperimentContext) -> TableResult:
    """Table 3: model error (%) on the integer/commercial/synthetic set."""
    return _error_table(
        context,
        "Table 3: Integer Average Model Error (%)",
        INTEGER_TABLE_WORKLOADS,
        PAPER_TABLE3,
    )


@_traced("experiment.table4")
def table4_fp_errors(context: ExperimentContext) -> TableResult:
    """Table 4: model error (%) on the floating-point set."""
    return _error_table(
        context,
        "Table 4: Floating-Point Average Model Error (%)",
        FP_TABLE_WORKLOADS,
        PAPER_TABLE4,
    )


# -- Figures -----------------------------------------------------------


def _model_figure(
    context: ExperimentContext,
    suite: TrickleDownSuite,
    workload: str,
    subsystem: Subsystem,
    title: str,
    paper_key: "str | None",
) -> FigureResult:
    run = context.run(workload)
    modeled = suite.predict(subsystem, run.counters)
    measured = run.power.power(subsystem)
    return FigureResult(
        title=title,
        timestamps=run.counters.timestamps,
        measured=measured,
        modeled=modeled,
        avg_error_pct=average_error(modeled, measured),
        paper_error_pct=PAPER_FIGURE_ERRORS.get(paper_key) if paper_key else None,
    )


@_traced("experiment.fig2")
def figure2_cpu_model(context: ExperimentContext) -> FigureResult:
    """Figure 2: four-CPU power, measured vs modeled, gcc staggered."""
    return _model_figure(
        context,
        context.paper_suite(),
        "gcc",
        Subsystem.CPU,
        "Figure 2: Four CPU Power Model - gcc (8 threads, 30s stagger)",
        "fig2_cpu_gcc",
    )


@_traced("experiment.fig3")
def figure3_memory_l3(context: ExperimentContext) -> FigureResult:
    """Figure 3: memory power via the L3-miss model on mesa (works)."""
    return _model_figure(
        context,
        context.l3_suite(),
        "mesa",
        Subsystem.MEMORY,
        "Figure 3: Memory Power Model (L3 Misses) - mesa",
        "fig3_memory_l3_mesa",
    )


@_traced("experiment.fig4")
def figure4_prefetch_bus(context: ExperimentContext) -> SeriesResult:
    """Figure 4: prefetch vs non-prefetch bus transactions under mcf.

    Prefetch traffic ramps up exactly where the L3-miss model starts
    failing, decoupling total bus transactions (and memory power) from
    demand load misses.
    """
    run = context.run("mcf")
    n_cpus = context.config.num_packages
    # Per-CPU cycles (all packages tick in lockstep).
    cycles = run.counters.per_cpu(Event.CYCLES).sum(axis=1) / n_cpus
    prefetch = run.counters.total(Event.PREFETCH_TRANSACTIONS)
    # CPU-originated bus transactions: every package counts its own
    # transactions plus the shared snoops, so subtracting the (4x
    # counted) DMA/Other snoops leaves the per-package-summed CPU
    # traffic — the same convention the model features use.
    bus_all = run.counters.total(Event.BUS_TRANSACTIONS) - run.counters.total(
        Event.DMA_ACCESSES
    )
    scale = 1.0e6 / cycles
    return SeriesResult(
        title="Figure 4: Prefetch and Non-Prefetch Bus Transactions - mcf "
        "(CPU-originated, per 10^6 cycles)",
        timestamps=run.counters.timestamps,
        series={
            "all": bus_all * scale,
            "non_prefetch": (bus_all - prefetch) * scale,
            "prefetch": prefetch * scale,
        },
    )


@_traced("experiment.fig5")
def figure5_memory_bus(context: ExperimentContext) -> FigureResult:
    """Figure 5: memory power via bus transactions on mcf (fixed)."""
    return _model_figure(
        context,
        context.paper_suite(),
        "mcf",
        Subsystem.MEMORY,
        "Figure 5: Memory Power Model (Memory Bus Transactions) - mcf",
        "fig5_memory_bus_mcf",
    )


@_traced("experiment.fig6")
def figure6_disk_model(context: ExperimentContext) -> FigureResult:
    """Figure 6: disk power via DMA+interrupt model on DiskLoad."""
    return _model_figure(
        context,
        context.paper_suite(),
        "DiskLoad",
        Subsystem.DISK,
        "Figure 6: Disk Power Model (DMA+Interrupt) - Synthetic Disk Workload",
        "fig6_disk_diskload",
    )


@_traced("experiment.fig7")
def figure7_io_model(context: ExperimentContext) -> FigureResult:
    """Figure 7: I/O power via the interrupt model on DiskLoad."""
    return _model_figure(
        context,
        context.paper_suite(),
        "DiskLoad",
        Subsystem.IO,
        "Figure 7: I/O Power Model (Interrupt) - Synthetic Disk Workload",
        "fig7_io_diskload",
    )
