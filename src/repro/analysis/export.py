"""Export measured runs to CSV for external analysis.

A :class:`~repro.core.traces.MeasuredRun` flattens naturally to one row
per sampling window: timestamps, per-CPU event counts, and per-domain
measured power.  The format round-trips (``run_from_csv``) so traces
can be shipped to spreadsheet/pandas users or re-imported after
external processing — the JSON format (``MeasuredRun.save``) remains
the canonical one.
"""

from __future__ import annotations

import csv

import numpy as np

from repro.core.events import Event, Subsystem
from repro.core.traces import CounterTrace, MeasuredRun, PowerTrace

#: Column prefixes used in the CSV layout.
_EVENT_PREFIX = "ev"
_POWER_PREFIX = "pw"


def run_to_csv(run: MeasuredRun, path: str) -> None:
    """Write one row per sampling window.

    Columns: ``timestamp_s``, ``duration_s``,
    ``ev:<event>:cpu<k>`` for every event and CPU, and
    ``pw:<subsystem>`` for every measured domain.
    """
    counters, power = run.counters, run.power
    header = ["timestamp_s", "duration_s"]
    for event in counters.events:
        for cpu in range(counters.n_cpus):
            header.append(f"{_EVENT_PREFIX}:{event.value}:cpu{cpu}")
    for subsystem in power.subsystems:
        header.append(f"{_POWER_PREFIX}:{subsystem.value}")

    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"# workload={run.workload} seed={run.seed}"])
        writer.writerow(header)
        for i in range(run.n_samples):
            row = [f"{counters.timestamps[i]:.6f}", f"{counters.durations[i]:.6f}"]
            for event in counters.events:
                row.extend(
                    f"{value:.6g}" for value in counters.counts[event][i]
                )
            for subsystem in power.subsystems:
                row.append(f"{power.watts[subsystem][i]:.6f}")
            writer.writerow(row)


def run_from_csv(path: str) -> MeasuredRun:
    """Rebuild a MeasuredRun written by :func:`run_to_csv`."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        meta_row = next(reader)
        header = next(reader)
        rows = [row for row in reader if row]

    if not rows:
        raise ValueError(f"{path}: no data rows")
    meta = meta_row[0].lstrip("# ").split()
    fields = dict(part.split("=", 1) for part in meta if "=" in part)

    columns = {name: i for i, name in enumerate(header)}
    data = np.asarray(rows, dtype=float)
    timestamps = data[:, columns["timestamp_s"]]
    durations = data[:, columns["duration_s"]]

    counts: "dict[Event, list[list[float]]]" = {}
    cpu_columns: "dict[Event, list[int]]" = {}
    watts: "dict[Subsystem, np.ndarray]" = {}
    for name, index in columns.items():
        if name.startswith(f"{_EVENT_PREFIX}:"):
            _, event_name, _cpu = name.split(":")
            cpu_columns.setdefault(Event(event_name), []).append(index)
        elif name.startswith(f"{_POWER_PREFIX}:"):
            _, subsystem_name = name.split(":")
            watts[Subsystem(subsystem_name)] = data[:, index]
    for event, indices in cpu_columns.items():
        counts[event] = data[:, indices]

    return MeasuredRun(
        workload=fields.get("workload", "csv-import"),
        seed=int(fields.get("seed", 0)),
        counters=CounterTrace(
            timestamps=timestamps, durations=durations, counts=counts
        ),
        power=PowerTrace(timestamps=timestamps, watts=watts),
    )
