"""ASCII line charts for figure reproduction in the terminal.

The paper's Figures 2-7 are measured-vs-modeled traces.  `ascii_chart`
renders a handful of labelled series into a fixed-size character grid
with a y-axis, good enough to see the staircase of Figure 2 or the
sync oscillation of Figure 7 without leaving the terminal.
"""

from __future__ import annotations

import numpy as np

#: Glyph assigned to each series, in order.
_SERIES_GLYPHS = "*o+x#@"


def _downsample(values: np.ndarray, width: int) -> np.ndarray:
    """Average-bin a series to at most ``width`` points."""
    values = np.asarray(values, dtype=float)
    if values.size <= width:
        return values
    edges = np.linspace(0, values.size, width + 1).astype(int)
    return np.array(
        [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
    )


def ascii_chart(
    series: "dict[str, np.ndarray]",
    width: int = 72,
    height: int = 16,
    y_label: str = "W",
) -> str:
    """Render labelled series into one character grid.

    Later series overdraw earlier ones where they collide (like
    plotting order in any chart library).
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small to be legible")
    sampled = {name: _downsample(vals, width) for name, vals in series.items()}
    for name, vals in sampled.items():
        if vals.size == 0:
            raise ValueError(f"series {name!r} is empty")
    lo = min(float(v.min()) for v in sampled.values())
    hi = max(float(v.max()) for v in sampled.values())
    span = hi - lo if hi > lo else 1.0
    lo -= span * 0.05
    hi += span * 0.05
    span = hi - lo

    grid = [[" "] * width for _ in range(height)]
    for (name, values), glyph in zip(sampled.items(), _SERIES_GLYPHS):
        for x, value in enumerate(values[:width]):
            y = int(round((value - lo) / span * (height - 1)))
            grid[height - 1 - y][x] = glyph

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{hi:8.1f} |"
        elif row_index == height - 1:
            label = f"{lo:8.1f} |"
        elif row_index == height // 2:
            label = f"{(lo + hi) / 2.0:8.1f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "   ".join(
        f"{glyph}={name}"
        for (name, _), glyph in zip(sampled.items(), _SERIES_GLYPHS)
    )
    lines.append(" " * 10 + legend + f"   (y: {y_label})")
    return "\n".join(lines)


def residual_summary(
    measured: np.ndarray, modeled: np.ndarray
) -> "dict[str, float]":
    """Residual diagnostics beyond Equation 6.

    Returns bias (mean signed error, W), RMSE (W), the 95th-percentile
    absolute error (W), and the correlation between model and
    measurement — the quantities that distinguish "accurate on average"
    from "tracks the trace".
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    if measured.shape != modeled.shape or measured.ndim != 1 or measured.size < 2:
        raise ValueError("need two equal-length series with >= 2 samples")
    residual = modeled - measured
    if np.std(measured) > 0 and np.std(modeled) > 0:
        correlation = float(np.corrcoef(measured, modeled)[0, 1])
    else:
        correlation = float("nan")
    return {
        "bias_w": float(residual.mean()),
        "rmse_w": float(np.sqrt(np.mean(residual**2))),
        "p95_abs_error_w": float(np.percentile(np.abs(residual), 95)),
        "correlation": correlation,
    }
