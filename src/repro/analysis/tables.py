"""Plain-text rendering of paper-style tables and trace figures."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(
    title: str,
    headers: "Sequence[str]",
    rows: "Sequence[Sequence]",
    precision: int = 2,
) -> str:
    """Fixed-width table with a title row, like the paper's tables."""
    if not rows:
        raise ValueError("table needs at least one row")
    rendered_rows = [
        [
            cell if isinstance(cell, str) else f"{float(cell):.{precision}f}"
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered_rows))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 72) -> str:
    """A coarse ASCII rendering of a series (for trace figures)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot render an empty series")
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo if hi > lo else 1.0
    idx = ((values - lo) / span * (len(_SPARK_CHARS) - 1)).round().astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def format_trace_summary(
    title: str,
    timestamps: np.ndarray,
    measured: np.ndarray,
    modeled: np.ndarray,
    avg_error_pct: float,
    n_rows: int = 12,
) -> str:
    """Render a measured-vs-modeled trace the way the paper's figures do.

    Prints summary statistics, ASCII sparklines of both series, and an
    evenly spaced sample of rows.
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    lines = [
        title,
        f"  samples={len(measured)}  avg error={avg_error_pct:.2f}%",
        f"  measured: mean={measured.mean():.2f}W  min={measured.min():.2f}  "
        f"max={measured.max():.2f}",
        f"  modeled : mean={modeled.mean():.2f}W  min={modeled.min():.2f}  "
        f"max={modeled.max():.2f}",
        f"  measured |{sparkline(measured)}|",
        f"  modeled  |{sparkline(modeled)}|",
        f"  {'t(s)':>8} {'measured(W)':>12} {'modeled(W)':>12}",
    ]
    picks = np.linspace(0, len(measured) - 1, min(n_rows, len(measured))).astype(int)
    for i in picks:
        lines.append(f"  {timestamps[i]:8.1f} {measured[i]:12.2f} {modeled[i]:12.2f}")
    return "\n".join(lines)
