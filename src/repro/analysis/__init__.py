"""Experiment harness: regenerate every table and figure of the paper.

:mod:`repro.analysis.experiments` has one entry point per artefact
(Tables 1-4, Figures 1-7, the fitted equations); :mod:`repro.analysis.tables`
renders them as text; :mod:`repro.analysis.report` assembles the
paper-vs-measured record for EXPERIMENTS.md.
"""

from repro.analysis.experiments import (
    ExperimentContext,
    figure2_cpu_model,
    figure3_memory_l3,
    figure4_prefetch_bus,
    figure5_memory_bus,
    figure6_disk_model,
    figure7_io_model,
    table1_average_power,
    table2_power_stddev,
    table3_integer_errors,
    table4_fp_errors,
)
from repro.analysis.tables import format_table, format_trace_summary

__all__ = [
    "ExperimentContext",
    "table1_average_power",
    "table2_power_stddev",
    "table3_integer_errors",
    "table4_fp_errors",
    "figure2_cpu_model",
    "figure3_memory_l3",
    "figure4_prefetch_bus",
    "figure5_memory_bus",
    "figure6_disk_model",
    "figure7_io_model",
    "format_table",
    "format_trace_summary",
]
