"""Cluster-level ensemble power management.

The paper positions its estimator as a building block for
datacentre-scale policies (Section 2.3): Rajamani & Lefurgy showed
30-50 % energy savings from powering down idle nodes; Chen added the
on/off reliability cost; Ranganathan budgeted whole enclosures.  This
module closes that loop on top of the simulator: a small cluster of
simulated servers, a request-level load balancer, and two managers —

* :class:`StaticManager` — every node always on, load spread evenly
  (the baseline datacentres actually ran);
* :class:`PowerAwareManager` — consolidate load onto as few nodes as
  demand (plus headroom) requires, power the rest down, and boot nodes
  back ahead of rising demand.  Decisions use the trickle-down
  estimator's numbers, not power sensors.

Demand is expressed in *worker threads* (each node hosts up to eight);
the built-in demand generator produces the diurnal shape with noise
that makes consolidation worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.simulator.config import SystemConfig, fast_config
from repro.simulator.fleet import FleetServer
from repro.simulator.system import Server
from repro.workloads.registry import get_workload

#: Power drawn by a powered-down node (standby circuitry, Watts).
STANDBY_POWER_W = 5.0
#: Power drawn while booting (everything on, no useful work).
BOOT_POWER_W = 180.0
#: Default boot duration (seconds).  Real servers boot in minutes; the
#: demo's demand curves compress a day into minutes, so the default
#: compresses the boot penalty proportionally.
BOOT_TIME_S = 30.0
#: Power drawn while napping: DRAM in self-refresh, disks spun down,
#: CPU packages clock-gated at the floor — the subsystem-level
#: low-power ensemble of Subramaniam & Feng, cheap to leave and enter.
NAP_POWER_W = 12.0
#: Power drawn while exiting a nap (disks spinning up, DRAM exiting
#: self-refresh; everything on, nothing served yet).
NAP_EXIT_POWER_W = 120.0
#: Default nap exit latency (seconds) — orders faster than a cold boot,
#: which is what makes napping a useful middle power state.
NAP_EXIT_TIME_S = 2.0


def _service_workload_spec(service_workload: str):
    """The shared service workload with its training stagger stripped.

    Service threads must be schedulable immediately, so every plan's
    ``start_time_s`` becomes zero.
    """
    spec = get_workload(service_workload)
    return replace(
        spec,
        threads=tuple(
            replace(plan, start_time_s=0.0) for plan in spec.threads
        ),
    )


class _NodeControl:
    """Power/boot/nap/load state machine shared by both node frontends.

    Subclasses set ``node_id``, ``boot_time_s`` and ``capacity`` and
    call :meth:`_init_control`; everything observable about a node's
    power state lives here so the scalar and fleet engines behave
    alike.  Besides on/booting/off, a node supports a *nap* — the
    subsystem-level low-power ensemble (DRAM self-refresh, disks spun
    down) with a short exit latency — and a per-node DVFS pstate.
    """

    def _init_control(self) -> None:
        self.powered = True
        self._boot_remaining_s = 0.0
        self._wake_remaining_s = 0.0
        self._napping = False
        self.assigned_threads = 0
        #: Requested DVFS operating point; the engine applies it before
        #: the node's next simulated second.
        self.pstate = 0

    @property
    def booting(self) -> bool:
        return self._boot_remaining_s > 0.0

    @property
    def napping(self) -> bool:
        return self._napping

    @property
    def waking(self) -> bool:
        return self._wake_remaining_s > 0.0

    @property
    def available(self) -> bool:
        """Can serve load right now."""
        return (
            self.powered
            and not self.booting
            and not self._napping
            and not self.waking
        )

    def power_down(self) -> None:
        if self.assigned_threads:
            raise ValueError(
                f"node {self.node_id} still serves {self.assigned_threads} threads"
            )
        self.powered = False
        self._boot_remaining_s = 0.0
        self._wake_remaining_s = 0.0
        self._napping = False
        obs.event("cluster.power_down", node=self.node_id)

    def power_up(self) -> None:
        if self.powered:
            if self._napping:
                self.wake()
            return
        self.powered = True
        self._boot_remaining_s = self.boot_time_s
        obs.event(
            "cluster.power_up", node=self.node_id, boot_time_s=self.boot_time_s
        )

    def nap(self) -> None:
        """Drop an idle node into the subsystem low-power ensemble."""
        if self.assigned_threads:
            raise ValueError(
                f"node {self.node_id} still serves {self.assigned_threads} threads"
            )
        if not self.available:
            raise ValueError(f"node {self.node_id} cannot nap right now")
        self._napping = True
        obs.event("cluster.nap", node=self.node_id)

    def wake(self) -> None:
        """Start exiting a nap (takes :data:`NAP_EXIT_TIME_S`)."""
        if self._napping:
            self._napping = False
            self._wake_remaining_s = self.nap_exit_time_s
            obs.event(
                "cluster.wake",
                node=self.node_id,
                exit_time_s=self.nap_exit_time_s,
            )

    #: Nap exit latency; subclasses may override per node.
    nap_exit_time_s = NAP_EXIT_TIME_S

    def set_pstate(self, index: int) -> None:
        """Request a DVFS operating point for this node."""
        n_states = len(self.config.cpu.dvfs_states)
        if not 0 <= index < n_states:
            raise ValueError(
                f"pstate {index} out of range; ladder has {n_states} states"
            )
        self.pstate = int(index)

    def set_load(self, n_threads: int) -> None:
        if n_threads < 0 or n_threads > self.capacity:
            raise ValueError(
                f"load {n_threads} outside [0, {self.capacity}]"
            )
        if n_threads > 0 and not self.available:
            raise ValueError(f"node {self.node_id} cannot serve load yet")
        self.assigned_threads = n_threads

    def idle_power_second(self) -> "float | None":
        """Advance one second of *non-simulated* node state.

        Returns the node's power for that second when it is off,
        booting, waking or napping — identically for both engines —
        and ``None`` when the node is live and its server must be
        stepped.
        """
        if not self.powered:
            return STANDBY_POWER_W
        if self.booting:
            self._boot_remaining_s = max(0.0, self._boot_remaining_s - 1.0)
            return BOOT_POWER_W
        if self.waking:
            self._wake_remaining_s = max(0.0, self._wake_remaining_s - 1.0)
            return NAP_EXIT_POWER_W
        if self._napping:
            return NAP_POWER_W
        return None


class ClusterNode(_NodeControl):
    """One server in the ensemble, serving up to eight worker threads."""

    def __init__(
        self,
        node_id: int,
        config: SystemConfig,
        seed: int,
        service_workload: str = "SPECjbb",
        boot_time_s: float = BOOT_TIME_S,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.boot_time_s = boot_time_s
        spec = _service_workload_spec(service_workload)
        self._server = Server(config, spec, seed=seed)
        self._server.sampler.disable()
        self._all_threads = list(self._server.threads)
        self._server.threads = []
        self._applied_pstate = 0
        self._init_control()

    @property
    def server(self) -> Server:
        """The node's simulated server (counter bank, energy account).

        External control loops read the counter bank through this —
        the node's own sampler is disabled precisely so one reader
        owns the clear-on-read counters.
        """
        return self._server

    @property
    def capacity(self) -> int:
        return len(self._all_threads)

    def tick_second(self) -> float:
        """Advance one second; returns the node's true power (Watts)."""
        idle_w = self.idle_power_second()
        if idle_w is not None:
            return idle_w
        if self.pstate != self._applied_pstate:
            self._server.set_all_pstates(self.pstate)
            self._applied_pstate = self.pstate
        self._server.threads = self._all_threads[: self.assigned_threads]
        ticks = int(round(1.0 / self.config.tick_s))
        return self._server.run_ticks(ticks)


class FleetNodeHandle(_NodeControl):
    """One fleet lane presented through the ``ClusterNode`` surface.

    Same control state machine, but the simulated server is a lane of
    the cluster's shared :class:`FleetServer`, stepped once per second
    for all nodes together by :meth:`Cluster.run`.  ``server`` returns
    the lane's read-only view, so observers reading counters and
    energy work unchanged.
    """

    def __init__(
        self,
        node_id: int,
        fleet: FleetServer,
        lane: int,
        boot_time_s: float,
    ) -> None:
        self.node_id = node_id
        self.config = fleet.config
        self.boot_time_s = boot_time_s
        self._fleet = fleet
        self._lane = lane
        self._init_control()

    @property
    def server(self):
        """The lane's server view (counter bank, energy account)."""
        return self._fleet.lane(self._lane)

    @property
    def capacity(self) -> int:
        return self._fleet.workload.n_threads


@dataclass
class ClusterTrace:
    """Per-second history of a managed run."""

    demand: "list[int]" = field(default_factory=list)
    served: "list[int]" = field(default_factory=list)
    power_w: "list[float]" = field(default_factory=list)
    nodes_on: "list[int]" = field(default_factory=list)
    #: Per-node power each second: ``node_power_w[i][t]`` (Watts).
    node_power_w: "list[list[float]]" = field(default_factory=list)

    @property
    def energy_j(self) -> float:
        return float(sum(self.power_w))

    def node_energy_j(self, node_id: int) -> float:
        """One node's integrated energy over the run (Joules)."""
        return float(sum(self.node_power_w[node_id]))

    @property
    def dropped_thread_seconds(self) -> int:
        return int(
            sum(max(0, d - s) for d, s in zip(self.demand, self.served))
        )


class StaticManager:
    """Baseline: all nodes on, demand spread round-robin."""

    def place(self, cluster: "Cluster", demand: int) -> None:
        for node in cluster.nodes:
            node.power_up()
        available = [n for n in cluster.nodes if n.available]
        for node in cluster.nodes:
            node.set_load(0)
        if not available:
            return
        # Round-robin one thread at a time, then commit each node's
        # count through the set_load state machine in one call.
        counts = [0] * len(available)
        remaining = demand
        while remaining > 0:
            progressed = False
            for i, node in enumerate(available):
                if remaining <= 0:
                    break
                if counts[i] < node.capacity:
                    counts[i] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                break
        for node, count in zip(available, counts):
            node.set_load(count)


class PowerAwareManager:
    """Consolidate onto few nodes; power down the rest; boot ahead.

    Args:
        headroom_threads: capacity kept above current demand so a
            demand spike is absorbed while a node boots.
    """

    def __init__(self, headroom_threads: int = 6) -> None:
        if headroom_threads < 0:
            raise ValueError("headroom must be non-negative")
        self.headroom = headroom_threads
        self._last_target: "int | None" = None

    def place(self, cluster: "Cluster", demand: int) -> None:
        # Walk the actual per-node capacities (nodes may be
        # heterogeneous) until the accumulated capacity covers demand
        # plus headroom; always keep at least one node.
        target_capacity = demand + self.headroom
        nodes_needed = 0
        reach = 0
        for node in cluster.nodes:
            if nodes_needed >= 1 and reach >= target_capacity:
                break
            reach += node.capacity
            nodes_needed += 1
        if nodes_needed != self._last_target:
            obs.event(
                "cluster.placement",
                nodes_needed=nodes_needed,
                previous=self._last_target,
                demand=demand,
                headroom=self.headroom,
            )
            self._last_target = nodes_needed

        # Keep a stable prefix of nodes hot (consolidation).
        for node in cluster.nodes[:nodes_needed]:
            node.power_up()
        prefix = [n for n in cluster.nodes[:nodes_needed] if n.available]
        for node in prefix:
            node.set_load(0)
        remaining = demand
        for node in prefix:
            take = min(node.capacity, remaining)
            node.set_load(take)
            remaining -= take
        # While the prefix boots, spill what it cannot serve yet onto
        # surplus nodes that are still available; then power every
        # drained surplus node down — *including* booting ones
        # (power_down cancels the boot), so a demand blip no longer
        # burns BOOT_POWER_W for the full boot before dying.
        for node in cluster.nodes[nodes_needed:]:
            if node.available:
                take = min(node.capacity, remaining)
                node.set_load(take)
                remaining -= take
            if node.powered and node.assigned_threads == 0:
                node.power_down()


class Cluster:
    """A fixed set of nodes driven by a manager and a demand trace.

    ``engine="fleet"`` (the default) holds every node as one lane of a
    single :class:`FleetServer` and steps all running nodes in one
    vectorized pass per second; ``engine="scalar"`` keeps one scalar
    :class:`ClusterNode` per node.  Node power numbers are bit-exact
    between the engines (the fleet's per-lane energy accounting is
    bit-identical to the scalar server's), so the choice is purely a
    throughput one — fleet runs large clusters an order of magnitude
    faster.
    """

    def __init__(
        self,
        n_nodes: int = 4,
        config: "SystemConfig | None" = None,
        seed: int = 1,
        service_workload: str = "SPECjbb",
        boot_time_s: float = BOOT_TIME_S,
        engine: str = "fleet",
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if engine not in ("fleet", "scalar"):
            raise ValueError(
                f"engine must be 'fleet' or 'scalar' (got {engine!r})"
            )
        config = config or fast_config()
        self.config = config
        self.engine = engine
        if engine == "scalar":
            self._fleet = None
            self.nodes = [
                ClusterNode(
                    i,
                    config,
                    seed=seed + i,
                    service_workload=service_workload,
                    boot_time_s=boot_time_s,
                )
                for i in range(n_nodes)
            ]
        else:
            spec = _service_workload_spec(service_workload)
            self._fleet = FleetServer(
                config, spec, [seed + i for i in range(n_nodes)]
            )
            self._fleet.disable_sampling()
            for lane in range(n_nodes):
                self._fleet.set_lane_threads(lane, 0)
            self.nodes = [
                FleetNodeHandle(i, self._fleet, i, boot_time_s)
                for i in range(n_nodes)
            ]
        self._applied_pstates: "np.ndarray | None" = None

    @property
    def capacity(self) -> int:
        return sum(node.capacity for node in self.nodes)

    def _step_second(self) -> "list[float]":
        """One second of simulated time for every node; per-node Watts."""
        if self._fleet is None:
            return [node.tick_second() for node in self.nodes]
        fleet = self._fleet
        pstates = np.fromiter(
            (node.pstate for node in self.nodes),
            dtype=np.int64,
            count=len(self.nodes),
        )
        if self._applied_pstates is None or not np.array_equal(
            pstates, self._applied_pstates
        ):
            fleet.set_lane_pstates(pstates)
            self._applied_pstates = pstates
        active = np.zeros(len(self.nodes), dtype=bool)
        powers = [0.0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            idle_w = node.idle_power_second()
            if idle_w is not None:
                powers[i] = idle_w
            else:
                active[i] = True
                fleet.set_lane_threads(i, node.assigned_threads)
        if active.any():
            ticks = int(round(1.0 / self.config.tick_s))
            energies = fleet.run_ticks(ticks, active)
            for i in np.nonzero(active)[0]:
                powers[int(i)] = float(energies[i])
        return powers

    def run(
        self,
        demand_trace: "list[int]",
        manager,
        observer=None,
        start_s: float = 0.0,
    ) -> ClusterTrace:
        """Serve a per-second demand trace under the given manager.

        ``observer`` (e.g. :class:`repro.obs.live.ClusterObserver`) is
        called once per second with
        ``on_second(cluster, t_s, demand, served, node_powers)`` —
        the hook live monitoring, per-node estimation and drift
        detection plug into.  With telemetry enabled, per-node and
        cluster-level gauges are published every second regardless of
        the observer.  ``start_s`` offsets the observer's clock so a
        driving loop can feed the trace in slices (node state carries
        over between calls anyway).
        """
        trace = ClusterTrace()
        trace.node_power_w = [[] for _ in self.nodes]
        node_energy = [0.0] * len(self.nodes)
        for t, offered in enumerate(demand_trace):
            offered = int(offered)
            # Placement can only ever serve up to capacity, but the
            # trace records the *offered* demand so flash crowds above
            # capacity show up as dropped thread-seconds, not as a
            # silently clipped demand curve.
            demand = min(offered, self.capacity)
            manager.place(self, demand)
            node_powers = self._step_second()
            power = sum(node_powers)
            served = sum(
                node.assigned_threads for node in self.nodes if node.available
            )
            nodes_on = sum(node.powered for node in self.nodes)
            trace.demand.append(offered)
            trace.served.append(served)
            trace.power_w.append(power)
            trace.nodes_on.append(nodes_on)
            for i, node_power in enumerate(node_powers):
                trace.node_power_w[i].append(node_power)
                node_energy[i] += node_power  # 1 s windows: W == J/s
            if obs.enabled():
                registry = obs.registry()
                registry.gauge("cluster_power_watts", power)
                registry.gauge("cluster_nodes_on", nodes_on)
                registry.gauge("cluster_demand_threads", offered)
                registry.gauge("cluster_served_threads", served)
                for node, node_power, energy in zip(
                    self.nodes, node_powers, node_energy
                ):
                    labels = {"node": node.node_id}
                    registry.gauge("cluster_node_power_watts", node_power, labels)
                    registry.gauge("cluster_node_energy_joules", energy, labels)
                # Cross-node rollup through the fleet-observability
                # plane: the same min/mean/p50/p95/max gauges a
                # FleetMonitor publishes per lane.
                from repro.obs.fleet import publish_lane_aggregates

                publish_lane_aggregates(
                    "cluster_node", np.asarray(node_powers, dtype=float)
                )
            if observer is not None:
                observer.on_second(
                    self, start_s + float(t + 1), offered, served, node_powers
                )
        return trace


def diurnal_demand(
    duration_s: int,
    peak_threads: int,
    trough_threads: int,
    period_s: float = 600.0,
    noise: float = 0.1,
    seed: int = 3,
) -> "list[int]":
    """A compressed day: sinusoidal demand between trough and peak."""
    if trough_threads > peak_threads:
        raise ValueError("trough must not exceed peak")
    rng = np.random.default_rng(seed)
    t = np.arange(duration_s)
    mid = (peak_threads + trough_threads) / 2.0
    amplitude = (peak_threads - trough_threads) / 2.0
    base = mid - amplitude * np.cos(2.0 * np.pi * t / period_s)
    jitter = rng.normal(0.0, noise * max(peak_threads, 1), size=duration_s)
    return [int(round(v)) for v in np.clip(base + jitter, 0, None)]
