"""Cluster-level ensemble power management.

The paper positions its estimator as a building block for
datacentre-scale policies (Section 2.3): Rajamani & Lefurgy showed
30-50 % energy savings from powering down idle nodes; Chen added the
on/off reliability cost; Ranganathan budgeted whole enclosures.  This
module closes that loop on top of the simulator: a small cluster of
simulated servers, a request-level load balancer, and two managers —

* :class:`StaticManager` — every node always on, load spread evenly
  (the baseline datacentres actually ran);
* :class:`PowerAwareManager` — consolidate load onto as few nodes as
  demand (plus headroom) requires, power the rest down, and boot nodes
  back ahead of rising demand.  Decisions use the trickle-down
  estimator's numbers, not power sensors.

Demand is expressed in *worker threads* (each node hosts up to eight);
the built-in demand generator produces the diurnal shape with noise
that makes consolidation worthwhile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.simulator.config import SystemConfig, fast_config
from repro.simulator.fleet import FleetServer
from repro.simulator.system import Server
from repro.workloads.registry import get_workload

#: Power drawn by a powered-down node (standby circuitry, Watts).
STANDBY_POWER_W = 5.0
#: Power drawn while booting (everything on, no useful work).
BOOT_POWER_W = 180.0
#: Default boot duration (seconds).  Real servers boot in minutes; the
#: demo's demand curves compress a day into minutes, so the default
#: compresses the boot penalty proportionally.
BOOT_TIME_S = 30.0


def _service_workload_spec(service_workload: str):
    """The shared service workload with its training stagger stripped.

    Service threads must be schedulable immediately, so every plan's
    ``start_time_s`` becomes zero.
    """
    spec = get_workload(service_workload)
    return replace(
        spec,
        threads=tuple(
            replace(plan, start_time_s=0.0) for plan in spec.threads
        ),
    )


class _NodeControl:
    """Power/boot/load state machine shared by both node frontends.

    Subclasses set ``node_id``, ``boot_time_s`` and ``capacity`` and
    initialise ``powered=True``, ``_boot_remaining_s=0.0`` and
    ``assigned_threads=0``; everything observable about a node's power
    state lives here so the scalar and fleet engines behave alike.
    """

    @property
    def booting(self) -> bool:
        return self._boot_remaining_s > 0.0

    @property
    def available(self) -> bool:
        """Can serve load right now."""
        return self.powered and not self.booting

    def power_down(self) -> None:
        if self.assigned_threads:
            raise ValueError(
                f"node {self.node_id} still serves {self.assigned_threads} threads"
            )
        self.powered = False
        self._boot_remaining_s = 0.0
        obs.event("cluster.power_down", node=self.node_id)

    def power_up(self) -> None:
        if not self.powered:
            self.powered = True
            self._boot_remaining_s = self.boot_time_s
            obs.event(
                "cluster.power_up", node=self.node_id, boot_time_s=self.boot_time_s
            )

    def set_load(self, n_threads: int) -> None:
        if n_threads < 0 or n_threads > self.capacity:
            raise ValueError(
                f"load {n_threads} outside [0, {self.capacity}]"
            )
        if n_threads > 0 and not self.available:
            raise ValueError(f"node {self.node_id} cannot serve load yet")
        self.assigned_threads = n_threads


class ClusterNode(_NodeControl):
    """One server in the ensemble, serving up to eight worker threads."""

    def __init__(
        self,
        node_id: int,
        config: SystemConfig,
        seed: int,
        service_workload: str = "SPECjbb",
        boot_time_s: float = BOOT_TIME_S,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.boot_time_s = boot_time_s
        spec = _service_workload_spec(service_workload)
        self._server = Server(config, spec, seed=seed)
        self._server.sampler.disable()
        self._all_threads = list(self._server.threads)
        self._server.threads = []
        self.powered = True
        self._boot_remaining_s = 0.0
        self.assigned_threads = 0

    @property
    def server(self) -> Server:
        """The node's simulated server (counter bank, energy account).

        External control loops read the counter bank through this —
        the node's own sampler is disabled precisely so one reader
        owns the clear-on-read counters.
        """
        return self._server

    @property
    def capacity(self) -> int:
        return len(self._all_threads)

    def tick_second(self) -> float:
        """Advance one second; returns the node's true power (Watts)."""
        if not self.powered:
            return STANDBY_POWER_W
        if self.booting:
            self._boot_remaining_s = max(0.0, self._boot_remaining_s - 1.0)
            return BOOT_POWER_W
        self._server.threads = self._all_threads[: self.assigned_threads]
        ticks = int(round(1.0 / self.config.tick_s))
        return self._server.run_ticks(ticks)


class FleetNodeHandle(_NodeControl):
    """One fleet lane presented through the ``ClusterNode`` surface.

    Same control state machine, but the simulated server is a lane of
    the cluster's shared :class:`FleetServer`, stepped once per second
    for all nodes together by :meth:`Cluster.run`.  ``server`` returns
    the lane's read-only view, so observers reading counters and
    energy work unchanged.
    """

    def __init__(
        self,
        node_id: int,
        fleet: FleetServer,
        lane: int,
        boot_time_s: float,
    ) -> None:
        self.node_id = node_id
        self.config = fleet.config
        self.boot_time_s = boot_time_s
        self._fleet = fleet
        self._lane = lane
        self.powered = True
        self._boot_remaining_s = 0.0
        self.assigned_threads = 0

    @property
    def server(self):
        """The lane's server view (counter bank, energy account)."""
        return self._fleet.lane(self._lane)

    @property
    def capacity(self) -> int:
        return self._fleet.workload.n_threads


@dataclass
class ClusterTrace:
    """Per-second history of a managed run."""

    demand: "list[int]" = field(default_factory=list)
    served: "list[int]" = field(default_factory=list)
    power_w: "list[float]" = field(default_factory=list)
    nodes_on: "list[int]" = field(default_factory=list)
    #: Per-node power each second: ``node_power_w[i][t]`` (Watts).
    node_power_w: "list[list[float]]" = field(default_factory=list)

    @property
    def energy_j(self) -> float:
        return float(sum(self.power_w))

    def node_energy_j(self, node_id: int) -> float:
        """One node's integrated energy over the run (Joules)."""
        return float(sum(self.node_power_w[node_id]))

    @property
    def dropped_thread_seconds(self) -> int:
        return int(
            sum(max(0, d - s) for d, s in zip(self.demand, self.served))
        )


class StaticManager:
    """Baseline: all nodes on, demand spread round-robin."""

    def place(self, cluster: "Cluster", demand: int) -> None:
        for node in cluster.nodes:
            node.power_up()
        available = [n for n in cluster.nodes if n.available]
        for node in cluster.nodes:
            node.assigned_threads = 0
        remaining = demand
        while remaining > 0 and available:
            for node in available:
                if remaining <= 0:
                    break
                if node.assigned_threads < node.capacity:
                    node.assigned_threads += 1
                    remaining -= 1
            if all(n.assigned_threads >= n.capacity for n in available):
                break


class PowerAwareManager:
    """Consolidate onto few nodes; power down the rest; boot ahead.

    Args:
        headroom_threads: capacity kept above current demand so a
            demand spike is absorbed while a node boots.
    """

    def __init__(self, headroom_threads: int = 6) -> None:
        if headroom_threads < 0:
            raise ValueError("headroom must be non-negative")
        self.headroom = headroom_threads
        self._last_target: "int | None" = None

    def place(self, cluster: "Cluster", demand: int) -> None:
        per_node = cluster.nodes[0].capacity
        target_capacity = demand + self.headroom
        nodes_needed = min(
            len(cluster.nodes), max(1, math.ceil(target_capacity / per_node))
        )
        if nodes_needed != self._last_target:
            obs.event(
                "cluster.placement",
                nodes_needed=nodes_needed,
                previous=self._last_target,
                demand=demand,
                headroom=self.headroom,
            )
            self._last_target = nodes_needed

        # Keep a stable prefix of nodes hot (consolidation).
        for node in cluster.nodes[:nodes_needed]:
            node.power_up()
        ready = [n for n in cluster.nodes if n.available]
        # Drain then power down the surplus suffix.
        for node in cluster.nodes[nodes_needed:]:
            node.assigned_threads = 0
            if node.powered and not node.booting:
                node.power_down()

        for node in ready:
            node.assigned_threads = 0
        remaining = demand
        for node in ready:
            take = min(node.capacity, remaining)
            node.set_load(take)
            remaining -= take
            if remaining <= 0:
                break


class Cluster:
    """A fixed set of nodes driven by a manager and a demand trace.

    ``engine="fleet"`` (the default) holds every node as one lane of a
    single :class:`FleetServer` and steps all running nodes in one
    vectorized pass per second; ``engine="scalar"`` keeps one scalar
    :class:`ClusterNode` per node.  Node power numbers are bit-exact
    between the engines (the fleet's per-lane energy accounting is
    bit-identical to the scalar server's), so the choice is purely a
    throughput one — fleet runs large clusters an order of magnitude
    faster.
    """

    def __init__(
        self,
        n_nodes: int = 4,
        config: "SystemConfig | None" = None,
        seed: int = 1,
        service_workload: str = "SPECjbb",
        boot_time_s: float = BOOT_TIME_S,
        engine: str = "fleet",
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if engine not in ("fleet", "scalar"):
            raise ValueError(
                f"engine must be 'fleet' or 'scalar' (got {engine!r})"
            )
        config = config or fast_config()
        self.config = config
        self.engine = engine
        if engine == "scalar":
            self._fleet = None
            self.nodes = [
                ClusterNode(
                    i,
                    config,
                    seed=seed + i,
                    service_workload=service_workload,
                    boot_time_s=boot_time_s,
                )
                for i in range(n_nodes)
            ]
        else:
            spec = _service_workload_spec(service_workload)
            self._fleet = FleetServer(
                config, spec, [seed + i for i in range(n_nodes)]
            )
            self._fleet.disable_sampling()
            for lane in range(n_nodes):
                self._fleet.set_lane_threads(lane, 0)
            self.nodes = [
                FleetNodeHandle(i, self._fleet, i, boot_time_s)
                for i in range(n_nodes)
            ]

    @property
    def capacity(self) -> int:
        return sum(node.capacity for node in self.nodes)

    def _step_second(self) -> "list[float]":
        """One second of simulated time for every node; per-node Watts."""
        if self._fleet is None:
            return [node.tick_second() for node in self.nodes]
        fleet = self._fleet
        active = np.zeros(len(self.nodes), dtype=bool)
        powers = [0.0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            if not node.powered:
                powers[i] = STANDBY_POWER_W
            elif node.booting:
                node._boot_remaining_s = max(
                    0.0, node._boot_remaining_s - 1.0
                )
                powers[i] = BOOT_POWER_W
            else:
                active[i] = True
                fleet.set_lane_threads(i, node.assigned_threads)
        if active.any():
            ticks = int(round(1.0 / self.config.tick_s))
            energies = fleet.run_ticks(ticks, active)
            for i in np.nonzero(active)[0]:
                powers[int(i)] = float(energies[i])
        return powers

    def run(
        self,
        demand_trace: "list[int]",
        manager,
        observer=None,
        start_s: float = 0.0,
    ) -> ClusterTrace:
        """Serve a per-second demand trace under the given manager.

        ``observer`` (e.g. :class:`repro.obs.live.ClusterObserver`) is
        called once per second with
        ``on_second(cluster, t_s, demand, served, node_powers)`` —
        the hook live monitoring, per-node estimation and drift
        detection plug into.  With telemetry enabled, per-node and
        cluster-level gauges are published every second regardless of
        the observer.  ``start_s`` offsets the observer's clock so a
        driving loop can feed the trace in slices (node state carries
        over between calls anyway).
        """
        trace = ClusterTrace()
        trace.node_power_w = [[] for _ in self.nodes]
        node_energy = [0.0] * len(self.nodes)
        for t, demand in enumerate(demand_trace):
            demand = min(demand, self.capacity)
            manager.place(self, demand)
            node_powers = self._step_second()
            power = sum(node_powers)
            served = sum(
                node.assigned_threads for node in self.nodes if node.available
            )
            nodes_on = sum(node.powered for node in self.nodes)
            trace.demand.append(demand)
            trace.served.append(served)
            trace.power_w.append(power)
            trace.nodes_on.append(nodes_on)
            for i, node_power in enumerate(node_powers):
                trace.node_power_w[i].append(node_power)
                node_energy[i] += node_power  # 1 s windows: W == J/s
            if obs.enabled():
                registry = obs.registry()
                registry.gauge("cluster_power_watts", power)
                registry.gauge("cluster_nodes_on", nodes_on)
                registry.gauge("cluster_demand_threads", demand)
                registry.gauge("cluster_served_threads", served)
                for node, node_power, energy in zip(
                    self.nodes, node_powers, node_energy
                ):
                    labels = {"node": node.node_id}
                    registry.gauge("cluster_node_power_watts", node_power, labels)
                    registry.gauge("cluster_node_energy_joules", energy, labels)
                # Cross-node rollup through the fleet-observability
                # plane: the same min/mean/p50/p95/max gauges a
                # FleetMonitor publishes per lane.
                from repro.obs.fleet import publish_lane_aggregates

                publish_lane_aggregates(
                    "cluster_node", np.asarray(node_powers, dtype=float)
                )
            if observer is not None:
                observer.on_second(
                    self, start_s + float(t + 1), demand, served, node_powers
                )
        return trace


def diurnal_demand(
    duration_s: int,
    peak_threads: int,
    trough_threads: int,
    period_s: float = 600.0,
    noise: float = 0.1,
    seed: int = 3,
) -> "list[int]":
    """A compressed day: sinusoidal demand between trough and peak."""
    if trough_threads > peak_threads:
        raise ValueError("trough must not exceed peak")
    rng = np.random.default_rng(seed)
    t = np.arange(duration_s)
    mid = (peak_threads + trough_threads) / 2.0
    amplitude = (peak_threads - trough_threads) / 2.0
    base = mid - amplitude * np.cos(2.0 * np.pi * t / period_s)
    jitter = rng.normal(0.0, noise * max(peak_threads, 1), size=duration_s)
    return [int(round(v)) for v in np.clip(base + jitter, 0, None)]
