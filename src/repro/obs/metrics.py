"""Process-local metrics: counters, gauges and fixed-bucket histograms.

:class:`MetricsRegistry` is the single store a process accumulates
telemetry into.  It is deliberately dependency-free and boring:

* **counters** only ever go up (`inc`),
* **gauges** hold the last value written (`gauge`),
* **histograms** have *fixed* bucket upper edges chosen at first
  observation (`observe`); Prometheus ``le`` semantics, i.e. a value
  equal to an edge lands in that edge's bucket.

Registries are mergeable: counters and histogram cells add, gauges are
right-biased (the merged-in registry wins).  All three rules are
associative, so aggregating worker snapshots in any grouping yields the
same totals — the property the parallel sweep engine relies on when it
funnels per-worker registries back to the parent.

Exposition comes in two flavours: :meth:`MetricsRegistry.to_prometheus`
(text format an exporter endpoint or ``promtool`` can ingest) and
:meth:`MetricsRegistry.to_json` (the ``metrics.json`` the CLI dumps and
``repro-power obs`` pretty-prints).

Registries are **thread-safe**: every mutation and every read-out holds
one per-registry ``RLock``, so the live HTTP exposition server
(:mod:`repro.obs.http`) can scrape while the simulation thread records.
The lock is only ever reached when telemetry is enabled — the disabled
hot path stays a lone module-level boolean check in :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default histogram edges, tuned for sub-second code timings (seconds).
DEFAULT_BUCKETS: "tuple[float, ...]" = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: A metric key: (name, ((label, value), ...)) with labels sorted.
MetricKey = "tuple[str, tuple[tuple[str, str], ...]]"

#: Help text for the repo's well-known metrics, emitted as ``# HELP``
#: lines by :meth:`MetricsRegistry.to_prometheus`.  Call sites can
#: register more at metric creation (``help=`` on inc/gauge/observe, or
#: :meth:`MetricsRegistry.describe`); registry merges carry them along.
DEFAULT_HELP: "dict[str, str]" = {
    "sim_ticks_total": "Simulated ticks executed.",
    "run_cache_hits_total": "Disk-cache hits during sweeps.",
    "run_cache_misses_total": "Disk-cache misses during sweeps.",
    "run_cache_writes_total": "Runs stored to the disk cache.",
    "estimator_samples_total": "Online estimation windows processed.",
    "models_trained_total": "Subsystem model fits.",
    "experiments_total": "Table/figure entry points executed.",
    "live_windows_total": "Sampler windows seen by the live monitor.",
    "drift_alerts_total": "Drift alert transitions.",
    "sweep_retries_total": "Per-task retries (exception or timeout).",
    "sweep_worker_failures_total": "Worker deaths absorbed by the sweep.",
    "sweep_failed_specs_total": "Specs permanently failed after retries.",
    "flight_bundles_total": "Flight-recorder bundles written to disk.",
    "sim_ticks_per_second": "Batched tick-loop throughput.",
    "sim_time_seconds": "Simulated time reached.",
    "sim_energy_joules": "True integrated energy per subsystem.",
    "validation_error_pct": "Equation-6 estimation error.",
    "live_power_watts": "Live true/estimated power per window.",
    "live_error_pct": "Live per-window estimation error.",
    "drift_error_pct": "The drift monitor's EWMA error.",
    "drift_alert_active": "1 while the drift stream is firing.",
    "serve_nodes_fresh": "Streaming-service nodes with fresh estimates.",
    "serve_nodes_stale": "Streaming-service nodes past the staleness bound.",
    "serve_fleet_power_watts": "Fleet power aggregate across fresh nodes.",
    "dc_power_watts": "Datacenter true power per second.",
    "dc_estimated_power_watts": "Datacenter estimated power per second.",
    "dc_cap_watts": "The datacenter power cap.",
    "alerts_firing": "1 while the keyed alert fires, 0 once resolved.",
}


def _escape_help(text: str) -> str:
    """Escape per the exposition format: ``\\`` and newlines."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def metric_key(name: str, labels: "dict[str, object] | None" = None) -> MetricKey:
    """Canonical hashable key for a named, labelled metric."""
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class Histogram:
    """A fixed-bucket histogram (Prometheus ``le`` semantics).

    ``buckets`` are ascending upper edges; an implicit ``+Inf`` bucket
    catches everything above the last edge.  ``counts[i]`` is the number
    of observations with ``value <= buckets[i]`` (exclusive of lower
    buckets); ``counts[-1]`` is the ``+Inf`` cell.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: "tuple[float, ...]" = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must strictly ascend: {edges}")
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation.

        Observations inside a bucket are assumed uniformly distributed
        between its bounds (``histogram_quantile`` semantics): the
        returned value interpolates linearly between the bucket's lower
        and upper edge.  The first bucket's lower bound is 0 when its
        upper edge is positive (non-negative data), else the edge
        itself.  Quantiles landing in the ``+Inf`` bucket clamp to the
        last finite edge.  Returns NaN for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for i, cell in enumerate(self.counts[:-1]):
            previous = cumulative
            cumulative += cell
            if cell and cumulative >= target:
                if i:
                    lower = self.buckets[i - 1]
                elif self.buckets[0] > 0.0:
                    lower = 0.0
                else:
                    lower = self.buckets[0]
                upper = self.buckets[i]
                return lower + (upper - lower) * (target - previous) / cell
        return self.buckets[-1]

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls(tuple(data["buckets"]))
        counts = list(data["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("histogram snapshot has mismatched cell count")
        hist.counts = [int(c) for c in counts]
        hist.sum = float(data["sum"])
        hist.count = int(data["count"])
        return hist


def _labels_dict(key: MetricKey) -> "dict[str, str]":
    return dict(key[1])


def _prom_labels(key: MetricKey, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    items = key[1] + extra
    if not items:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in items
    )
    return "{" + rendered + "}"


class MetricsRegistry:
    """All counters, gauges and histograms of one process.

    Every public method holds the registry's ``RLock``, so concurrent
    recording (simulation thread) and exposition (HTTP scrape thread)
    interleave safely.  Direct access to the ``counters`` / ``gauges`` /
    ``histograms`` dicts is lock-free and only safe from the recording
    thread or while no other thread mutates.
    """

    def __init__(self) -> None:
        self.counters: "dict[MetricKey, float]" = {}
        self.gauges: "dict[MetricKey, float]" = {}
        self.histograms: "dict[MetricKey, Histogram]" = {}
        #: Per-metric-name help text (``# HELP`` lines); merged across
        #: registries right-biased like gauges.
        self.help: "dict[str, str]" = {}
        self._lock = threading.RLock()

    # -- recording -----------------------------------------------------

    def describe(self, name: str, text: str) -> None:
        """Register help text for a metric name (``# HELP`` line)."""
        with self._lock:
            self.help[name] = str(text)

    def inc(
        self,
        name: str,
        value: float = 1.0,
        labels: "dict[str, object] | None" = None,
        help: "str | None" = None,
    ) -> None:
        """Add ``value`` (>= 0) to a counter."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (got {value})")
        key = metric_key(name, labels)
        with self._lock:
            if help is not None:
                self.help[name] = help
            self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def gauge(
        self,
        name: str,
        value: float,
        labels: "dict[str, object] | None" = None,
        help: "str | None" = None,
    ) -> None:
        """Set a gauge to ``value`` (last write wins)."""
        with self._lock:
            if help is not None:
                self.help[name] = help
            self.gauges[metric_key(name, labels)] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: "dict[str, object] | None" = None,
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
        help: "str | None" = None,
    ) -> None:
        """Record one observation into a fixed-bucket histogram.

        ``buckets`` applies on first use of the (name, labels) pair;
        later observations must agree (merging enforces it too).
        """
        key = metric_key(name, labels)
        with self._lock:
            if help is not None:
                self.help[name] = help
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = Histogram(buckets)
            hist.observe(value)

    # -- merging / snapshots -------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (associative).

        Counters and histograms add; gauges take ``other``'s value on
        key collisions (right-biased), matching "the later write wins"
        when snapshots are merged in execution order.  Each side's lock
        is taken in turn (never both at once), so two registries merging
        into each other concurrently cannot deadlock.
        """
        self.merge_snapshot(other.snapshot())

    def snapshot(self) -> dict:
        """A picklable/JSON-safe deep copy of every metric."""
        with self._lock:
            return {
                "help": dict(self.help),
                "counters": [
                    {"name": k[0], "labels": _labels_dict(k), "value": v}
                    for k, v in sorted(self.counters.items())
                ],
                "gauges": [
                    {"name": k[0], "labels": _labels_dict(k), "value": v}
                    for k, v in sorted(self.gauges.items())
                ],
                "histograms": [
                    {"name": k[0], "labels": _labels_dict(k), **h.to_dict()}
                    for k, h in sorted(self.histograms.items())
                ],
            }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry."""
        with self._lock:
            self.help.update(snapshot.get("help", {}))
            for entry in snapshot.get("counters", ()):
                self.inc(entry["name"], entry["value"], entry.get("labels"))
            for entry in snapshot.get("gauges", ()):
                self.gauge(entry["name"], entry["value"], entry.get("labels"))
            for entry in snapshot.get("histograms", ()):
                key = metric_key(entry["name"], entry.get("labels"))
                incoming = Histogram.from_dict(entry)
                mine = self.histograms.get(key)
                if mine is None:
                    self.histograms[key] = incoming
                else:
                    mine.merge(incoming)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.help.clear()

    @property
    def empty(self) -> bool:
        with self._lock:
            return not (self.counters or self.gauges or self.histograms)

    def __getstate__(self) -> dict:
        return self.snapshot()

    def __setstate__(self, state: dict) -> None:
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        self.help = {}
        self._lock = threading.RLock()
        self.merge_snapshot(state)

    # -- exposition ----------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every metric.

        Emits ``# HELP`` (when registered here or in
        :data:`DEFAULT_HELP`, newline/backslash-escaped per the
        exposition format) and ``# TYPE`` before each metric family.
        """
        lines: "list[str]" = []
        seen_types: "set[str]" = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                text = self.help.get(name, DEFAULT_HELP.get(name))
                if text:
                    lines.append(f"# HELP {name} {_escape_help(text)}")
                lines.append(f"# TYPE {name} {kind}")

        with self._lock:
            for key, value in sorted(self.counters.items()):
                type_line(key[0], "counter")
                lines.append(f"{key[0]}{_prom_labels(key)} {value:g}")
            for key, value in sorted(self.gauges.items()):
                type_line(key[0], "gauge")
                lines.append(f"{key[0]}{_prom_labels(key)} {value:g}")
            for key, hist in sorted(self.histograms.items()):
                name = key[0]
                type_line(name, "histogram")
                cumulative = 0
                for edge, cell in zip(hist.buckets, hist.counts):
                    cumulative += cell
                    labels = _prom_labels(key, (("le", f"{edge:g}"),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _prom_labels(key, (("le", "+Inf"),))
                lines.append(f"{name}_bucket{labels} {hist.count}")
                lines.append(f"{name}_sum{_prom_labels(key)} {hist.sum:g}")
                lines.append(f"{name}_count{_prom_labels(key)} {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """JSON-ready exposition (same shape as :meth:`snapshot`)."""
        return self.snapshot()
