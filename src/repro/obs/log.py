"""Logging configuration for the ``repro`` package.

Modules own their loggers the standard way::

    import logging
    logger = logging.getLogger(__name__)

and stay silent until someone configures handlers.  :func:`configure`
is that someone: it attaches one stream handler to the ``repro``
package logger, honouring the ``REPRO_LOG_LEVEL`` environment variable
(``DEBUG``/``INFO``/``WARNING``/``ERROR``/``CRITICAL`` or a numeric
level; default ``WARNING``).  The CLI calls it on startup; library
users can call it themselves or configure ``logging`` however they
like — :func:`configure` never touches the root logger.
"""

from __future__ import annotations

import logging
import os

#: Environment variable that selects the level (name or number).
LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_configured = False


def level_from_env(default: int = logging.WARNING) -> int:
    """The level named by ``$REPRO_LOG_LEVEL`` (or ``default``)."""
    raw = os.environ.get(LEVEL_ENV_VAR, "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    level = logging.getLevelName(raw.upper())
    if isinstance(level, int):
        return level
    logging.getLogger(__name__).warning(
        "ignoring unknown %s=%r", LEVEL_ENV_VAR, raw
    )
    return default


def configure(level: "int | str | None" = None, force: bool = False) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent).

    Args:
        level: explicit level; default comes from ``REPRO_LOG_LEVEL``.
        force: reconfigure even if :func:`configure` already ran (used
            to re-read the environment, e.g. in tests).
    """
    global _configured
    logger = logging.getLogger("repro")
    if _configured and not force:
        if level is not None:
            logger.setLevel(level)
        return logger
    for handler in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_obs = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level if level is not None else level_from_env())
    # Propagation stays on: test harnesses and applications that attach
    # root handlers (pytest's caplog, systemd journald shims) still see
    # repro records.  The root logger has no handlers by default, so
    # nothing double-prints in a plain CLI session.
    _configured = True
    return logger


def get_logger(name: str) -> logging.Logger:
    """Alias for :func:`logging.getLogger` (kept for discoverability)."""
    return logging.getLogger(name)
