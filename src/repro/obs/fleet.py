"""Fleet-scale observability: every lane watched in batched passes.

PR 6's :class:`~repro.simulator.fleet.FleetServer` steps hundreds of
servers per numpy pass, but the scalar live stack
(:class:`~repro.obs.live.LiveMonitor` + one
:class:`~repro.obs.drift.DriftMonitor` per server) would undo that
batching: N monitors mean N single-sample estimator calls and N python
EWMA updates per sampling period.  This module is the vectorized
counterpart:

* :class:`FleetMonitor` hooks the fleet tick loop **once** (the
  disabled path stays one ``is not None`` check, mirroring
  ``attach_monitor``), captures each closing lane's counter snapshot
  and true energy delta per pulse, and defers the heavy work: one
  batched :meth:`TrickleDownSuite.evaluate` design-matrix pass over all
  pending windows per :meth:`FleetMonitor.flush`;
* :class:`FleetDriftMonitor` keeps per-lane, per-subsystem EWMA /
  window / firing state as ``(width,)`` arrays per stream and applies
  exactly the scalar :class:`DriftMonitor` update rule elementwise —
  same 9 % SLO, same ``min_windows`` arming, same ``resolve_ratio``
  hysteresis — so a width-W fleet produces the same alert transitions
  as W independent scalar monitors (property-tested in
  ``tests/test_fleet_obs.py``);
* :class:`LaneBoard` retains each lane's latest window comparison and a
  bounded history for the ``/fleet/lane/<i>`` drill-down;
* :func:`publish_lane_aggregates` publishes cross-lane min / mean /
  p50 / p95 / max gauges — shared by the fleet plane and the
  fleet-engine cluster's per-node rollup.

Everything is clocked by the caller (simulation time), so fixed seeds
give identical windows, EWMAs and alerts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.events import SUBSYSTEMS
from repro.obs.drift import DEFAULT_SLO_PCT, DriftAlert, _EPS_W
from repro.obs.live import DEFAULT_WINDOW_S, WindowedRegistry

#: Cross-lane aggregate labels published by :func:`publish_lane_aggregates`.
AGGREGATES = ("min", "mean", "p50", "p95", "max")

#: Default per-lane drill-down history (windows kept per lane).
DEFAULT_LANE_HISTORY = 32

#: Default offender count for ``/fleet/lanes``.
DEFAULT_TOP_LANES = 8


@dataclass(frozen=True)
class LaneDriftAlert(DriftAlert):
    """A :class:`DriftAlert` that knows which fleet lane it belongs to."""

    lane: int = -1

    def to_dict(self) -> dict:
        doc = super().to_dict()
        doc["lane"] = self.lane
        return doc


class _LaneStream:
    """One subsystem's per-lane EWMA state (``(width,)`` arrays)."""

    __slots__ = ("ewma", "windows", "firing")

    def __init__(self, width: int) -> None:
        self.ewma = np.zeros(width)
        self.windows = np.zeros(width, dtype=np.int64)
        self.firing = np.zeros(width, dtype=bool)


class FleetDriftMonitor:
    """The scalar :class:`DriftMonitor` update rule, vectorized per lane.

    Per stream (subsystem plus the synthetic ``total``), the EWMA /
    window-count / firing state of every lane lives in one ``(width,)``
    array; :meth:`observe` updates a batch of lanes with the identical
    elementwise arithmetic the scalar monitor applies (seed-on-first-
    window, ``ewma += alpha * (err - ewma)``, arm after ``min_windows``,
    fire above ``slo_pct``, resolve below ``resolve_ratio * slo_pct``),
    so lane ``i``'s state is bit-identical to a scalar monitor fed lane
    ``i``'s windows in the same order.

    The inspection surface mirrors the scalar monitor's — ``firing``,
    ``unresolved()``, ``history()``, ``to_json()`` — with stream names
    qualified as ``"<subsystem>[<lane>]"`` so the drift-aware
    ``/healthz`` handler works unchanged.
    """

    def __init__(
        self,
        width: int,
        slo_pct: float = DEFAULT_SLO_PCT,
        alpha: float = 0.25,
        min_windows: int = 3,
        resolve_ratio: float = 0.8,
        max_history: int = 1024,
    ) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if slo_pct <= 0:
            raise ValueError("slo_pct must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if min_windows < 1:
            raise ValueError("min_windows must be >= 1")
        if not 0.0 < resolve_ratio <= 1.0:
            raise ValueError("resolve_ratio must be in (0, 1]")
        self.width = int(width)
        self.slo_pct = float(slo_pct)
        self.alpha = float(alpha)
        self.min_windows = int(min_windows)
        self.resolve_ratio = float(resolve_ratio)
        self._streams: "dict[str, _LaneStream]" = {}
        self._history: "deque[LaneDriftAlert]" = deque(maxlen=max_history)

    # -- observation ---------------------------------------------------

    @staticmethod
    def _name(subsystem) -> str:
        return getattr(subsystem, "value", None) or str(subsystem)

    def observe(
        self,
        timestamp_s,
        estimated_w: "dict",
        true_w: "dict",
        lanes: "np.ndarray | None" = None,
    ) -> "list[LaneDriftAlert]":
        """Feed one window per lane of a lane batch; returns transitions.

        ``estimated_w`` / ``true_w`` map subsystems to ``(k,)`` watt
        arrays, one entry per lane in ``lanes`` (default: all lanes).
        ``timestamp_s`` is a scalar or a ``(k,)`` array of per-lane
        window-close times.  Each lane must appear at most once per
        call; feed successive windows of a lane through successive
        calls (the update order is what the scalar equivalence rests
        on).
        """
        estimated = {
            self._name(s): np.asarray(w, dtype=float)
            for s, w in estimated_w.items()
        }
        true = {
            self._name(s): np.asarray(w, dtype=float) for s, w in true_w.items()
        }
        shared = [name for name in true if name in estimated]
        pairs = [(name, estimated[name], true[name]) for name in shared]
        if shared:
            # Sequential adds in shared order: the same float association
            # the scalar monitor's sum() over its pair list performs.
            est_total = pairs[0][1]
            act_total = pairs[0][2]
            for _, est, act in pairs[1:]:
                est_total = est_total + est
                act_total = act_total + act
            pairs.append(("total", est_total, act_total))
        if lanes is None:
            lanes = np.arange(self.width)
        else:
            lanes = np.asarray(lanes, dtype=np.int64)
        times = np.broadcast_to(
            np.asarray(timestamp_s, dtype=float), lanes.shape
        )
        transitions: "list[LaneDriftAlert]" = []
        for name, est, act in pairs:
            error_pct = (
                np.abs(est - act) / np.maximum(np.abs(act), _EPS_W) * 100.0
            )
            transitions.extend(self._update(name, error_pct, times, lanes))
        if obs.enabled():
            self._publish_gauges()
        return transitions

    def _update(
        self,
        name: str,
        error_pct: np.ndarray,
        times: np.ndarray,
        lanes: np.ndarray,
    ) -> "list[LaneDriftAlert]":
        stream = self._streams.get(name)
        if stream is None:
            stream = self._streams[name] = _LaneStream(self.width)
        ewma = stream.ewma[lanes]
        windows = stream.windows[lanes]
        firing = stream.firing[lanes]
        # First window seeds the EWMA directly (no decay toward a fake
        # zero); afterwards the scalar ewma += alpha * (err - ewma).
        updated = np.where(
            windows == 0, error_pct, ewma + self.alpha * (error_pct - ewma)
        )
        windows = windows + 1
        fires = (
            ~firing & (windows >= self.min_windows) & (updated > self.slo_pct)
        )
        resolves = firing & (updated < self.slo_pct * self.resolve_ratio)
        stream.ewma[lanes] = updated
        stream.windows[lanes] = windows
        stream.firing[lanes] = (firing | fires) & ~resolves
        transitions: "list[LaneDriftAlert]" = []
        for idx in np.nonzero(fires)[0]:
            transitions.append(
                self._transition(
                    name, "firing", self.slo_pct, updated, windows, times,
                    lanes, int(idx),
                )
            )
        for idx in np.nonzero(resolves)[0]:
            transitions.append(
                self._transition(
                    name, "resolved", self.slo_pct * self.resolve_ratio,
                    updated, windows, times, lanes, int(idx),
                )
            )
        return transitions

    def _transition(
        self, name, state, threshold_pct, updated, windows, times, lanes, idx
    ) -> LaneDriftAlert:
        alert = LaneDriftAlert(
            subsystem=name,
            state=state,
            error_pct=float(updated[idx]),
            threshold_pct=float(threshold_pct),
            timestamp_s=float(times[idx]),
            window=int(windows[idx]),
            lane=int(lanes[idx]),
        )
        self._history.append(alert)
        obs.inc(
            "fleet_drift_alerts_total", 1.0, {"subsystem": name, "state": state}
        )
        obs.event(
            "drift.alert",
            subsystem=name,
            state=state,
            lane=alert.lane,
            error_pct=alert.error_pct,
            threshold_pct=alert.threshold_pct,
            sim_time_s=alert.timestamp_s,
        )
        return alert

    def _publish_gauges(self) -> None:
        for name, stream in self._streams.items():
            seen = stream.windows > 0
            if seen.any():
                ewma = stream.ewma[seen]
                obs.gauge(
                    "fleet_drift_error_pct", float(ewma.mean()),
                    {"subsystem": name, "agg": "mean"},
                )
                obs.gauge(
                    "fleet_drift_error_pct", float(ewma.max()),
                    {"subsystem": name, "agg": "max"},
                )
            obs.gauge(
                "fleet_drift_firing_lanes", float(stream.firing.sum()),
                {"subsystem": name},
            )

    # -- inspection ----------------------------------------------------

    @property
    def firing(self) -> "tuple[str, ...]":
        """``"<subsystem>[<lane>]"`` labels of every firing cell."""
        labels = []
        for name, stream in self._streams.items():
            for lane in np.nonzero(stream.firing)[0]:
                labels.append(f"{name}[{int(lane)}]")
        return tuple(sorted(labels))

    def firing_lanes(self) -> "tuple[int, ...]":
        """Lanes with at least one firing stream, ascending."""
        mask = np.zeros(self.width, dtype=bool)
        for stream in self._streams.values():
            mask |= stream.firing
        return tuple(int(lane) for lane in np.nonzero(mask)[0])

    def error_pct(self, subsystem) -> np.ndarray:
        """Per-lane EWMA error of one stream (NaN before any window)."""
        stream = self._streams.get(self._name(subsystem))
        out = np.full(self.width, np.nan)
        if stream is not None:
            seen = stream.windows > 0
            out[seen] = stream.ewma[seen]
        return out

    def lane_state(self, lane: int) -> dict:
        """One lane's per-stream state, scalar-``to_json``-shaped."""
        if not 0 <= lane < self.width:
            raise IndexError(f"lane {lane} out of range for width {self.width}")
        return {
            name: {
                "error_pct": float(stream.ewma[lane]),
                "windows": int(stream.windows[lane]),
                "firing": bool(stream.firing[lane]),
            }
            for name, stream in sorted(self._streams.items())
        }

    def history(self) -> "list[LaneDriftAlert]":
        """Every recorded transition, oldest first."""
        return list(self._history)

    def unresolved(self) -> "list[LaneDriftAlert]":
        """Latest firing transition of each currently-firing cell."""
        latest: "dict[tuple[str, int], LaneDriftAlert]" = {}
        for alert in self._history:
            if alert.state == "firing":
                latest[(alert.subsystem, alert.lane)] = alert
        out = []
        for name, stream in sorted(self._streams.items()):
            for lane in np.nonzero(stream.firing)[0]:
                alert = latest.get((name, int(lane)))
                if alert is not None:
                    out.append(alert)
        return out

    def to_json(self) -> dict:
        """The ``/alerts`` document, with per-stream lane summaries."""
        return {
            "width": self.width,
            "slo_pct": self.slo_pct,
            "alpha": self.alpha,
            "min_windows": self.min_windows,
            "resolve_ratio": self.resolve_ratio,
            "firing": list(self.firing),
            "streams": {
                name: {
                    "mean_error_pct": (
                        float(stream.ewma[stream.windows > 0].mean())
                        if (stream.windows > 0).any()
                        else None
                    ),
                    "max_error_pct": (
                        float(stream.ewma[stream.windows > 0].max())
                        if (stream.windows > 0).any()
                        else None
                    ),
                    "windows": int(stream.windows.sum()),
                    "firing_lanes": [
                        int(lane) for lane in np.nonzero(stream.firing)[0]
                    ],
                }
                for name, stream in sorted(self._streams.items())
            },
            "history": [alert.to_dict() for alert in self._history],
        }


class LaneBoard:
    """Latest window comparison and bounded history of every lane."""

    def __init__(
        self,
        width: int,
        seeds: "tuple[int, ...] | None" = None,
        history: int = DEFAULT_LANE_HISTORY,
    ) -> None:
        self.width = int(width)
        self.seeds = tuple(int(s) for s in seeds) if seeds is not None else None
        self._true: "dict[str, np.ndarray]" = {}
        self._est: "dict[str, np.ndarray]" = {}
        self.true_total_w = np.full(width, np.nan)
        self.est_total_w = np.full(width, np.nan)
        self.error_pct = np.full(width, np.nan)
        self.last_t_s = np.full(width, np.nan)
        self.n_windows = np.zeros(width, dtype=np.int64)
        self._history = [deque(maxlen=history) for _ in range(width)]

    def update(
        self,
        times: np.ndarray,
        lanes: np.ndarray,
        estimated_w: "dict[str, np.ndarray]",
        true_w: "dict[str, np.ndarray]",
    ) -> None:
        """Record one window per lane of a lane batch."""
        est_tot: "np.ndarray | None" = None
        true_tot: "np.ndarray | None" = None
        for name, est in estimated_w.items():
            col = self._est.get(name)
            if col is None:
                col = self._est[name] = np.full(self.width, np.nan)
            col[lanes] = est
            est_tot = est if est_tot is None else est_tot + est
        for name, act in true_w.items():
            col = self._true.get(name)
            if col is None:
                col = self._true[name] = np.full(self.width, np.nan)
            col[lanes] = act
            true_tot = act if true_tot is None else true_tot + act
        if est_tot is None or true_tot is None:
            return
        with np.errstate(divide="ignore", invalid="ignore"):
            err = np.where(
                true_tot == 0.0,
                np.nan,
                np.abs(est_tot - true_tot) / np.abs(true_tot) * 100.0,
            )
        times = np.broadcast_to(np.asarray(times, dtype=float), lanes.shape)
        self.true_total_w[lanes] = true_tot
        self.est_total_w[lanes] = est_tot
        self.error_pct[lanes] = err
        self.last_t_s[lanes] = times
        self.n_windows[lanes] += 1
        for i, lane in enumerate(lanes):
            self._history[int(lane)].append(
                (
                    float(times[i]),
                    float(true_tot[i]),
                    float(est_tot[i]),
                    float(err[i]),
                )
            )

    def lane_history(self, lane: int) -> "list[dict]":
        return [
            {
                "timestamp_s": t,
                "true_w": true,
                "estimated_w": est,
                "error_pct": err,
            }
            for t, true, est, err in self._history[lane]
        ]


def publish_lane_aggregates(
    prefix: str,
    true_w: np.ndarray,
    estimated_w: "np.ndarray | None" = None,
    error_pct: "np.ndarray | None" = None,
    labels: "dict | None" = None,
) -> "dict[str, dict[str, float]]":
    """Cross-lane min/mean/p50/p95/max gauges over per-lane values.

    Publishes ``<prefix>_power_watts{agg=...,source=...}`` (and
    ``<prefix>_error_pct{agg=...}`` when ``error_pct`` is given) to the
    process registry — no-ops while telemetry is disabled — and returns
    the computed aggregates for callers that render them directly.
    NaN lanes (never compared, powered down) are ignored.
    """

    def _aggs(values: np.ndarray) -> "dict[str, float]":
        values = np.asarray(values, dtype=float)
        values = values[~np.isnan(values)]
        if values.size == 0:
            return {}
        return {
            "min": float(values.min()),
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50.0)),
            "p95": float(np.percentile(values, 95.0)),
            "max": float(values.max()),
        }

    base = dict(labels) if labels else {}
    out: "dict[str, dict[str, float]]" = {"true": _aggs(true_w)}
    for agg, value in out["true"].items():
        obs.gauge(
            f"{prefix}_power_watts", value,
            {**base, "agg": agg, "source": "true"},
        )
    if estimated_w is not None:
        out["estimated"] = _aggs(estimated_w)
        for agg, value in out["estimated"].items():
            obs.gauge(
                f"{prefix}_power_watts", value,
                {**base, "agg": agg, "source": "estimated"},
            )
    if error_pct is not None:
        out["error_pct"] = _aggs(error_pct)
        for agg, value in out["error_pct"].items():
            obs.gauge(f"{prefix}_error_pct", value, {**base, "agg": agg})
    return out


@dataclass
class _PendingPulse:
    """One tick's closing lanes, captured cheaply for a later flush."""

    timestamp_s: float
    lanes: np.ndarray
    counts: "list[np.ndarray]"  #: per-lane ``(n_events, n_cpus)`` snapshots
    durations: np.ndarray
    true5_w: np.ndarray  #: ``(5, k)`` per-subsystem true mean watts


class FleetMonitor:
    """Watches every lane of a :class:`FleetServer` in batched passes.

    Attach via :meth:`FleetServer.attach_fleet_monitor`; the fleet then
    calls :meth:`on_pulse` once per tick on which sampler windows close
    (a single ``is not None`` check when unattached).  ``on_pulse`` only
    snapshots references and energy deltas; the expensive work — one
    batched :meth:`TrickleDownSuite.evaluate` over all pending windows,
    vectorized :class:`FleetDriftMonitor` updates, aggregation, flight
    frames — happens in :meth:`flush`, triggered automatically when
    every lane has a pending window (or any lane accumulates
    ``max_pending``), and callable explicitly at shutdown.

    Windows flush in per-lane chronological order with their original
    close timestamps, so deferral changes *when* the EWMAs update, not
    *what* they compute: lane ``i``'s drift state matches a scalar
    :class:`~repro.obs.live.LiveMonitor` + :class:`DriftMonitor` pair
    on lane ``i``'s windows.
    """

    def __init__(
        self,
        suite,
        drift: "FleetDriftMonitor | None" = None,
        windows: "WindowedRegistry | None" = None,
        window_s: float = DEFAULT_WINDOW_S,
        flight=None,
        history: int = DEFAULT_LANE_HISTORY,
        flush_lanes: "int | None" = None,
        max_pending: int = 4,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.suite = suite
        self.drift = drift
        self.windows = (
            windows if windows is not None else WindowedRegistry(window_s=window_s)
        )
        self.flight = flight
        self.history = int(history)
        self.flush_lanes = flush_lanes
        self.max_pending = int(max_pending)
        self.board: "LaneBoard | None" = None
        self.n_windows = 0
        self.n_flushes = 0
        self._fleet = None
        self._events: "tuple | None" = None
        self._last_energy: "np.ndarray | None" = None
        self._pending: "list[_PendingPulse]" = []
        self._pending_rounds: "np.ndarray | None" = None
        self._covered = 0
        self._scale: "dict[str, np.ndarray]" = {}

    # -- attachment ----------------------------------------------------

    @property
    def width(self) -> int:
        return 0 if self._fleet is None else self._fleet.width

    def on_attach_fleet(self, fleet) -> None:
        """Prime baselines when the fleet adopts the monitor."""
        self._fleet = fleet
        width = fleet.width
        if self.drift is None:
            self.drift = FleetDriftMonitor(width)
        elif self.drift.width != width:
            raise ValueError(
                f"drift monitor width {self.drift.width} != fleet width {width}"
            )
        self.board = LaneBoard(width, seeds=fleet.seeds, history=self.history)
        self._events = tuple(fleet.lane(0).counters.events)
        self._last_energy = fleet._energy5.copy()
        self._pending_rounds = np.zeros(width, dtype=np.int64)
        self._covered = 0
        if self.flush_lanes is None:
            self.flush_lanes = width

    def set_suite(self, suite) -> None:
        """Swap the model suite (e.g. after recalibration)."""
        self.suite = suite

    # -- seeded mis-calibration (per-lane ``suite.scaled`` analogue) ---

    def perturb_lanes(
        self, factor: float, lanes, subsystems=None
    ) -> None:
        """Scale the named lanes' predictions by ``factor``.

        Post-multiplying a lane's predictions equals evaluating
        :meth:`TrickleDownSuite.scaled`'s coefficient-scaled suite up to
        float round-off, so this seeds the same per-lane
        mis-calibration the scalar CLI injects with ``suite.scaled`` —
        without forking the design-matrix pass per lane.
        """
        if self._fleet is None:
            raise RuntimeError("attach the monitor to a fleet first")
        names = (
            [getattr(s, "value", None) or str(s) for s in subsystems]
            if subsystems is not None
            else [s.value for s in SUBSYSTEMS]
        )
        lanes = np.asarray(list(lanes), dtype=np.int64)
        for name in names:
            scale = self._scale.get(name)
            if scale is None:
                scale = self._scale[name] = np.ones(self._fleet.width)
            scale[lanes] = float(factor)

    def restore_lanes(self) -> None:
        """Drop every per-lane perturbation (back to the calibrated suite)."""
        self._scale.clear()

    # -- the hot hook --------------------------------------------------

    def on_pulse(self, fleet, lanes: np.ndarray, now_s: float) -> None:
        """Capture one tick's closing lanes (cheap; no estimation).

        Called from inside ``FleetServer.run_ticks`` with the indices
        of the lanes whose sampler windows just closed.  Snapshots the
        already-materialized counter arrays by reference and takes the
        per-subsystem energy delta; everything else waits for
        :meth:`flush`.
        """
        lanes = np.asarray(lanes, dtype=np.int64)
        samp_counts, samp_dur = fleet._samp_counts, fleet._samp_dur
        counts = [samp_counts[int(lane)][-1] for lane in lanes]
        durations = np.array([samp_dur[int(lane)][-1] for lane in lanes])
        e_now = fleet._energy5[:, lanes].copy()
        true5 = (e_now - self._last_energy[:, lanes]) / durations
        self._last_energy[:, lanes] = e_now
        self._pending.append(
            _PendingPulse(float(now_s), lanes, counts, durations, true5)
        )
        rounds = self._pending_rounds
        self._covered += int((rounds[lanes] == 0).sum())
        rounds[lanes] += 1
        if (
            self._covered >= self.flush_lanes
            or int(rounds[lanes].max()) >= self.max_pending
        ):
            self.flush()

    # -- the batched pass ----------------------------------------------

    def flush(self) -> "list[LaneDriftAlert]":
        """Run the deferred batched pass; returns drift transitions.

        Stacks every pending window into one
        :class:`~repro.core.traces.CounterTrace`, evaluates the suite's
        design matrix once, then partitions the rows into *rounds* (the
        r-th pending window of each lane) and feeds each round to the
        vectorized drift monitor — per-lane window order is preserved,
        so the EWMA arithmetic is unchanged by the deferral.
        """
        pending, self._pending = self._pending, []
        if not pending:
            return []
        from repro.core.traces import CounterTrace

        self._pending_rounds[:] = 0
        self._covered = 0
        lanes_all = np.concatenate([p.lanes for p in pending])
        times_all = np.concatenate(
            [np.full(len(p.lanes), p.timestamp_s) for p in pending]
        )
        durations = np.concatenate([p.durations for p in pending])
        counts = np.stack(
            [snap for p in pending for snap in p.counts]
        )  # (n_rows, n_events, n_cpus)
        true5 = np.concatenate([p.true5_w for p in pending], axis=1)
        trace = CounterTrace(
            timestamps=times_all,
            durations=durations,
            counts={
                event: counts[:, i, :] for i, event in enumerate(self._events)
            },
        )
        predictions, _ = self.suite.evaluate(trace)
        estimated = {s.value: w for s, w in predictions.items()}
        if self._scale:
            for name, scale in self._scale.items():
                if name in estimated:
                    estimated[name] = estimated[name] * scale[lanes_all]
        true = {
            s.value: true5[i] for i, s in enumerate(SUBSYSTEMS)
        }

        # Round r = the r-th pending window of each lane: within a
        # round every lane appears once, and rounds replay each lane's
        # windows in close order.
        occurrence = np.zeros(self._fleet.width, dtype=np.int64)
        round_of = np.empty(len(lanes_all), dtype=np.int64)
        for i, lane in enumerate(lanes_all):
            round_of[i] = occurrence[lane]
            occurrence[lane] += 1
        transitions: "list[LaneDriftAlert]" = []
        for r in range(int(round_of.max()) + 1):
            sel = round_of == r
            lanes = lanes_all[sel]
            times = times_all[sel]
            est_r = {name: col[sel] for name, col in estimated.items()}
            true_r = {name: col[sel] for name, col in true.items()}
            transitions.extend(
                self.drift.observe(times, est_r, true_r, lanes=lanes)
            )
            self.board.update(times, lanes, est_r, true_r)
        self.n_windows += len(lanes_all)
        self.n_flushes += 1
        last_t = float(times_all[-1])
        if obs.enabled():
            publish_lane_aggregates(
                "fleet",
                self.board.true_total_w,
                self.board.est_total_w,
                self.board.error_pct,
            )
            obs.gauge(
                "fleet_monitor_windows_total", float(self.n_windows)
            )
        self.windows.ingest(last_t, obs.registry())
        if self.flight is not None:
            self._record_flight(last_t, transitions)
        return transitions

    def _record_flight(self, last_t: float, transitions) -> None:
        summary = self.fleet_document()
        self.flight.record(
            last_t,
            true_w=summary["power_w"]["true"].get("mean"),
            estimated_w=summary["power_w"].get("estimated", {}).get("mean"),
            error_pct=summary.get("error_pct", {}).get("mean"),
            firing_lanes=list(summary["firing_lanes"]),
            n_windows=self.n_windows,
        )
        for transition in transitions:
            if transition.state == "firing":
                detail = transition.to_dict()
                detail["fleet"] = {
                    "width": self.width,
                    "firing_lanes": list(self.drift.firing_lanes()),
                    "power_w": summary["power_w"],
                }
                detail["lane_history"] = self.board.lane_history(
                    transition.lane
                )
                self.flight.trigger("drift.alert", detail=detail)

    # -- drill-down documents (the ``/fleet*`` routes) -----------------

    def fleet_document(self) -> dict:
        """The ``/fleet`` summary: width, aggregates, alert rollups."""
        board, drift = self.board, self.drift

        def _aggs(values: np.ndarray) -> "dict[str, float]":
            values = values[~np.isnan(values)]
            if values.size == 0:
                return {}
            return {
                "min": float(values.min()),
                "mean": float(values.mean()),
                "p50": float(np.percentile(values, 50.0)),
                "p95": float(np.percentile(values, 95.0)),
                "max": float(values.max()),
            }

        history = drift.history()
        return {
            "width": self.width,
            "n_windows": self.n_windows,
            "n_flushes": self.n_flushes,
            "pending_windows": int(sum(len(p.lanes) for p in self._pending)),
            "power_w": {
                "true": _aggs(board.true_total_w),
                "estimated": _aggs(board.est_total_w),
            },
            "error_pct": _aggs(board.error_pct),
            "slo_pct": drift.slo_pct,
            "firing_lanes": list(drift.firing_lanes()),
            "firing": list(drift.firing),
            "alerts": {
                "total": len(history),
                "firing": sum(1 for a in history if a.state == "firing"),
                "resolved": sum(1 for a in history if a.state == "resolved"),
            },
        }

    def lanes_document(self, top: "int | None" = None) -> dict:
        """``/fleet/lanes``: lanes ranked worst-first by total-stream EWMA."""
        board, drift = self.board, self.drift
        residual = drift.error_pct("total")
        order = np.argsort(np.where(np.isnan(residual), -np.inf, residual))
        order = order[::-1]
        if top is not None:
            order = order[: max(int(top), 0)]
        lanes = []
        for lane in order:
            lane = int(lane)
            lanes.append(
                {
                    "lane": lane,
                    "seed": (
                        board.seeds[lane] if board.seeds is not None else None
                    ),
                    "drift_error_pct": (
                        None
                        if np.isnan(residual[lane])
                        else float(residual[lane])
                    ),
                    "window_error_pct": (
                        None
                        if np.isnan(board.error_pct[lane])
                        else float(board.error_pct[lane])
                    ),
                    "true_w": (
                        None
                        if np.isnan(board.true_total_w[lane])
                        else float(board.true_total_w[lane])
                    ),
                    "estimated_w": (
                        None
                        if np.isnan(board.est_total_w[lane])
                        else float(board.est_total_w[lane])
                    ),
                    "n_windows": int(board.n_windows[lane]),
                    "firing": sorted(
                        name
                        for name, state in drift.lane_state(lane).items()
                        if state["firing"]
                    ),
                }
            )
        return {
            "width": self.width,
            "ranking": "drift total-stream EWMA error, worst first",
            "lanes": lanes,
        }

    def lane_document(self, lane: int) -> dict:
        """``/fleet/lane/<i>``: one lane's full drill-down.

        Raises :class:`IndexError` for an out-of-range lane (the HTTP
        layer maps that to 404).
        """
        if not 0 <= lane < self.width:
            raise IndexError(f"lane {lane} out of range for width {self.width}")
        board = self.board
        return {
            "lane": int(lane),
            "seed": board.seeds[lane] if board.seeds is not None else None,
            "last_window_s": (
                None
                if np.isnan(board.last_t_s[lane])
                else float(board.last_t_s[lane])
            ),
            "n_windows": int(board.n_windows[lane]),
            "true_w": (
                None
                if np.isnan(board.true_total_w[lane])
                else float(board.true_total_w[lane])
            ),
            "estimated_w": (
                None
                if np.isnan(board.est_total_w[lane])
                else float(board.est_total_w[lane])
            ),
            "error_pct": (
                None
                if np.isnan(board.error_pct[lane])
                else float(board.error_pct[lane])
            ),
            "streams": self.drift.lane_state(lane),
            "history": board.lane_history(lane),
        }
