"""Online drift monitoring: EWMA residuals against the paper's SLO.

Counter-based power models are only trustworthy in production while
their residuals are watched (Mazzola et al., 2024).  The paper's own
quality bound — Tables 3-4 hold the *average* per-subsystem estimation
error under 9 % — makes a natural service-level objective for a
long-running estimator: if the smoothed |estimated − true| / true error
of any subsystem climbs past that bound, the model has drifted from the
machine it was calibrated on and its numbers should stop steering
power-down decisions.

:class:`DriftMonitor` implements that check as a streaming state
machine.  Each observed window updates one exponentially-weighted
moving average per subsystem (plus a ``total`` stream over the summed
power); a stream **fires** when its EWMA exceeds the SLO after a
minimum number of windows, and **resolves** once it falls back below
``resolve_ratio × slo`` (hysteresis, so a stream hovering at the
threshold cannot flap).  Transitions are returned to the caller and —
when telemetry is enabled — emitted as structured ``drift.alert`` trace
events and ``drift_*`` metrics, so they appear in ``trace.jsonl`` and
on the live ``/alerts`` endpoint.

The monitor is deterministic: it owns no clock and no randomness, every
timestamp comes from the caller (simulation time in practice), so a
fixed-seed run produces the identical alert sequence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro import obs

#: Tables 3-4 bound: average per-subsystem error stays under 9 %.
DEFAULT_SLO_PCT = 9.0

#: Guard denominator for residuals against a near-zero true power.
_EPS_W = 1.0e-9


@dataclass(frozen=True)
class DriftAlert:
    """One alert-state transition of one subsystem stream."""

    subsystem: str
    state: str  #: ``"firing"`` or ``"resolved"``
    error_pct: float  #: the stream's EWMA error at the transition
    threshold_pct: float  #: the bound that was crossed
    timestamp_s: float  #: caller-supplied (simulation) time
    window: int  #: how many windows the stream had seen
    #: The top-|watts| attribution terms of the stream at transition
    #: time (``(term, watts)`` pairs) — present when the caller fed an
    #: :class:`~repro.obs.attribution.Attribution` to ``observe()``,
    #: so an alert names its likely offenders without a second query.
    top_terms: "tuple[tuple[str, float], ...]" = ()

    def to_dict(self) -> dict:
        return {
            "subsystem": self.subsystem,
            "state": self.state,
            "error_pct": self.error_pct,
            "threshold_pct": self.threshold_pct,
            "timestamp_s": self.timestamp_s,
            "window": self.window,
            "top_terms": [[term, watts] for term, watts in self.top_terms],
        }


class _Stream:
    """EWMA + alert state of one subsystem."""

    __slots__ = ("ewma", "windows", "firing")

    def __init__(self) -> None:
        self.ewma = 0.0
        self.windows = 0
        self.firing = False


class DriftMonitor:
    """Streams per-subsystem residuals through EWMA + threshold alerts.

    Args:
        slo_pct: firing threshold on the EWMA percentage error
            (default: the paper's 9 % average-error bound).
        alpha: EWMA smoothing factor in (0, 1]; 1 disables smoothing.
        min_windows: windows a stream must have seen before it may fire
            (the first EWMA samples are dominated by the initialisation).
        resolve_ratio: a firing stream resolves when its EWMA drops
            below ``resolve_ratio * slo_pct`` (hysteresis; < 1).
        max_history: transitions kept for :meth:`history` / ``/alerts``.
    """

    def __init__(
        self,
        slo_pct: float = DEFAULT_SLO_PCT,
        alpha: float = 0.25,
        min_windows: int = 3,
        resolve_ratio: float = 0.8,
        max_history: int = 256,
    ) -> None:
        if slo_pct <= 0:
            raise ValueError("slo_pct must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if min_windows < 1:
            raise ValueError("min_windows must be >= 1")
        if not 0.0 < resolve_ratio <= 1.0:
            raise ValueError("resolve_ratio must be in (0, 1]")
        self.slo_pct = float(slo_pct)
        self.alpha = float(alpha)
        self.min_windows = int(min_windows)
        self.resolve_ratio = float(resolve_ratio)
        self._streams: "dict[str, _Stream]" = {}
        self._history: "deque[DriftAlert]" = deque(maxlen=max_history)

    # -- observation ---------------------------------------------------

    @staticmethod
    def _name(subsystem) -> str:
        return getattr(subsystem, "value", None) or str(subsystem)

    def observe(
        self,
        timestamp_s: float,
        estimated_w: "dict",
        true_w: "dict",
        attribution=None,
    ) -> "list[DriftAlert]":
        """Feed one window of per-subsystem power; returns transitions.

        ``estimated_w`` and ``true_w`` map subsystems (enum members or
        plain strings) to Watts; only subsystems present in **both**
        dicts are compared.  A synthetic ``total`` stream over the
        summed power of the shared subsystems is always maintained.

        ``attribution`` (optional) is the window's per-term watt
        decomposition; any transition it produces then carries that
        stream's top-3 offending terms (the ``total`` stream gets
        namespaced ``subsystem/term`` labels).
        """
        estimated = {self._name(s): float(w) for s, w in estimated_w.items()}
        true = {self._name(s): float(w) for s, w in true_w.items()}
        shared = [name for name in true if name in estimated]
        pairs = [(name, estimated[name], true[name]) for name in shared]
        if shared:
            pairs.append(
                (
                    "total",
                    sum(estimated[name] for name in shared),
                    sum(true[name] for name in shared),
                )
            )
        transitions: "list[DriftAlert]" = []
        for name, est, actual in pairs:
            error_pct = abs(est - actual) / max(abs(actual), _EPS_W) * 100.0
            top_terms: "tuple[tuple[str, float], ...]" = ()
            if attribution is not None:
                top_terms = tuple(
                    attribution.top_terms(
                        None if name == "total" else name, n=3
                    )
                )
            transition = self._update(
                name, error_pct, float(timestamp_s), top_terms
            )
            if transition is not None:
                transitions.append(transition)
        return transitions

    def _update(
        self,
        name: str,
        error_pct: float,
        timestamp_s: float,
        top_terms: "tuple[tuple[str, float], ...]" = (),
    ) -> "DriftAlert | None":
        stream = self._streams.get(name)
        if stream is None:
            stream = self._streams[name] = _Stream()
        if stream.windows == 0:
            stream.ewma = error_pct  # seed: no decay toward a fake zero
        else:
            stream.ewma += self.alpha * (error_pct - stream.ewma)
        stream.windows += 1

        obs.gauge("drift_error_pct", stream.ewma, {"subsystem": name})

        transition: "DriftAlert | None" = None
        if (
            not stream.firing
            and stream.windows >= self.min_windows
            and stream.ewma > self.slo_pct
        ):
            stream.firing = True
            transition = self._transition(
                stream, name, "firing", self.slo_pct, timestamp_s, top_terms
            )
        elif stream.firing and stream.ewma < self.slo_pct * self.resolve_ratio:
            stream.firing = False
            transition = self._transition(
                stream,
                name,
                "resolved",
                self.slo_pct * self.resolve_ratio,
                timestamp_s,
                top_terms,
            )
        obs.gauge(
            "drift_alert_active", 1.0 if stream.firing else 0.0, {"subsystem": name}
        )
        return transition

    def _transition(
        self,
        stream: _Stream,
        name: str,
        state: str,
        threshold_pct: float,
        timestamp_s: float,
        top_terms: "tuple[tuple[str, float], ...]" = (),
    ) -> DriftAlert:
        alert = DriftAlert(
            subsystem=name,
            state=state,
            error_pct=stream.ewma,
            threshold_pct=threshold_pct,
            timestamp_s=timestamp_s,
            window=stream.windows,
            top_terms=top_terms,
        )
        self._history.append(alert)
        obs.inc("drift_alerts_total", 1.0, {"subsystem": name, "state": state})
        obs.event(
            "drift.alert",
            subsystem=name,
            state=state,
            error_pct=stream.ewma,
            threshold_pct=threshold_pct,
            sim_time_s=timestamp_s,
            top_terms=[[term, watts] for term, watts in top_terms],
        )
        return alert

    # -- inspection ----------------------------------------------------

    @property
    def firing(self) -> "tuple[str, ...]":
        """Names of streams currently in the firing state."""
        return tuple(
            sorted(name for name, s in self._streams.items() if s.firing)
        )

    def error_pct(self, subsystem) -> float:
        """Current EWMA error of one stream (NaN before any window)."""
        stream = self._streams.get(self._name(subsystem))
        if stream is None or stream.windows == 0:
            return float("nan")
        return stream.ewma

    def history(self) -> "list[DriftAlert]":
        """Every recorded transition, oldest first."""
        return list(self._history)

    def unresolved(self) -> "list[DriftAlert]":
        """The latest *firing* transition of each currently-firing
        stream — what a ``/healthz`` 503 body lists."""
        latest: "dict[str, DriftAlert]" = {}
        for alert in self._history:
            if alert.state == "firing":
                latest[alert.subsystem] = alert
        return [latest[name] for name in self.firing if name in latest]

    def to_json(self) -> dict:
        """The ``/alerts`` document: configuration, state, history."""
        return {
            "slo_pct": self.slo_pct,
            "alpha": self.alpha,
            "min_windows": self.min_windows,
            "resolve_ratio": self.resolve_ratio,
            "firing": list(self.firing),
            "streams": {
                name: {
                    "error_pct": stream.ewma,
                    "windows": stream.windows,
                    "firing": stream.firing,
                }
                for name, stream in sorted(self._streams.items())
            },
            "history": [alert.to_dict() for alert in self._history],
        }
