"""Streaming observability: sliding windows and live run monitors.

The PR-2 telemetry is batch-shaped — one registry accumulated over a
run, dumped at the end.  A long-running service built on the estimator
needs the *live* view: what is the power, the model error, the
throughput **right now**?  This module provides the three pieces:

* :class:`WindowedRegistry` — folds successive
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots into
  fixed-width time windows and answers rate / mean / quantile queries
  over the last N windows (counters and histogram cells are
  differenced between snapshots, gauges keep their last value per
  window);
* :class:`LiveMonitor` — attaches to a
  :class:`~repro.simulator.system.Server` and, at every counter-sampler
  window boundary inside ``run_ticks``, compares the trickle-down
  estimate against the simulator's ground-truth power, publishes
  ``live_*`` gauges, and feeds the per-subsystem residuals to a
  :class:`~repro.obs.drift.DriftMonitor`;
* :class:`ClusterObserver` — the same loop for
  :class:`~repro.cluster.Cluster` runs, reading each powered node's
  counter bank once per second (the control-loop-owns-the-counters
  pattern the sampler's ``disable()`` exists for).

Everything here is stdlib-only and clocked by the caller (simulation
time), so a fixed-seed run produces identical windows, residuals and
alerts.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.obs.drift import DriftMonitor
from repro.obs.metrics import Histogram, MetricsRegistry, metric_key

#: Default aggregation window width (seconds of the caller's clock).
DEFAULT_WINDOW_S = 5.0

#: Default number of windows retained (with 5 s windows: 10 minutes).
DEFAULT_MAX_WINDOWS = 120

#: Bucket edges for live total-power histograms (Watts).
POWER_BUCKETS = (50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 400.0)


class _Window:
    """One fixed-width window of metric deltas and last gauge values."""

    __slots__ = ("start_s", "end_s", "counters", "gauges", "histograms")

    def __init__(self, start_s: float, end_s: float) -> None:
        self.start_s = start_s
        self.end_s = end_s
        self.counters: "dict[tuple, float]" = {}
        self.gauges: "dict[tuple, float]" = {}
        self.histograms: "dict[tuple, Histogram]" = {}

    def to_dict(self) -> dict:
        def label_str(key) -> str:
            if not key[1]:
                return key[0]
            inner = ",".join(f"{k}={v}" for k, v in key[1])
            return f"{key[0]}{{{inner}}}"

        return {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "counters": {label_str(k): v for k, v in sorted(self.counters.items())},
            "gauges": {label_str(k): v for k, v in sorted(self.gauges.items())},
            "histograms": {
                label_str(k): h.to_dict() for k, h in sorted(self.histograms.items())
            },
        }


class WindowedRegistry:
    """Folds registry snapshots into fixed-width time windows.

    Successive :meth:`ingest` calls difference the cumulative metrics
    (counters, histogram cells) against the previous snapshot and add
    the delta to the window containing ``now_s``; gauges record their
    last value per window.  Windows are aligned to multiples of
    ``window_s`` and at most ``max_windows`` are retained (older ones
    fall off the sliding edge).

    The clock is the **caller's**: the live monitors pass simulation
    time, so windows are deterministic for a fixed seed.  All methods
    are thread-safe — the HTTP exposition thread may query while the
    simulation thread ingests.

    ``on_evict`` is the durable-telemetry hook: when a window falls off
    the sliding edge (a newer one pushed it past ``max_windows``) it is
    handed — whole, exactly as :meth:`series` reported it — to the
    callback before being dropped, e.g. a
    :class:`~repro.obs.tsdb.WindowSink` persisting it into a store.
    Short runs may finish before anything evicts; :meth:`drain` hands
    over the remaining windows at end of run.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        on_evict=None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.window_s = float(window_s)
        self.max_windows = int(max_windows)
        self.on_evict = on_evict
        self._windows: "deque[_Window]" = deque(maxlen=max_windows)
        self._prev_counters: "dict[tuple, float]" = {}
        self._prev_hist: "dict[tuple, tuple]" = {}
        self._lock = threading.RLock()

    # -- ingestion -----------------------------------------------------

    def _window_for(self, now_s: float) -> _Window:
        start = math.floor(now_s / self.window_s) * self.window_s
        if self._windows:
            last = self._windows[-1]
            if start <= last.start_s:
                return last  # same window (or a non-monotonic clock)
        # The deque would drop the oldest window silently; evict it by
        # hand first so the persistence hook sees every window, oldest
        # first, exactly as the queries reported it.
        if self.on_evict is not None and len(self._windows) == self.max_windows:
            self.on_evict(self._windows.popleft())
        window = _Window(start, start + self.window_s)
        self._windows.append(window)
        return window

    def sink_closed(self, now_s: float) -> int:
        """Hand windows that closed before ``now_s`` to ``on_evict``.

        Unlike eviction/:meth:`drain` the windows stay in the registry
        for queries, so the hook sees each closed window on **every**
        call — it must be idempotent per window (the TSDB
        :class:`~repro.obs.tsdb.WindowSink` is).  This is the eager
        per-tick persistence path: without it, a window would only
        reach the store once it fell off the sliding edge, up to
        ``max_windows * window_s`` seconds after it closed.
        """
        if self.on_evict is None:
            return 0
        with self._lock:
            closed = [w for w in self._windows if w.end_s <= now_s]
        for window in closed:
            self.on_evict(window)
        return len(closed)

    def drain(self) -> int:
        """Hand every retained window to ``on_evict``, oldest first.

        The end-of-run flush for runs too short to evict naturally
        (returns the number of windows handed over; 0 without a hook).
        Drained windows leave the registry, so calling it twice cannot
        double-persist.
        """
        if self.on_evict is None:
            return 0
        with self._lock:
            drained = list(self._windows)
            self._windows.clear()
        for window in drained:
            self.on_evict(window)
        return len(drained)

    def ingest(self, now_s: float, registry: "MetricsRegistry | dict") -> None:
        """Fold one registry snapshot into the window containing ``now_s``.

        ``registry`` may be a live :class:`MetricsRegistry` (a
        consistent snapshot is taken under its lock) or an
        already-taken :meth:`MetricsRegistry.snapshot` dict.  A metric
        whose cumulative value went *down* since the previous ingest is
        treated as reset and its full current value becomes the delta.
        """
        snap = registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
        with self._lock:
            window = self._window_for(float(now_s))
            for entry in snap.get("counters", ()):
                key = metric_key(entry["name"], entry.get("labels"))
                value = float(entry["value"])
                previous = self._prev_counters.get(key, 0.0)
                if value < previous:
                    previous = 0.0
                self._prev_counters[key] = value
                delta = value - previous
                if delta:
                    window.counters[key] = window.counters.get(key, 0.0) + delta
            for entry in snap.get("gauges", ()):
                key = metric_key(entry["name"], entry.get("labels"))
                window.gauges[key] = float(entry["value"])
            for entry in snap.get("histograms", ()):
                key = metric_key(entry["name"], entry.get("labels"))
                self._ingest_histogram(window, key, entry)

    def _ingest_histogram(self, window: _Window, key: tuple, entry: dict) -> None:
        counts = [int(c) for c in entry["counts"]]
        total = int(entry["count"])
        value_sum = float(entry["sum"])
        buckets = tuple(float(b) for b in entry["buckets"])
        prev = self._prev_hist.get(key)
        if prev is not None and prev[0] == buckets and prev[2] <= total:
            prev_counts, prev_sum, prev_count = prev[1], prev[3], prev[2]
        else:  # first sight, reset, or re-bucketed: whole value is new
            prev_counts, prev_sum, prev_count = [0] * len(counts), 0.0, 0
        self._prev_hist[key] = (buckets, counts, total, value_sum)
        if total == prev_count:
            return
        delta = Histogram(buckets)
        delta.counts = [c - p for c, p in zip(counts, prev_counts)]
        delta.sum = value_sum - prev_sum
        delta.count = total - prev_count
        mine = window.histograms.get(key)
        if mine is None:
            window.histograms[key] = delta
        else:
            mine.merge(delta)

    # -- queries -------------------------------------------------------

    def _selected(self, last: "int | None") -> "list[_Window]":
        windows = list(self._windows)
        if last is not None:
            windows = windows[-last:]
        return windows

    def __len__(self) -> int:
        with self._lock:
            return len(self._windows)

    @property
    def span_s(self) -> float:
        """Total time covered by the retained windows."""
        with self._lock:
            return len(self._windows) * self.window_s

    def rate(
        self,
        name: str,
        labels: "dict | None" = None,
        last: "int | None" = None,
    ) -> float:
        """Counter increase per second over the last ``last`` windows.

        The newest window is usually still filling, so the rate is a
        slight underestimate until it closes.  Returns 0.0 with no
        windows.
        """
        key = metric_key(name, labels)
        with self._lock:
            windows = self._selected(last)
            if not windows:
                return 0.0
            total = sum(w.counters.get(key, 0.0) for w in windows)
            return total / (len(windows) * self.window_s)

    def mean(
        self,
        name: str,
        labels: "dict | None" = None,
        last: "int | None" = None,
    ) -> float:
        """Mean over the selected windows (NaN when absent).

        Gauges average their per-window values; histograms merge and
        return the merged mean; counters average their per-window
        deltas.
        """
        key = metric_key(name, labels)
        with self._lock:
            windows = self._selected(last)
            gauge_values = [w.gauges[key] for w in windows if key in w.gauges]
            if gauge_values:
                return sum(gauge_values) / len(gauge_values)
            hists = [w.histograms[key] for w in windows if key in w.histograms]
            if hists:
                total = sum(h.sum for h in hists)
                count = sum(h.count for h in hists)
                return total / count if count else float("nan")
            deltas = [w.counters[key] for w in windows if key in w.counters]
            if deltas:
                return sum(deltas) / len(deltas)
            return float("nan")

    def quantile(
        self,
        name: str,
        q: float,
        labels: "dict | None" = None,
        last: "int | None" = None,
    ) -> float:
        """Histogram quantile over the merged selected windows."""
        key = metric_key(name, labels)
        with self._lock:
            merged: "Histogram | None" = None
            for window in self._selected(last):
                hist = window.histograms.get(key)
                if hist is None:
                    continue
                if merged is None:
                    merged = Histogram(hist.buckets)
                merged.merge(hist)
            if merged is None:
                return float("nan")
            return merged.quantile(q)

    def latest(self, name: str, labels: "dict | None" = None) -> float:
        """Most recent gauge value across windows (NaN when absent)."""
        key = metric_key(name, labels)
        with self._lock:
            for window in reversed(self._windows):
                if key in window.gauges:
                    return window.gauges[key]
            return float("nan")

    def series(
        self,
        name: str,
        labels: "dict | None" = None,
        last: "int | None" = None,
    ) -> "list[tuple[float, float]]":
        """Per-window ``(start_s, value)`` pairs for one metric.

        Counters yield their window delta, gauges their last value,
        histograms their window mean; windows without the metric are
        skipped.
        """
        key = metric_key(name, labels)
        out: "list[tuple[float, float]]" = []
        with self._lock:
            for window in self._selected(last):
                if key in window.counters:
                    out.append((window.start_s, window.counters[key]))
                elif key in window.gauges:
                    out.append((window.start_s, window.gauges[key]))
                elif key in window.histograms:
                    out.append((window.start_s, window.histograms[key].mean))
        return out

    def to_json(self, last: "int | None" = 12) -> dict:
        """JSON-ready view of the last ``last`` windows (newest last)."""
        with self._lock:
            return {
                "window_s": self.window_s,
                "max_windows": self.max_windows,
                "n_windows": len(self._windows),
                "windows": [w.to_dict() for w in self._selected(last)],
            }


# -- live run monitoring ----------------------------------------------


@dataclass(frozen=True)
class LiveSample:
    """One sampler window's live comparison, as rendered by the CLI."""

    timestamp_s: float
    duration_s: float
    true_w: "dict[str, float]"
    estimated_w: "dict[str, float]"
    error_pct: "dict[str, float]"

    @property
    def total_true_w(self) -> float:
        return sum(self.true_w.values())

    @property
    def total_estimated_w(self) -> float:
        return sum(self.estimated_w.values())

    @property
    def total_error_pct(self) -> float:
        true = self.total_true_w
        if true == 0.0:
            return float("nan")
        return abs(self.total_estimated_w - true) / abs(true) * 100.0


class LiveMonitor:
    """Streams estimator-vs-ground-truth residuals out of a Server run.

    Attach to a :class:`~repro.simulator.system.Server` via
    :meth:`~repro.simulator.system.Server.attach_monitor`; every time
    the counter sampler closes a window inside ``run_ticks`` the
    monitor:

    1. estimates per-subsystem power from the window's counter sample
       (through the supplied :class:`SystemPowerEstimator`),
    2. derives the window's true mean power from the energy account,
    3. publishes ``live_power_watts`` / ``live_error_pct`` gauges,
    4. feeds the residuals to the :class:`DriftMonitor`, and
    5. folds the global registry into the :class:`WindowedRegistry`.

    The monitor only reads simulator state — it never touches RNG
    streams or counters — so an attached run stays bit-identical to an
    unmonitored one.
    """

    def __init__(
        self,
        estimator,
        drift: "DriftMonitor | None" = None,
        windows: "WindowedRegistry | None" = None,
        window_s: float = DEFAULT_WINDOW_S,
        flight=None,
    ) -> None:
        self.estimator = estimator
        self.drift = drift if drift is not None else DriftMonitor()
        self.windows = (
            windows if windows is not None else WindowedRegistry(window_s=window_s)
        )
        #: Optional :class:`~repro.obs.flight.FlightRecorder`; when set
        #: every window is recorded as a frame and a *firing* drift
        #: transition dumps a post-mortem bundle.
        self.flight = flight
        self.n_windows = 0
        self.last: "LiveSample | None" = None
        self._last_energy: "dict | None" = None

    def set_suite(self, suite) -> None:
        """Swap the estimator's model suite (e.g. after recalibration)."""
        self.estimator.suite = suite

    def on_attach(self, server) -> None:
        """Prime the energy baseline when the server adopts the monitor."""
        self._last_energy = dict(server.energy._energy_j)

    def on_window(self, server, pulse_s: float) -> "list":
        """Sampler-window callback from ``Server.run_ticks``.

        Returns the drift transitions (usually empty) this window
        produced.
        """
        window = server.sampler.last_window()
        if window is None:
            return []
        _, duration_s, counts = window
        if duration_s <= 0:
            return []
        energy = server.energy._energy_j
        previous = self._last_energy or {s: 0.0 for s in energy}
        true_w = {
            s.value: (energy[s] - previous.get(s, 0.0)) / duration_s for s in energy
        }
        self._last_energy = dict(energy)

        estimate = self.estimator.estimate(
            counts, duration_s=duration_s, timestamp_s=pulse_s
        )
        estimated_w = {s.value: w for s, w in estimate.subsystem_w.items()}
        error_pct = {
            name: abs(estimated_w[name] - true) / max(abs(true), 1.0e-9) * 100.0
            for name, true in true_w.items()
            if name in estimated_w
        }
        sample = LiveSample(
            timestamp_s=float(pulse_s),
            duration_s=float(duration_s),
            true_w=true_w,
            estimated_w=estimated_w,
            error_pct=error_pct,
        )
        self._publish(sample)
        attribution = estimate.attribution
        if attribution is not None:
            # Residual vs. truth (estimated - true): negative is the
            # paper's mcf case — watts the counters cannot see.
            attribution.residual_w = {
                name: estimated_w[name] - true
                for name, true in true_w.items()
                if name in estimated_w
            }
        transitions = self.drift.observe(
            pulse_s, estimated_w, true_w, attribution=attribution
        )
        self.windows.ingest(pulse_s, obs.registry())
        if self.flight is not None:
            self.flight.record(
                pulse_s,
                attribution=attribution,
                true_w=sample.total_true_w,
                estimated_w=sample.total_estimated_w,
                error_pct=sample.total_error_pct,
            )
            for transition in transitions:
                if transition.state == "firing":
                    self.flight.trigger("drift.alert", detail=transition.to_dict())
        self.n_windows += 1
        self.last = sample
        return transitions

    @staticmethod
    def _publish(sample: LiveSample) -> None:
        for name, watts in sample.true_w.items():
            obs.gauge(
                "live_power_watts", watts, {"subsystem": name, "source": "true"}
            )
        for name, watts in sample.estimated_w.items():
            obs.gauge(
                "live_power_watts", watts, {"subsystem": name, "source": "estimated"}
            )
        for name, pct in sample.error_pct.items():
            obs.gauge("live_error_pct", pct, {"subsystem": name})
        obs.gauge(
            "live_power_watts",
            sample.total_true_w,
            {"subsystem": "total", "source": "true"},
        )
        obs.gauge(
            "live_power_watts",
            sample.total_estimated_w,
            {"subsystem": "total", "source": "estimated"},
        )
        obs.gauge("live_error_pct", sample.total_error_pct, {"subsystem": "total"})
        obs.observe(
            "live_total_power_watts", sample.total_true_w, buckets=POWER_BUCKETS
        )
        obs.inc("live_windows_total")


class ClusterObserver:
    """Per-second live telemetry for :meth:`repro.cluster.Cluster.run`.

    With a fitted ``suite``, every powered-up node's counter bank is
    read (and cleared) once per second — the external-control-loop
    pattern ``CounterSampler.disable()`` exists for — estimated, and
    compared against the node's true per-subsystem energy deltas; the
    aggregate residuals stream into the :class:`DriftMonitor`.  Without
    a suite the observer still windows the cluster gauges.
    """

    def __init__(
        self,
        suite=None,
        drift: "DriftMonitor | None" = None,
        windows: "WindowedRegistry | None" = None,
        window_s: float = DEFAULT_WINDOW_S,
        attribute: bool = False,
        flight=None,
        per_node: bool = False,
    ) -> None:
        self.estimator = None
        self.attribute = bool(attribute)
        self.flight = flight
        if suite is not None:
            from repro.core.estimator import SystemPowerEstimator

            self.estimator = SystemPowerEstimator(
                suite, max_history=8, attribute=self.attribute
            )
        self.drift = drift if drift is not None else DriftMonitor()
        self.windows = (
            windows if windows is not None else WindowedRegistry(window_s=window_s)
        )
        #: With ``per_node=True`` (and a suite), each node's residuals
        #: also stream into a per-node
        #: :class:`~repro.obs.fleet.FleetDriftMonitor` — the cluster
        #: face of the fleet observability plane — and per-node
        #: estimate gauges are published.
        self.per_node = bool(per_node)
        self.node_drift = None
        self.n_seconds = 0
        self.last: "LiveSample | None" = None
        self._node_energy: "dict[int, dict]" = {}

    def set_suite(self, suite) -> None:
        if self.estimator is None:
            from repro.core.estimator import SystemPowerEstimator

            self.estimator = SystemPowerEstimator(
                suite, max_history=8, attribute=self.attribute
            )
        else:
            self.estimator.suite = suite

    def on_second(
        self,
        cluster,
        t_s: float,
        demand: int,
        served: int,
        node_powers: "list[float]",
    ) -> "list":
        """Per-second callback from ``Cluster.run``; returns transitions."""
        transitions: "list" = []
        if self.estimator is not None:
            true_w: "dict[str, float]" = {}
            estimated_w: "dict[str, float]" = {}
            terms_acc: "dict[str, dict[str, float]]" = {}
            pending: "list[tuple]" = []
            for index, node in enumerate(cluster.nodes):
                if not node.available:
                    self._node_energy.pop(node.node_id, None)
                    continue
                energy = node.server.energy._energy_j
                previous = self._node_energy.get(node.node_id)
                self._node_energy[node.node_id] = dict(energy)
                counts = node.server.counters.read_and_clear()
                if previous is None:
                    continue  # first full second on this node
                pending.append((index, node, counts, energy, previous))
            compared = len(pending)
            node_estimates = self._estimate_nodes(pending, t_s, terms_acc)
            for (index, node, counts, energy, previous), node_est in zip(
                pending, node_estimates
            ):
                for name, watts in node_est.items():
                    estimated_w[name] = estimated_w.get(name, 0.0) + watts
                for subsystem, joules in energy.items():
                    name = subsystem.value
                    true_w[name] = (
                        true_w.get(name, 0.0) + joules - previous[subsystem]
                    )
            if self.per_node and pending:
                self._observe_nodes(cluster, t_s, pending, node_estimates)
            if compared:
                sample = LiveSample(
                    timestamp_s=float(t_s),
                    duration_s=1.0,
                    true_w=true_w,
                    estimated_w=estimated_w,
                    error_pct={
                        name: abs(estimated_w[name] - true)
                        / max(abs(true), 1.0e-9)
                        * 100.0
                        for name, true in true_w.items()
                        if name in estimated_w
                    },
                )
                self.last = sample
                obs.gauge(
                    "cluster_estimated_power_watts", sample.total_estimated_w
                )
                obs.gauge("cluster_estimation_error_pct", sample.total_error_pct)
                attribution = None
                if terms_acc:
                    from repro.obs.attribution import Attribution

                    attribution = Attribution(
                        terms_w=terms_acc,
                        residual_w={
                            name: estimated_w[name] - true
                            for name, true in true_w.items()
                            if name in estimated_w
                        },
                    )
                transitions = self.drift.observe(
                    t_s, estimated_w, true_w, attribution=attribution
                )
                if self.flight is not None:
                    self.flight.record(
                        t_s,
                        attribution=attribution,
                        true_w=sample.total_true_w,
                        estimated_w=sample.total_estimated_w,
                        error_pct=sample.total_error_pct,
                        nodes_compared=compared,
                    )
                    for transition in transitions:
                        if transition.state == "firing":
                            self.flight.trigger(
                                "drift.alert", detail=transition.to_dict()
                            )
        self.windows.ingest(t_s, obs.registry())
        self.n_seconds += 1
        return transitions

    def _estimate_nodes(
        self, pending: "list[tuple]", t_s: float, terms_acc: dict
    ) -> "list[dict[str, float]]":
        """Per-node subsystem estimates for one second.

        With attribution off (the default), every compared node's
        counter sample goes through **one** batched
        :meth:`TrickleDownSuite.evaluate` design-matrix pass — the
        fleet-observability path — instead of N single-sample
        estimator calls.  With ``attribute=True`` the scalar estimator
        runs per node so each estimate carries its term decomposition.
        """
        if not pending:
            return []
        if self.attribute:
            out = []
            for _, _, counts, _, _ in pending:
                estimate = self.estimator.estimate(
                    counts, duration_s=1.0, timestamp_s=t_s
                )
                if estimate.attribution is not None:
                    # Fleet-level attribution: term watts add across
                    # powered-up nodes (they share one fitted suite).
                    for sub, terms in estimate.attribution.terms_w.items():
                        acc = terms_acc.setdefault(sub, {})
                        for term, watts in terms.items():
                            acc[term] = acc.get(term, 0.0) + watts
                out.append(
                    {s.value: w for s, w in estimate.subsystem_w.items()}
                )
            return out
        import numpy as np

        from repro.core.traces import CounterTrace

        n = len(pending)
        events = list(pending[0][2])
        trace = CounterTrace(
            timestamps=np.full(n, float(t_s)),
            durations=np.ones(n),
            counts={
                event: np.vstack(
                    [
                        np.asarray(counts[event], dtype=float)
                        for _, _, counts, _, _ in pending
                    ]
                )
                for event in events
            },
        )
        predictions, _ = self.estimator.suite.evaluate(trace)
        return [
            {s.value: float(column[i]) for s, column in predictions.items()}
            for i in range(n)
        ]

    def _observe_nodes(
        self,
        cluster,
        t_s: float,
        pending: "list[tuple]",
        node_estimates: "list[dict[str, float]]",
    ) -> "list":
        """Feed per-node residuals to the per-node drift plane."""
        import numpy as np

        from repro.obs.fleet import FleetDriftMonitor

        if self.node_drift is None:
            self.node_drift = FleetDriftMonitor(
                len(cluster.nodes),
                slo_pct=self.drift.slo_pct,
                alpha=self.drift.alpha,
                min_windows=self.drift.min_windows,
                resolve_ratio=self.drift.resolve_ratio,
            )
        lanes = np.array([index for index, *_ in pending], dtype=np.int64)
        estimated = {
            name: np.array([est[name] for est in node_estimates])
            for name in node_estimates[0]
        }
        true = {
            subsystem.value: np.array(
                [
                    energy[subsystem] - previous[subsystem]
                    for _, _, _, energy, previous in pending
                ]
            )
            for subsystem in pending[0][3]
        }
        for (_, node, *_), est in zip(pending, node_estimates):
            obs.gauge(
                "cluster_node_estimated_power_watts",
                sum(est.values()),
                {"node": node.node_id},
            )
        return self.node_drift.observe(t_s, estimated, true, lanes=lanes)
