"""Durable telemetry: an embedded, append-only time-series store.

The live observability plane (:mod:`repro.obs.live`, `.fleet`,
`.drift`, the streaming service, ``repro.dc`` scenarios) forgets
everything older than ``WindowedRegistry.max_windows`` — there is no
way to ask "when did chipset error start climbing?" after the fact.
:class:`TSDB` is the longitudinal record: a stdlib-only, single-process
store the windowed registries evict into, queryable after the run (and
after a process restart).

Layout — one shard directory per metric name under the store root:

* ``state.bin`` — the shard's **single atomic commit point**: manifest
  of sealed segments, the series map, every open (still-appendable)
  raw buffer and rollup cell.  Rewritten wholesale on :meth:`flush`
  with the ``RunCache`` temp-file + ``os.replace`` idiom, so a crash
  leaves either the old state or the new one, never a torn file.
* ``raw-N.seg`` / ``10s-N.seg`` / ``2m-N.seg`` — immutable sealed
  segments, written exactly once.  The seal protocol writes the
  segment *before* the state that references it: a crash in between
  leaves an orphan file (deleted on next open) while the samples are
  still safe inside the previous ``state.bin``.

Encoding — per series, raw samples are a byte stream of
delta-of-delta timestamps (millisecond ints, zigzag varints) followed
by a tagged value: ``0`` repeats the previous value, ``1`` packs an
integral value as a zigzag varint, ``2`` stores the raw IEEE double.
A steady gauge costs ~2 bytes per sample.  Decoding a block replays
the exact floats that went in — round-trip fidelity is tested, not
assumed.

Downsampling — sealing a raw segment folds its samples (in timestamp
order) into open rollup cells per tier: **10 s** and **2 min** cells
holding ``(min, max, sum, count)``; ``mean = sum / count``.  Cells
close when a later sample passes their edge and accumulate into the
tier's own segments.  Retention is per tier (defaults: raw 1 h,
10 s 24 h, 2 min 14 d) measured against the newest appended timestamp
— the caller's clock, so fixed-seed runs prune deterministically.

Queries — :meth:`select` (raw points), :meth:`select_cells` (rollup
cells), :meth:`query` (instant), :meth:`query_range` (step-aligned
aggregation with label grouping), :meth:`rate` and
:meth:`quantile_over_time`.  Label matchers are exact (``{"k": "v"}``)
or regular expressions (``{"k": "=~cpu|mem"}``).

Timestamps must be non-decreasing **per series** (the windowed
registries guarantee it); out-of-order appends are dropped and
counted, never written.
"""

from __future__ import annotations

import json
import logging
import math
import os
import re
import struct
import tempfile
import threading
from urllib.parse import quote, unquote

logger = logging.getLogger(__name__)

_STATE_MAGIC = b"RTST1\n"
_SEG_MAGIC = b"RTSG1\n"
_LEN = struct.Struct("<I")
_F8 = struct.Struct("<d")
#: One rollup cell: (cell_start_ms, min, max, sum, count).
_CELL = struct.Struct("<qdddq")

#: Rollup tiers and their cell widths in milliseconds.
TIERS: "tuple[str, ...]" = ("raw", "10s", "2m")
TIER_WIDTH_MS: "dict[str, int]" = {"10s": 10_000, "2m": 120_000}

#: Default retention per tier, seconds of the *appended* clock.
DEFAULT_RETENTION_S: "dict[str, float]" = {
    "raw": 3600.0,
    "10s": 86400.0,
    "2m": 14 * 86400.0,
}

#: Open raw bytes per shard that trigger a seal at the next flush.
DEFAULT_SEAL_BYTES = 64 * 1024

_AGGS = ("mean", "min", "max", "sum", "count", "last")


def parse_duration(text: str) -> float:
    """``"90"``/``"90s"``/``"5m"``/``"2h"``/``"7d"`` -> seconds."""
    text = str(text).strip()
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    if text and text[-1] in units:
        return float(text[:-1]) * units[text[-1]]
    return float(text)


def parse_matchers(pairs) -> "dict[str, str]":
    """``["k=v", "node=~web-.*"]`` -> matcher dict for :meth:`select`."""
    matchers: "dict[str, str]" = {}
    for pair in pairs or ():
        label, sep, value = str(pair).partition("=")
        if not sep or not label:
            raise ValueError(f"matcher {pair!r} is not label=value")
        if value.startswith("~"):
            value = "=~" + value[1:]
        matchers[label.strip()] = value
    return matchers


def _match(labels: "dict[str, str]", matchers: "dict[str, str] | None") -> bool:
    for label, wanted in (matchers or {}).items():
        have = labels.get(label)
        if wanted.startswith("=~"):
            if have is None or re.fullmatch(wanted[2:], have) is None:
                return False
        elif have != wanted:
            return False
    return True


def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63)


def _put_varint(buf: bytearray, n: int) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


class _Series:
    """One series' open (appendable) raw block and encoder state."""

    __slots__ = (
        "sid", "key", "buf", "count",
        "first_ms", "last_ms", "prev_delta", "prev_val",
    )

    def __init__(self, sid: int, key: tuple) -> None:
        self.sid = sid
        self.key = key
        self.reset()

    def reset(self) -> None:
        self.buf = bytearray()
        self.count = 0
        self.first_ms = 0
        self.last_ms = 0
        self.prev_delta = 0
        self.prev_val = float("nan")


def _decode_block(buf, count: int) -> "list[tuple[int, float]]":
    """Replay one encoded block into ``[(t_ms, value), ...]``."""
    out: "list[tuple[int, float]]" = []
    pos = 0
    t_ms = 0
    delta = 0
    value = float("nan")
    for _ in range(count):
        shift = 0
        n = 0
        while True:
            byte = buf[pos]
            pos += 1
            n |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        delta += (n >> 1) ^ -(n & 1)
        t_ms += delta
        tag = buf[pos]
        pos += 1
        if tag == 1:
            shift = 0
            n = 0
            while True:
                byte = buf[pos]
                pos += 1
                n |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
            value = float((n >> 1) ^ -(n & 1))
        elif tag == 2:
            value = _F8.unpack_from(buf, pos)[0]
            pos += 8
        # tag == 0: repeat previous value
        out.append((t_ms, value))
    return out


class Appender:
    """A bound, per-series append handle (the hot path).

    Resolving ``(name, labels)`` to a series happens once, here; each
    :meth:`append` then encodes straight into the open block under the
    store lock.  Returns ``False`` (and counts the drop) for an
    out-of-order timestamp instead of corrupting the stream.
    """

    __slots__ = ("_db", "_shard", "_series", "_lock")

    def __init__(self, db: "TSDB", shard: "_Shard", series: _Series) -> None:
        self._db = db
        self._shard = shard
        self._series = series
        self._lock = db._lock

    def append(self, t_s: float, value: float) -> bool:
        series = self._series
        t_ms = int(t_s * 1000.0 + (0.5 if t_s >= 0 else -0.5))
        with self._lock:
            delta = t_ms - series.last_ms
            if delta < 0 and series.count:
                self._shard.dropped += 1
                return False
            if not series.count:
                series.first_ms = t_ms
                delta = t_ms
            buf = series.buf
            n = _zigzag(delta - series.prev_delta)
            while n > 0x7F:
                buf.append((n & 0x7F) | 0x80)
                n >>= 7
            buf.append(n)
            series.prev_delta = delta
            series.last_ms = t_ms
            v = float(value)
            if v == series.prev_val:
                buf.append(0)
            else:
                try:
                    iv = int(v)
                    integral = iv == v and -(1 << 51) <= iv <= (1 << 51)
                except (OverflowError, ValueError):
                    integral = False
                if integral:
                    buf.append(1)
                    n = _zigzag(iv)
                    while n > 0x7F:
                        buf.append((n & 0x7F) | 0x80)
                        n >>= 7
                    buf.append(n)
                else:
                    buf.append(2)
                    buf += _F8.pack(v)
            series.prev_val = v
            series.count += 1
            shard = self._shard
            shard.dirty = True
            shard.appended += 1
            if t_ms > shard.max_ms:
                shard.max_ms = t_ms
            return True


class _Shard:
    """One metric name's directory: state, open blocks, sealed segments."""

    def __init__(self, name: str, directory: str) -> None:
        self.name = name
        self.directory = directory
        self.series: "dict[tuple, _Series]" = {}
        self.by_sid: "dict[int, _Series]" = {}
        self.next_sid = 0
        self.seq = 0
        self.max_ms = 0
        self.appended = 0
        self.dropped = 0
        self.dirty = False
        #: Sealed-segment manifest per tier: {"file", "min_ms", "max_ms", "n"}.
        self.manifest: "dict[str, list[dict]]" = {t: [] for t in TIERS}
        #: Open rollup cell per tier per sid: [start_ms, min, max, sum, count].
        self.cells: "dict[str, dict[int, list]]" = {
            t: {} for t in TIER_WIDTH_MS
        }
        #: Closed-but-unsealed rollup cells per tier per sid (packed).
        self.pending: "dict[str, dict[int, bytearray]]" = {
            t: {} for t in TIER_WIDTH_MS
        }

    # -- series --------------------------------------------------------

    def series_for(self, key: tuple) -> _Series:
        series = self.series.get(key)
        if series is None:
            series = _Series(self.next_sid, key)
            self.next_sid += 1
            self.series[key] = series
            self.by_sid[series.sid] = series
            self.dirty = True
        return series

    def open_raw_bytes(self) -> int:
        return sum(len(s.buf) for s in self.series.values())

    # -- sealing and rollups -------------------------------------------

    def _fold(self, sid: int, samples: "list[tuple[int, float]]") -> None:
        """Fold decoded raw samples into the open rollup cells (in order)."""
        for tier, width in TIER_WIDTH_MS.items():
            cells = self.cells[tier]
            cell = cells.get(sid)
            for t_ms, value in samples:
                start = t_ms - t_ms % width
                if cell is None or start > cell[0]:
                    if cell is not None:
                        pend = self.pending[tier].setdefault(sid, bytearray())
                        pend += _CELL.pack(*cell)
                    cell = [start, value, value, value, 1]
                elif start == cell[0]:
                    if value < cell[1]:
                        cell[1] = value
                    if value > cell[2]:
                        cell[2] = value
                    cell[3] += value
                    cell[4] += 1
                # start < cell[0] cannot happen: appends are ordered
            if cell is not None:
                cells[sid] = cell

    def seal(self) -> "list[str]":
        """Seal open raw blocks into a segment; cascade rollup segments.

        Returns the segment file paths written (state is NOT yet
        committed — the caller writes ``state.bin`` after, making the
        new segments visible atomically).  Retention is the caller's
        job: :meth:`TSDB.flush` prunes right after sealing so it can
        unlink the doomed files once the state commit lands.
        """
        written: "list[str]" = []
        blocks = []
        for series in sorted(self.series.values(), key=lambda s: s.sid):
            if not series.count:
                continue
            self._fold(series.sid, _decode_block(series.buf, series.count))
            blocks.append((
                series.sid, series.key, series.count,
                series.first_ms, series.last_ms, bytes(series.buf),
            ))
            series.reset()
        if blocks:
            written.append(self._write_segment("raw", blocks))
        for tier in TIER_WIDTH_MS:
            pending = self.pending[tier]
            if not pending:
                continue
            cell_blocks = []
            width = TIER_WIDTH_MS[tier]
            for sid in sorted(pending):
                blob = bytes(pending[sid])
                n = len(blob) // _CELL.size
                if not n:
                    continue
                first = _CELL.unpack_from(blob, 0)[0]
                last = _CELL.unpack_from(blob, (n - 1) * _CELL.size)[0]
                series = self.by_sid[sid]
                cell_blocks.append(
                    (sid, series.key, n, first, last + width, blob)
                )
            pending.clear()
            if cell_blocks:
                written.append(self._write_segment(tier, cell_blocks))
        return written

    def _write_segment(self, tier: str, blocks: "list[tuple]") -> str:
        seq = self.seq
        self.seq += 1
        filename = f"{tier}-{seq:06d}.seg"
        header = {"tier": tier, "name": self.name, "seq": seq, "series": []}
        offset = 0
        blobs = []
        total = 0
        min_ms = min(b[3] for b in blocks)
        max_ms = max(b[4] for b in blocks)
        for sid, key, count, first_ms, last_ms, blob in blocks:
            header["series"].append({
                "sid": sid,
                "key": [key[0], [list(item) for item in key[1]]],
                "count": count,
                "min_ms": first_ms,
                "max_ms": last_ms,
                "offset": offset,
                "length": len(blob),
            })
            offset += len(blob)
            total += count
            blobs.append(blob)
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        path = os.path.join(self.directory, filename)
        _atomic_write(
            path, _SEG_MAGIC + _LEN.pack(len(encoded)) + encoded + b"".join(blobs)
        )
        self.manifest[tier].append(
            {"file": filename, "min_ms": min_ms, "max_ms": max_ms, "n": total}
        )
        return path

    def prune(self, retention_ms: "dict[str, float]") -> "list[str]":
        """Drop out-of-retention segments from the manifest.

        Returns the now-orphaned file paths; the caller unlinks them
        *after* the state commit so a crash can only leave extra files
        (cleaned on open), never a manifest entry without its file.
        """
        doomed: "list[str]" = []
        for tier, entries in self.manifest.items():
            horizon = retention_ms.get(tier)
            if horizon is None or not self.max_ms:
                continue
            cutoff = self.max_ms - horizon
            keep = []
            for entry in entries:
                if entry["max_ms"] < cutoff:
                    doomed.append(os.path.join(self.directory, entry["file"]))
                    self.dirty = True
                else:
                    keep.append(entry)
            self.manifest[tier] = keep
        return doomed

    # -- state persistence ---------------------------------------------

    def save_state(self) -> None:
        """Atomically commit the shard's full mutable state."""
        blobs: "list[bytes]" = []
        offset = 0
        open_raw = []
        for series in sorted(self.series.values(), key=lambda s: s.sid):
            blob = bytes(series.buf)
            open_raw.append({
                "sid": series.sid,
                "count": series.count,
                "first_ms": series.first_ms,
                "last_ms": series.last_ms,
                "prev_delta": series.prev_delta,
                "prev_val": float.hex(series.prev_val),
                "offset": offset,
                "length": len(blob),
            })
            offset += len(blob)
            blobs.append(blob)
        pending = {}
        for tier, per_sid in self.pending.items():
            entries = []
            for sid in sorted(per_sid):
                blob = bytes(per_sid[sid])
                entries.append(
                    {"sid": sid, "offset": offset, "length": len(blob)}
                )
                offset += len(blob)
                blobs.append(blob)
            pending[tier] = entries
        header = {
            "version": 1,
            "name": self.name,
            "seq": self.seq,
            "max_ms": self.max_ms,
            "appended": self.appended,
            "dropped": self.dropped,
            "manifest": self.manifest,
            "series": [
                [s.sid, s.key[0], [list(item) for item in s.key[1]]]
                for s in sorted(self.series.values(), key=lambda x: x.sid)
            ],
            "open_raw": open_raw,
            "cells": {
                tier: [
                    [sid, cell[0], float.hex(cell[1]), float.hex(cell[2]),
                     float.hex(cell[3]), cell[4]]
                    for sid, cell in sorted(per_sid.items())
                ]
                for tier, per_sid in self.cells.items()
            },
            "pending": pending,
        }
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        _atomic_write(
            os.path.join(self.directory, "state.bin"),
            _STATE_MAGIC + _LEN.pack(len(encoded)) + encoded + b"".join(blobs),
        )
        self.dirty = False

    @classmethod
    def load(cls, name: str, directory: str) -> "_Shard":
        shard = cls(name, directory)
        path = os.path.join(directory, "state.bin")
        try:
            with open(path, "rb") as handle:
                data = handle.read()
            if not data.startswith(_STATE_MAGIC):
                raise ValueError("bad state magic")
            header_len = _LEN.unpack_from(data, len(_STATE_MAGIC))[0]
            start = len(_STATE_MAGIC) + _LEN.size
            header = json.loads(data[start:start + header_len])
            blob_base = start + header_len
        except FileNotFoundError:
            shard._clean_orphans()
            return shard
        except (ValueError, KeyError, struct.error) as exc:
            logger.warning("tsdb shard %s: unreadable state (%s); resetting",
                           name, exc)
            shard._clean_orphans()
            return shard
        shard.seq = int(header["seq"])
        shard.max_ms = int(header["max_ms"])
        shard.appended = int(header.get("appended", 0))
        shard.dropped = int(header.get("dropped", 0))
        shard.manifest = {
            tier: list(header["manifest"].get(tier, ())) for tier in TIERS
        }
        for sid, mname, items in header["series"]:
            key = (mname, tuple(tuple(item) for item in items))
            series = _Series(int(sid), key)
            shard.series[key] = series
            shard.by_sid[series.sid] = series
            shard.next_sid = max(shard.next_sid, series.sid + 1)
        for entry in header["open_raw"]:
            series = shard.by_sid[int(entry["sid"])]
            series.count = int(entry["count"])
            series.first_ms = int(entry["first_ms"])
            series.last_ms = int(entry["last_ms"])
            series.prev_delta = int(entry["prev_delta"])
            series.prev_val = float.fromhex(entry["prev_val"])
            lo = blob_base + int(entry["offset"])
            series.buf = bytearray(data[lo:lo + int(entry["length"])])
        for tier, entries in header.get("cells", {}).items():
            for sid, start_ms, vmin, vmax, vsum, count in entries:
                shard.cells[tier][int(sid)] = [
                    int(start_ms), float.fromhex(vmin), float.fromhex(vmax),
                    float.fromhex(vsum), int(count),
                ]
        for tier, entries in header.get("pending", {}).items():
            for entry in entries:
                lo = blob_base + int(entry["offset"])
                shard.pending[tier][int(entry["sid"])] = bytearray(
                    data[lo:lo + int(entry["length"])]
                )
        shard._clean_orphans()
        return shard

    def _clean_orphans(self) -> None:
        """Delete segment files the manifest does not reference.

        These are seal-crash leftovers (segment written, state commit
        never happened — the data is still in the old state) or
        retention leftovers (state committed, unlink never happened).
        Either way the manifest is the truth.
        """
        known = {
            entry["file"] for entries in self.manifest.values()
            for entry in entries
        }
        try:
            listing = os.listdir(self.directory)
        except FileNotFoundError:
            return
        for filename in listing:
            if filename.endswith(".seg") and filename not in known:
                logger.warning(
                    "tsdb shard %s: removing orphan segment %s",
                    self.name, filename,
                )
                try:
                    os.unlink(os.path.join(self.directory, filename))
                except OSError:
                    pass

    # -- reads ---------------------------------------------------------

    def _read_segment(self, entry: dict) -> "tuple[dict, bytes, int]":
        path = os.path.join(self.directory, entry["file"])
        with open(path, "rb") as handle:
            data = handle.read()
        if not data.startswith(_SEG_MAGIC):
            raise ValueError(f"bad segment magic in {path}")
        header_len = _LEN.unpack_from(data, len(_SEG_MAGIC))[0]
        start = len(_SEG_MAGIC) + _LEN.size
        header = json.loads(data[start:start + header_len])
        return header, data, start + header_len

    def raw_points(
        self, series: _Series, start_ms: int, end_ms: int
    ) -> "list[tuple[int, float]]":
        """All raw ``(t_ms, value)`` of one series inside the range."""
        out: "list[tuple[int, float]]" = []
        for entry in self.manifest["raw"]:
            if entry["max_ms"] < start_ms or entry["min_ms"] > end_ms:
                continue
            try:
                header, data, base = self._read_segment(entry)
            except (OSError, ValueError) as exc:
                logger.warning("tsdb shard %s: skipping segment %s (%s)",
                               self.name, entry["file"], exc)
                continue
            for block in header["series"]:
                if block["sid"] != series.sid:
                    continue
                if block["max_ms"] < start_ms or block["min_ms"] > end_ms:
                    continue
                lo = base + block["offset"]
                decoded = _decode_block(
                    data[lo:lo + block["length"]], block["count"]
                )
                out.extend(
                    p for p in decoded if start_ms <= p[0] <= end_ms
                )
        if series.count:
            out.extend(
                p
                for p in _decode_block(series.buf, series.count)
                if start_ms <= p[0] <= end_ms
            )
        return out

    def rollup_cells(
        self, series: _Series, tier: str, start_ms: int, end_ms: int
    ) -> "list[tuple[int, float, float, float, int]]":
        """Sealed + pending + open cells of one series inside the range.

        The open raw block's tail has not been folded into cells yet, so
        it is folded on the fly — queries see every appended sample at
        every tier, not just the sealed ones.
        """
        cells: "list[tuple[int, float, float, float, int]]" = []
        width = TIER_WIDTH_MS[tier]
        for entry in self.manifest[tier]:
            if entry["max_ms"] < start_ms or entry["min_ms"] > end_ms:
                continue
            try:
                header, data, base = self._read_segment(entry)
            except (OSError, ValueError) as exc:
                logger.warning("tsdb shard %s: skipping segment %s (%s)",
                               self.name, entry["file"], exc)
                continue
            for block in header["series"]:
                if block["sid"] != series.sid:
                    continue
                lo = base + block["offset"]
                for i in range(block["count"]):
                    cell = _CELL.unpack_from(data, lo + i * _CELL.size)
                    if start_ms - width < cell[0] <= end_ms:
                        cells.append(cell)
        pending = self.pending[tier].get(series.sid)
        if pending:
            for i in range(len(pending) // _CELL.size):
                cell = _CELL.unpack_from(pending, i * _CELL.size)
                if start_ms - width < cell[0] <= end_ms:
                    cells.append(cell)
        # Open cell plus the un-folded open-raw tail, merged on the fly.
        live: "dict[int, list]" = {}
        open_cell = self.cells[tier].get(series.sid)
        if open_cell is not None:
            live[open_cell[0]] = list(open_cell)
        if series.count:
            for t_ms, value in _decode_block(series.buf, series.count):
                start = t_ms - t_ms % width
                cell = live.get(start)
                if cell is None:
                    live[start] = [start, value, value, value, 1]
                else:
                    if value < cell[1]:
                        cell[1] = value
                    if value > cell[2]:
                        cell[2] = value
                    cell[3] += value
                    cell[4] += 1
        for start in sorted(live):
            if start_ms - width < start <= end_ms:
                cells.append(tuple(live[start]))
        return cells


def _atomic_write(path: str, payload: bytes) -> None:
    """The ``RunCache`` idiom: temp file in the target dir + replace."""
    directory = os.path.dirname(path)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


class TSDB:
    """The embedded store: one directory, one shard per metric name.

    All public methods are thread-safe (one store lock) — the HTTP
    query thread may read while the monitor loop appends.  Appends and
    queries never touch the disk; only :meth:`flush` writes (and the
    seal it may trigger).
    """

    def __init__(
        self,
        root: str,
        retention_s: "dict[str, float] | None" = None,
        seal_bytes: int = DEFAULT_SEAL_BYTES,
    ) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.retention_s = dict(DEFAULT_RETENTION_S)
        if retention_s:
            self.retention_s.update(retention_s)
        self.seal_bytes = int(seal_bytes)
        self.rules = None
        self._lock = threading.RLock()
        self._shards: "dict[str, _Shard]" = {}
        self._appenders: "dict[tuple, Appender]" = {}
        self._flushes = 0

    # -- shards --------------------------------------------------------

    @staticmethod
    def _dirname(name: str) -> str:
        return quote(name, safe="._-")

    def _shard(self, name: str) -> _Shard:
        shard = self._shards.get(name)
        if shard is None:
            directory = os.path.join(self.root, self._dirname(name))
            os.makedirs(directory, exist_ok=True)
            shard = _Shard.load(name, directory)
            self._shards[name] = shard
        return shard

    def names(self) -> "list[str]":
        """Every metric name in the store (on disk + in memory).

        A shard that only ever answered queries (no appends, nothing
        committed) is not a metric, so empty read-miss shards and bare
        directories stay out of the listing.
        """
        with self._lock:
            names = {
                name for name, shard in self._shards.items() if shard.series
            }
            try:
                for entry in os.listdir(self.root):
                    state = os.path.join(self.root, entry, "state.bin")
                    if os.path.exists(state):
                        names.add(unquote(entry))
            except FileNotFoundError:
                pass
            return sorted(names)

    def series(self, name: str) -> "list[dict[str, str]]":
        """The label sets recorded under one metric name."""
        with self._lock:
            shard = self._shard(name)
            return [
                dict(key[1])
                for key in sorted(shard.series, key=lambda k: shard.series[k].sid)
            ]

    # -- writes --------------------------------------------------------

    def appender(
        self, name: str, labels: "dict[str, object] | None" = None
    ) -> Appender:
        """A per-series append handle (resolve once, append fast)."""
        items = tuple(sorted(
            (str(k), str(v)) for k, v in (labels or {}).items()
        ))
        with self._lock:
            cached = self._appenders.get((name, items))
            if cached is not None:
                return cached
            shard = self._shard(name)
            series = shard.series_for((name, items))
            appender = Appender(self, shard, series)
            self._appenders[(name, items)] = appender
            return appender

    def append(
        self,
        name: str,
        labels: "dict[str, object] | None",
        t_s: float,
        value: float,
    ) -> bool:
        """Convenience one-shot append (cached appender underneath)."""
        return self.appender(name, labels).append(t_s, value)

    def flush(self, now_s: "float | None" = None) -> None:
        """Evaluate recording rules, seal what is due, commit state.

        This is the store's only commit point: everything since the
        previous flush becomes durable in one atomic ``state.bin``
        replace per dirty shard.  ``now_s`` feeds the attached rule
        engine (defaults to the newest appended timestamp).
        """
        with self._lock:
            if self.rules is not None:
                if now_s is None:
                    now_s = self.max_t_s()
                if now_s is not None:
                    self.rules.evaluate(self, now_s)
            retention_ms = {
                tier: seconds * 1000.0
                for tier, seconds in self.retention_s.items()
            }
            doomed: "list[str]" = []
            for shard in self._shards.values():
                if shard.open_raw_bytes() >= self.seal_bytes:
                    shard.seal()
                doomed.extend(shard.prune(retention_ms))
                if shard.dirty:
                    shard.save_state()
            for path in doomed:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._flushes += 1

    def close(self) -> None:
        """Final flush; the store object stays usable afterwards."""
        self.flush()

    def __enter__(self) -> "TSDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def max_t_s(self) -> "float | None":
        """Newest appended timestamp across all shards (seconds).

        Walks :meth:`names` (not just the shards already faulted into
        memory) so a fresh process querying an existing store anchors
        relative ranges correctly.
        """
        with self._lock:
            newest = 0
            for name in self.names():
                newest = max(newest, self._shard(name).max_ms)
            return newest / 1000.0 if newest else None

    def attach_rules(self, engine) -> None:
        """Recording rules evaluated at the top of every :meth:`flush`."""
        self.rules = engine

    # -- queries -------------------------------------------------------

    def _matching(self, name: str, matchers) -> "list[_Series]":
        shard = self._shard(name)
        return [
            series for key, series in sorted(
                shard.series.items(), key=lambda item: item[1].sid
            )
            if _match(dict(key[1]), matchers)
        ]

    def select(
        self,
        name: str,
        matchers: "dict[str, str] | None" = None,
        start_s: float = 0.0,
        end_s: "float | None" = None,
    ) -> "list[dict]":
        """Raw points per matching series: ``{"labels", "points"}``.

        Points are ``(t_s, value)`` in timestamp order, exactly as
        appended (before raw retention expiry).
        """
        with self._lock:
            shard = self._shard(name)
            end_ms = _to_ms_ceiling(end_s, shard)
            start_ms = int(math.floor(start_s * 1000.0))
            out = []
            for series in self._matching(name, matchers):
                points = shard.raw_points(series, start_ms, end_ms)
                out.append({
                    "labels": dict(series.key[1]),
                    "points": [(t / 1000.0, v) for t, v in points],
                })
            return out

    def select_cells(
        self,
        name: str,
        matchers: "dict[str, str] | None" = None,
        start_s: float = 0.0,
        end_s: "float | None" = None,
        tier: str = "10s",
    ) -> "list[dict]":
        """Rollup cells per matching series.

        Each cell is ``(start_s, min, max, mean, count)`` — the exact
        min/max/mean/count of the raw samples in its window.
        """
        if tier not in TIER_WIDTH_MS:
            raise ValueError(f"tier must be one of {tuple(TIER_WIDTH_MS)}")
        with self._lock:
            shard = self._shard(name)
            end_ms = _to_ms_ceiling(end_s, shard)
            start_ms = int(math.floor(start_s * 1000.0))
            out = []
            for series in self._matching(name, matchers):
                cells = shard.rollup_cells(series, tier, start_ms, end_ms)
                out.append({
                    "labels": dict(series.key[1]),
                    "cells": [
                        (start / 1000.0, vmin, vmax, vsum / count, count)
                        for start, vmin, vmax, vsum, count in cells
                    ],
                })
            return out

    def query(
        self,
        name: str,
        matchers: "dict[str, str] | None" = None,
        at_s: "float | None" = None,
    ) -> "list[dict]":
        """Instant query: newest point at or before ``at_s`` per series."""
        with self._lock:
            shard = self._shard(name)
            at_ms = _to_ms_ceiling(at_s, shard)
            out = []
            for series in self._matching(name, matchers):
                points = shard.raw_points(series, 0, at_ms)
                if points:
                    t_ms, value = points[-1]
                    out.append({
                        "labels": dict(series.key[1]),
                        "t_s": t_ms / 1000.0,
                        "value": value,
                    })
            return out

    def query_range(
        self,
        name: str,
        matchers: "dict[str, str] | None" = None,
        start_s: float = 0.0,
        end_s: "float | None" = None,
        step_s: "float | None" = None,
        agg: str = "mean",
        by: "tuple[str, ...] | list[str] | None" = None,
        tier: str = "auto",
    ) -> "list[dict]":
        """Step-aligned range query with aggregation and label grouping.

        Without ``step_s``, returns the raw (or rollup-mean) points.
        With it, points bucket into ``[start + k*step, start + (k+1)*step)``
        and ``agg`` (one of mean/min/max/sum/count/last) folds each
        bucket.  ``by=("subsystem",)`` first merges series sharing those
        label values.  ``tier="auto"`` answers from raw while raw data
        covers ``start_s`` and falls back to 10 s then 2 min rollups.
        """
        if agg not in _AGGS:
            raise ValueError(f"agg must be one of {_AGGS}")
        with self._lock:
            shard = self._shard(name)
            if end_s is None:
                end = shard.max_ms / 1000.0 if shard.max_ms else start_s
            else:
                end = float(end_s)
            chosen = self._choose_tier(shard, tier, start_s)
            groups: "dict[tuple, dict]" = {}
            for series in self._matching(name, matchers):
                labels = dict(series.key[1])
                if by is None:
                    group_key = tuple(sorted(labels.items()))
                    group_labels = labels
                else:
                    group_labels = {
                        label: labels.get(label, "") for label in by
                    }
                    group_key = tuple(sorted(group_labels.items()))
                points = self._series_points(
                    shard, series, chosen, start_s, end
                )
                group = groups.setdefault(
                    group_key, {"labels": group_labels, "points": []}
                )
                group["points"].extend(points)
            out = []
            for _, group in sorted(groups.items()):
                points = sorted(group["points"])
                if step_s:
                    points = _bucket(points, start_s, end, float(step_s), agg)
                out.append({
                    "labels": group["labels"],
                    "points": points,
                    "tier": chosen,
                })
            return out

    def _choose_tier(self, shard: _Shard, tier: str, start_s: float) -> str:
        if tier != "auto":
            if tier != "raw" and tier not in TIER_WIDTH_MS:
                raise ValueError(f"tier must be raw/auto or {tuple(TIER_WIDTH_MS)}")
            return tier
        start_ms = start_s * 1000.0
        horizon = self.retention_s["raw"] * 1000.0
        if not shard.max_ms or start_ms >= shard.max_ms - horizon:
            return "raw"
        if start_ms >= shard.max_ms - self.retention_s["10s"] * 1000.0:
            return "10s"
        return "2m"

    def _series_points(self, shard, series, tier, start_s, end_s):
        start_ms = int(math.floor(start_s * 1000.0))
        end_ms = int(math.ceil(end_s * 1000.0))
        if tier == "raw":
            return [
                (t / 1000.0, v)
                for t, v in shard.raw_points(series, start_ms, end_ms)
            ]
        return [
            (start / 1000.0, vsum / count)
            for start, _vmin, _vmax, vsum, count in shard.rollup_cells(
                series, tier, start_ms, end_ms
            )
        ]

    def rate(
        self,
        name: str,
        matchers: "dict[str, str] | None" = None,
        start_s: float = 0.0,
        end_s: "float | None" = None,
    ) -> "list[dict]":
        """Counter increase per second over the range, reset-aware.

        The increase is the sum of positive deltas between consecutive
        points (a drop is a process restart, not a negative rate),
        divided by the observed time span.
        """
        out = []
        for entry in self.select(name, matchers, start_s, end_s):
            points = entry["points"]
            if len(points) < 2:
                out.append({"labels": entry["labels"], "rate": 0.0})
                continue
            increase = sum(
                max(0.0, b[1] - a[1]) for a, b in zip(points, points[1:])
            )
            span = points[-1][0] - points[0][0]
            out.append({
                "labels": entry["labels"],
                "rate": increase / span if span > 0 else 0.0,
            })
        return out

    def quantile_over_time(
        self,
        name: str,
        q: float,
        matchers: "dict[str, str] | None" = None,
        start_s: float = 0.0,
        end_s: "float | None" = None,
    ) -> "list[dict]":
        """Exact ``q``-quantile of each series' raw values in the range."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        out = []
        for entry in self.select(name, matchers, start_s, end_s):
            values = sorted(v for _, v in entry["points"])
            if not values:
                out.append({"labels": entry["labels"], "value": float("nan")})
                continue
            position = q * (len(values) - 1)
            lo = int(math.floor(position))
            hi = int(math.ceil(position))
            value = values[lo] + (values[hi] - values[lo]) * (position - lo)
            out.append({"labels": entry["labels"], "value": value})
        return out

    # -- introspection -------------------------------------------------

    def document(self) -> dict:
        """The ``/rules``-adjacent store summary (also for the CLI)."""
        with self._lock:
            shards = {}
            for name in self.names():
                shard = self._shard(name)
                shards[name] = {
                    "series": len(shard.series),
                    "appended": shard.appended,
                    "dropped_out_of_order": shard.dropped,
                    "open_bytes": shard.open_raw_bytes(),
                    "segments": {
                        tier: len(entries)
                        for tier, entries in shard.manifest.items()
                    },
                }
            return {
                "root": self.root,
                "retention_s": dict(self.retention_s),
                "seal_bytes": self.seal_bytes,
                "flushes": self._flushes,
                "shards": shards,
            }


def _to_ms_ceiling(end_s: "float | None", shard: _Shard) -> int:
    if end_s is None:
        return max(shard.max_ms, 1 << 60)
    return int(math.ceil(end_s * 1000.0))


def _bucket(points, start_s, end_s, step_s, agg):
    """Fold sorted ``(t_s, v)`` points into step-aligned buckets."""
    out = []
    if not points or step_s <= 0:
        return out
    n_buckets = max(1, int(math.ceil((end_s - start_s) / step_s - 1e-9)))
    index = 0
    for k in range(n_buckets):
        lo = start_s + k * step_s
        # Buckets are [lo, hi) except the last, which closes at end_s
        # inclusively so the newest sample is never orphaned.
        hi = lo + step_s if k < n_buckets - 1 else max(lo + step_s, end_s) + 1e-9
        values = []
        while index < len(points) and points[index][0] < hi:
            if points[index][0] >= lo:
                values.append(points[index][1])
            index += 1
        if not values:
            continue
        if agg == "mean":
            value = sum(values) / len(values)
        elif agg == "min":
            value = min(values)
        elif agg == "max":
            value = max(values)
        elif agg == "sum":
            value = sum(values)
        elif agg == "count":
            value = float(len(values))
        else:  # last
            value = values[-1]
        out.append((lo, value))
    return out


class WindowSink:
    """Bridges :class:`~repro.obs.live.WindowedRegistry` eviction to a store.

    Hand an instance to ``WindowedRegistry(on_evict=WindowSink(db))``:
    every evicted window persists as one sample per metric at the
    window's start time — counters keep their **per-window delta**
    (rate material, not the cumulative), gauges their last value, and
    histograms two derived series, ``<name>:mean`` and ``<name>:count``.

    The sink is idempotent per window: a window whose start is not
    newer than the last one persisted is skipped, so callers may feed
    the same window through both an eager per-tick
    :meth:`~repro.obs.live.WindowedRegistry.sink_closed` pass and the
    eventual eviction/:meth:`~repro.obs.live.WindowedRegistry.drain`
    without double-writing.
    """

    def __init__(self, db: TSDB) -> None:
        self.db = db
        self.windows_persisted = 0
        self._last_start_s = float("-inf")

    def __call__(self, window) -> None:
        if window.start_s <= self._last_start_s:
            return
        self._last_start_s = window.start_s
        db = self.db
        t = window.start_s
        for key, value in window.counters.items():
            db.append(key[0], dict(key[1]), t, value)
        for key, value in window.gauges.items():
            db.append(key[0], dict(key[1]), t, value)
        for key, hist in window.histograms.items():
            labels = dict(key[1])
            db.append(f"{key[0]}:mean", labels, t, hist.mean)
            db.append(f"{key[0]}:count", labels, t, hist.count)
        self.windows_persisted += 1
