"""Per-term power attribution: which counter term carries the watts.

The paper's most instructive result is diagnostic, not numeric: the
CPU model misses on mcf because speculative-search power is invisible
to fetched uops (Section 5, Table 3).  Finding that requires knowing
how an estimate decomposes — intercept, each counter's linear and
quadratic share — and how the decomposition compares with measured
power.  This module carries that decomposition around the obs stack:

* :class:`Attribution` — one estimate's per-subsystem, per-term watt
  vector, attached to a :class:`~repro.core.estimator.PowerEstimate`
  when the estimator runs with ``attribute=True``;
* :func:`attribute_run` — whole-run mean attribution against measured
  power (the ``repro-power explain`` table, with the paper's
  Equation 6 error column);
* :func:`diagnose` — the Section 5 sentence, computed: which term
  dominates a subsystem's estimate and how far the model lands from
  truth.

Attribution is exact by construction: term contributions are the
design-matrix columns times their coefficients, so they sum to the
model's prediction to floating-point round-off (tested at 1e-9).
Everything here is plain data + numpy; the obs package only loads it
on demand, and the estimator's disabled path stays one bool check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = [
    "Attribution",
    "SubsystemAttribution",
    "WorkloadAttribution",
    "attribute_sample",
    "attribute_run",
    "diagnose",
]


def _name(subsystem: Any) -> str:
    """Subsystem enum or plain string -> plain string key."""
    return getattr(subsystem, "value", subsystem)


@dataclass
class Attribution:
    """Per-term watt decomposition of one power estimate.

    ``terms_w`` maps subsystem name -> term name -> watts; the terms of
    each subsystem sum to that subsystem's estimated power.
    ``residual_w`` (estimated - true, per subsystem) is filled in by
    whoever holds ground truth (the live monitor), so a positive
    residual means over-estimation and a negative one the mcf-style
    under-estimation.
    """

    terms_w: "dict[str, dict[str, float]]"
    residual_w: "dict[str, float] | None" = None

    def subsystems(self) -> "tuple[str, ...]":
        return tuple(self.terms_w)

    def subsystem_total(self, subsystem: Any) -> float:
        """Estimated watts of one subsystem (sum of its terms)."""
        return float(sum(self.terms_w[_name(subsystem)].values()))

    def total_w(self) -> float:
        """Estimated complete-system watts (sum over subsystems)."""
        return float(
            sum(sum(terms.values()) for terms in self.terms_w.values())
        )

    def top_terms(
        self, subsystem: Any = None, n: int = 3
    ) -> "list[tuple[str, float]]":
        """The ``n`` largest-|watts| terms, descending.

        With ``subsystem=None`` terms from every subsystem compete,
        namespaced ``"cpu/fetched_uops_per_cycle"``; otherwise names
        are that subsystem's bare term names.  Unknown subsystems
        yield ``[]`` (the drift monitor's synthetic streams need not
        match modelled subsystems).
        """
        if subsystem is None:
            items = [
                (f"{sub}/{term}", watts)
                for sub, terms in self.terms_w.items()
                for term, watts in terms.items()
            ]
        else:
            items = list(self.terms_w.get(_name(subsystem), {}).items())
        items.sort(key=lambda kv: abs(kv[1]), reverse=True)
        return items[: max(0, int(n))]

    def to_dict(self) -> dict:
        doc: dict = {
            "terms_w": {
                sub: dict(terms) for sub, terms in self.terms_w.items()
            }
        }
        if self.residual_w is not None:
            doc["residual_w"] = dict(self.residual_w)
        return doc

    @classmethod
    def from_dict(cls, data: Mapping) -> "Attribution":
        residual = data.get("residual_w")
        return cls(
            terms_w={
                sub: {term: float(w) for term, w in terms.items()}
                for sub, terms in data["terms_w"].items()
            },
            residual_w=(
                None
                if residual is None
                else {sub: float(w) for sub, w in residual.items()}
            ),
        )

    def describe(self, n: int = 3) -> str:
        """One-line summary: total watts and the top-n terms."""
        top = ", ".join(
            f"{term}={watts:.1f}W" for term, watts in self.top_terms(n=n)
        )
        return f"{self.total_w():.1f}W ({top})" if top else "0.0W"


def attribute_sample(suite, trace, index: int = 0) -> Attribution:
    """Attribution of one sample of a trace under a fitted suite."""
    return Attribution(
        terms_w={
            _name(sub): {term: float(vec[index]) for term, vec in terms.items()}
            for sub, terms in suite.attribute_all(trace).items()
        }
    )


@dataclass
class SubsystemAttribution:
    """One subsystem's run-average attribution vs. measured power."""

    subsystem: str
    #: term name -> mean watts over the run.
    terms_w: "dict[str, float]"
    modeled_w: float
    true_w: "float | None" = None
    #: The paper's Equation 6 average error, percent (None untruthed).
    error_pct: "float | None" = None

    @property
    def residual_w(self) -> "float | None":
        """true - modeled: positive means the model under-attributes."""
        if self.true_w is None:
            return None
        return self.true_w - self.modeled_w

    def share_pct(self, term: str) -> float:
        """A term's share of the modeled watts, percent."""
        if self.modeled_w == 0.0:
            return 0.0
        return 100.0 * self.terms_w[term] / self.modeled_w

    def top_terms(self, n: int = 3) -> "list[tuple[str, float]]":
        items = sorted(
            self.terms_w.items(), key=lambda kv: abs(kv[1]), reverse=True
        )
        return items[: max(0, int(n))]

    def to_dict(self) -> dict:
        return {
            "subsystem": self.subsystem,
            "terms_w": dict(self.terms_w),
            "modeled_w": self.modeled_w,
            "true_w": self.true_w,
            "error_pct": self.error_pct,
            "residual_w": self.residual_w,
        }


@dataclass
class WorkloadAttribution:
    """Whole-run attribution report (the ``explain`` command's data)."""

    workload: str
    n_samples: int
    subsystems: "dict[str, SubsystemAttribution]" = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "n_samples": self.n_samples,
            "subsystems": {
                name: sub.to_dict() for name, sub in self.subsystems.items()
            },
        }


def attribute_run(suite, run, workload: "str | None" = None) -> WorkloadAttribution:
    """Run-average attribution of a simulated run against its truth.

    ``run`` is a :class:`~repro.simulator.system.MeasuredRun`-like
    object with ``counters`` (a trace) and ``power`` (per-subsystem
    measured series); each subsystem row carries mean per-term watts,
    mean modeled/true watts and the Equation 6 error — the Table 3
    column for that workload, rearranged by term.
    """
    from repro.core.validation import average_error

    trace = run.counters
    report = WorkloadAttribution(
        workload=workload or getattr(run, "workload", "run"),
        n_samples=trace.n_samples,
    )
    for subsystem, terms in suite.attribute_all(trace).items():
        name = _name(subsystem)
        mean_terms = {term: float(vec.mean()) for term, vec in terms.items()}
        modeled = suite.predict(subsystem, trace)
        row = SubsystemAttribution(
            subsystem=name,
            terms_w=mean_terms,
            modeled_w=float(modeled.mean()),
        )
        measured = _measured_series(run, subsystem)
        if measured is not None:
            row.true_w = float(np.asarray(measured, dtype=float).mean())
            row.error_pct = float(average_error(modeled, measured))
        report.subsystems[name] = row
    return report


def _measured_series(run, subsystem):
    """Best-effort measured power series for one subsystem."""
    power = getattr(run, "power", None)
    if power is None:
        return None
    if hasattr(power, "power"):  # a PowerTrace
        if subsystem not in getattr(power, "watts", {}):
            return None
        return power.power(subsystem)
    if isinstance(power, Mapping):
        return power.get(subsystem, power.get(_name(subsystem)))
    return None


def diagnose(row: SubsystemAttribution, n: int = 1) -> str:
    """The Section 5 sentence for one subsystem, computed.

    Names the dominant term(s) and states whether the model under- or
    over-attributes against measured power — on mcf's CPU this prints
    the paper's diagnosis: the fetched-uops term carries the estimate
    but cannot see speculative execution, so true power is higher.
    """
    top = row.top_terms(n=max(1, n))
    lead = ", ".join(
        f"{term} ({watts:.1f} W, {row.share_pct(term):.0f}% of the estimate)"
        for term, watts in top
    )
    text = f"{row.subsystem}: estimate is carried by {lead}"
    residual = row.residual_w
    if residual is None:
        return text + "."
    direction = "under" if residual > 0 else "over"
    pct = (
        abs(residual) / row.true_w * 100.0 if row.true_w else float("nan")
    )
    return (
        f"{text}; measured power is {row.true_w:.1f} W, so the model "
        f"{direction}-attributes by {abs(residual):.1f} W "
        f"({pct:.1f}% of true)."
    )
