"""Alert-triggered flight recorder: post-mortem bundles for red runs.

A drift alert (or a dead sweep, or a crash) is only actionable if you
can answer "what was the system doing in the 30 s before it fired".
:class:`FlightRecorder` keeps that answer in memory the whole time — a
bounded, thread-safe ring of recent frames (per-window power samples
with their per-term :class:`~repro.obs.attribution.Attribution`
vectors) — and on a trigger writes a **self-contained bundle**:

* ``bundle.json`` — trigger reason/detail, the frame ring, the drift
  monitor's full alert state, the last N
  :class:`~repro.obs.live.WindowedRegistry` windows, the trace-event
  tail and the latest attribution, plus provenance (git sha, host);
* ``metrics.prom`` — the registry's Prometheus text at dump time.

Triggers (all funnel into :meth:`FlightRecorder.trigger`):

* the :class:`~repro.obs.live.LiveMonitor` on a firing
  :class:`~repro.obs.drift.DriftMonitor` transition;
* the sweep engine on permanent spec failures (``SweepError`` /
  partial results) via the module-global recorder;
* an unhandled exception, through :meth:`install_excepthook`;
* an explicit request — ``GET /flightrecorder?dump=1`` on the
  :class:`~repro.obs.http.ObservabilityServer`, the CLI's global
  ``--flight-dir``, or CI's ``REPRO_FLIGHT_DIR`` convention
  (:func:`dump_failure_bundle`).

Bundles are plain JSON: ``repro-power explain --bundle PATH``
pretty-prints one from a fresh process (:func:`load_bundle`).
Recording is cheap (append to a deque under a lock, once per sampler
window, never per tick) and everything here is stdlib-only.
"""

from __future__ import annotations

import json
import os
import re
import sys
import threading
import time
from collections import deque
from typing import Any

__all__ = [
    "FlightRecorder",
    "load_bundle",
    "set_global",
    "get_global",
    "clear_global",
    "trigger_global",
    "dump_failure_bundle",
    "FLIGHT_DIR_ENV",
]

#: Environment variable naming a bundle directory for CI failure dumps.
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Bundle artifact filenames.
BUNDLE_JSON = "bundle.json"
BUNDLE_METRICS = "metrics.prom"

#: Default ring capacity (frames).  At one frame per 5 s live window
#: this is ~20 minutes of history.
DEFAULT_CAPACITY = 256

#: How many registry windows / trace events a bundle carries.
DEFAULT_LAST_WINDOWS = 12
DEFAULT_TRACE_TAIL = 200

#: Hard cap on bundles per recorder — a flapping alert must not fill
#: the disk with near-identical dumps.
DEFAULT_MAX_BUNDLES = 16


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "-", text).strip("-").lower() or "trigger"


class FlightRecorder:
    """Bounded ring of recent observability state + bundle dumps.

    ``out_dir`` is where bundles land; with ``out_dir=None`` the
    recorder still records (and serves ``/flightrecorder``) but
    :meth:`trigger` only logs the request.  ``drift``/``windows`` are
    attached by whoever owns them (the monitor CLI) so the bundle can
    include alert state and recent windows; both are optional.
    """

    def __init__(
        self,
        out_dir: "str | None" = None,
        capacity: int = DEFAULT_CAPACITY,
        drift: Any = None,
        windows: Any = None,
        registry: Any = None,
        tracer: Any = None,
        last_windows: int = DEFAULT_LAST_WINDOWS,
        trace_tail: int = DEFAULT_TRACE_TAIL,
        max_bundles: int = DEFAULT_MAX_BUNDLES,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_bundles < 1:
            raise ValueError("max_bundles must be >= 1")
        self.out_dir = out_dir
        self.drift = drift
        self.windows = windows
        self._registry = registry
        self._tracer = tracer
        self.last_windows = int(last_windows)
        self.trace_tail = int(trace_tail)
        self.max_bundles = int(max_bundles)
        self._frames: "deque[dict]" = deque(maxlen=int(capacity))
        self._lock = threading.RLock()
        self._latest_attribution = None
        self._seq = 0
        self.bundles: "list[str]" = []
        self._prev_excepthook = None

    # -- recording -----------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._frames.maxlen or 0

    def record(self, now_s: float, attribution: Any = None, **attrs) -> None:
        """Append one frame (typically once per live window)."""
        frame: dict = {"t_s": float(now_s)}
        frame.update(attrs)
        if attribution is not None:
            frame["attribution"] = attribution.to_dict()
        with self._lock:
            if attribution is not None:
                self._latest_attribution = attribution
            self._frames.append(frame)

    def note(self, message: str, **attrs) -> None:
        """Append an annotation frame (wall-clocked; e.g. a failed
        test's node id from the CI hooks)."""
        self.record(time.time(), kind="note", message=message, **attrs)

    def frames(self) -> "list[dict]":
        with self._lock:
            return list(self._frames)

    @property
    def latest_attribution(self):
        with self._lock:
            return self._latest_attribution

    # -- documents -----------------------------------------------------

    def attribution_document(self) -> dict:
        """The ``/attribution`` endpoint's JSON document."""
        latest = self.latest_attribution
        return {"attribution": None if latest is None else latest.to_dict()}

    def to_json(self) -> dict:
        """Status summary (the ``/flightrecorder`` endpoint)."""
        with self._lock:
            return {
                "out_dir": self.out_dir,
                "capacity": self.capacity,
                "n_frames": len(self._frames),
                "max_bundles": self.max_bundles,
                "bundles": list(self.bundles),
                "has_attribution": self._latest_attribution is not None,
            }

    def bundle_document(self, reason: str, detail: Any = None) -> dict:
        """The full post-mortem document a trigger writes out."""
        from repro import obs

        tracer = self._tracer if self._tracer is not None else obs.tracer()
        latest = self.latest_attribution
        doc = {
            "kind": "repro-flight-bundle",
            "reason": reason,
            "detail": detail,
            "provenance": obs.provenance(),
            "frames": self.frames(),
            "trace_tail": tracer.events_tail(self.trace_tail),
            "attribution": None if latest is None else latest.to_dict(),
            "drift": None,
            "windows": None,
        }
        if self.drift is not None:
            doc["drift"] = self.drift.to_json()
        if self.windows is not None:
            doc["windows"] = self.windows.to_json(last=self.last_windows)
        return doc

    # -- dumping -------------------------------------------------------

    def trigger(self, reason: str, detail: Any = None) -> "str | None":
        """Dump a bundle; returns its directory (None when disabled,
        over the bundle cap, or the write failed)."""
        from repro import obs

        with self._lock:
            self._seq += 1
            seq = self._seq
            capped = len(self.bundles) >= self.max_bundles
        if self.out_dir is None or capped:
            obs.event(
                "flight.trigger_dropped", reason=reason, capped=capped
            )
            return None
        directory = os.path.join(
            self.out_dir, f"flight-{seq:03d}-{_slug(reason)}"
        )
        registry = self._registry if self._registry is not None else obs.registry()
        try:
            os.makedirs(directory, exist_ok=True)
            with open(
                os.path.join(directory, BUNDLE_JSON), "w", encoding="utf-8"
            ) as handle:
                json.dump(
                    self.bundle_document(reason, detail),
                    handle,
                    indent=2,
                    default=str,
                )
                handle.write("\n")
            with open(
                os.path.join(directory, BUNDLE_METRICS), "w", encoding="utf-8"
            ) as handle:
                handle.write(registry.to_prometheus())
        except OSError:
            return None
        with self._lock:
            self.bundles.append(directory)
        obs.inc("flight_bundles_total")
        obs.event("flight.dump", reason=reason, path=directory)
        return directory

    # -- crash hook ----------------------------------------------------

    def install_excepthook(self) -> None:
        """Dump a bundle on any unhandled exception (idempotent; the
        previous hook still runs afterwards)."""
        if self._prev_excepthook is not None:
            return
        prev = sys.excepthook

        def hook(exc_type, exc, tb):
            if not issubclass(exc_type, (KeyboardInterrupt, SystemExit)):
                try:
                    self.trigger(
                        "unhandled_exception",
                        detail={"type": exc_type.__name__, "error": str(exc)},
                    )
                except Exception:  # never mask the original crash
                    pass
            prev(exc_type, exc, tb)

        self._prev_excepthook = prev
        sys.excepthook = hook

    def uninstall_excepthook(self) -> None:
        """Restore the previous hook (only if ours is still current)."""
        if self._prev_excepthook is None:
            return
        if getattr(sys.excepthook, "__qualname__", "").startswith(
            "FlightRecorder.install_excepthook"
        ):
            sys.excepthook = self._prev_excepthook
        self._prev_excepthook = None


# -- module-global recorder --------------------------------------------
#
# Call sites that cannot thread a recorder through their API (the
# sweep engine deep inside a retry loop, pytest hooks, smoke scripts)
# use one process-global instance, set by whoever owns the run.

_global: "FlightRecorder | None" = None
_global_lock = threading.Lock()


def set_global(recorder: "FlightRecorder | None") -> "FlightRecorder | None":
    """Install the process-global recorder; returns the previous one."""
    global _global
    with _global_lock:
        previous, _global = _global, recorder
    return previous


def get_global() -> "FlightRecorder | None":
    return _global


def clear_global() -> None:
    set_global(None)


def trigger_global(reason: str, detail: Any = None) -> "str | None":
    """Dump through the global recorder, if one is installed."""
    recorder = _global
    if recorder is None:
        return None
    return recorder.trigger(reason, detail)


def dump_failure_bundle(
    reason: str, detail: Any = None, out_dir: "str | None" = None
) -> "str | None":
    """Best-effort CI hook: dump a bundle if ``REPRO_FLIGHT_DIR`` (or
    ``out_dir``) names a directory.  Used by the smoke scripts on gate
    failures so a red job uploads its own post-mortem."""
    directory = out_dir or os.environ.get(FLIGHT_DIR_ENV)
    recorder = get_global()
    if recorder is None:
        if not directory:
            return None
        recorder = FlightRecorder(out_dir=directory)
    elif recorder.out_dir is None:
        recorder.out_dir = directory
    try:
        return recorder.trigger(reason, detail)
    except Exception:
        return None


# -- bundle loading ----------------------------------------------------


def load_bundle(path: str) -> dict:
    """Read a bundle written by :meth:`FlightRecorder.trigger`.

    Accepts the bundle directory or the ``bundle.json`` inside it;
    raises ``FileNotFoundError``/``ValueError`` on non-bundles.
    """
    if os.path.isdir(path):
        path = os.path.join(path, BUNDLE_JSON)
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("kind") != "repro-flight-bundle":
        raise ValueError(f"{path} is not a flight-recorder bundle")
    return doc
