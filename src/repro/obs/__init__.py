"""``repro.obs`` — telemetry for the reproduction itself.

The paper's method is measurement; this package makes the *simulation
of that measurement* measurable too.  Three dependency-free pieces:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of counters, gauges and fixed-bucket histograms with Prometheus-text
  and JSON exposition;
* :mod:`repro.obs.tracing` — ``span()`` context-manager tracing
  (monotonic clock, parent/child nesting) emitting a JSONL event log;
* :mod:`repro.obs.log` — stdlib ``logging`` wiring with a
  ``REPRO_LOG_LEVEL`` environment switch.

On top of those, the **live layer** (imported on first attribute
access, so the batch paths pay nothing for it):

* :mod:`repro.obs.live` — :class:`~repro.obs.live.WindowedRegistry`
  sliding-window aggregation and the :class:`~repro.obs.live.LiveMonitor`
  / :class:`~repro.obs.live.ClusterObserver` streaming hooks;
* :mod:`repro.obs.drift` — the EWMA residual drift monitor with the
  paper's 9 % average-error bound as its default SLO;
* :mod:`repro.obs.fleet` — the vectorized fleet plane:
  :class:`~repro.obs.fleet.FleetMonitor` watches every lane of a
  ``FleetServer`` in batched numpy passes, with per-lane drift EWMAs
  proven equivalent to the scalar monitor;
* :mod:`repro.obs.http` — a background-thread HTTP exposition server
  (``/metrics``, ``/metrics.json``, ``/alerts``, ``/healthz``,
  ``/attribution``, ``/flightrecorder``, ``/fleet*``);
* :mod:`repro.obs.attribution` — per-term watt decomposition of every
  estimate (which counter term carries the watts);
* :mod:`repro.obs.flight` — a bounded flight recorder dumping
  post-mortem bundles on drift alerts, sweep failures and crashes.

Telemetry is **opt-in and off by default**.  Instrumented call sites
guard on :func:`enabled` (or call the no-op-when-disabled helpers
below), so the disabled path costs one module-level bool read — the
``scripts/obs_overhead.py`` gate holds the *enabled* tick-loop overhead
under 5% and ``scripts/bench_compare.py`` holds the disabled path
within the usual 20% regression gate.

Typical use::

    from repro import obs

    obs.enable()
    ... run a sweep ...
    obs.dump("out/")        # metrics.prom, metrics.json, trace.jsonl

Worker processes snapshot their registry + trace with
:func:`snapshot` and the parent folds them back with
:func:`merge_snapshot`; merging is associative, so a parallel sweep's
aggregated view equals the serial run's (tested in
``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import os
import subprocess
from contextlib import contextmanager

from repro.obs import log
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry, metric_key
from repro.obs.tracing import Tracer, read_jsonl

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "alertmgr",
    "attribution",
    "counter",
    "disable",
    "drift",
    "dump",
    "flight",
    "enable",
    "enabled",
    "event",
    "fleet",
    "gauge",
    "gauge_value",
    "http",
    "inc",
    "live",
    "log",
    "merge_snapshot",
    "metric_key",
    "observe",
    "provenance",
    "read_jsonl",
    "registry",
    "reset",
    "rules",
    "snapshot",
    "span",
    "tracer",
    "tsdb",
]

#: Filenames :func:`dump` writes into its target directory.
METRICS_PROM = "metrics.prom"
METRICS_JSON = "metrics.json"
TRACE_JSONL = "trace.jsonl"

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()


def enabled() -> bool:
    """Whether telemetry collection is on in this process."""
    return _enabled


def enable() -> None:
    """Turn telemetry collection on (idempotent; state is kept)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn telemetry collection off (collected data is kept)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop every collected metric and trace event."""
    _registry.reset()
    _tracer.reset()


def registry() -> MetricsRegistry:
    """This process's metrics registry (collects only while enabled)."""
    return _registry


def tracer() -> Tracer:
    """This process's tracer (collects only while enabled)."""
    return _tracer


# -- no-op-when-disabled recording helpers -----------------------------


@contextmanager
def _null_span():
    yield None


def span(name: str, **attrs):
    """A tracing span, or a free no-op when telemetry is disabled."""
    if not _enabled:
        return _null_span()
    return _tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """A zero-duration trace event, or a no-op when disabled."""
    if _enabled:
        _tracer.event(name, **attrs)


def inc(name: str, value: float = 1.0, labels: "dict | None" = None) -> None:
    if _enabled:
        _registry.inc(name, value, labels)


def gauge(name: str, value: float, labels: "dict | None" = None) -> None:
    if _enabled:
        _registry.gauge(name, value, labels)


def observe(
    name: str,
    value: float,
    labels: "dict | None" = None,
    buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
) -> None:
    if _enabled:
        _registry.observe(name, value, labels, buckets)


def counter(name: str, labels: "dict | None" = None) -> float:
    """Current value of a counter (0.0 when it never incremented).

    A read-side convenience for call sites that report on their own
    telemetry — e.g. the sweep CLI printing ``sweep_retries_total``
    after a fault-disturbed run.
    """
    return _registry.counters.get(metric_key(name, labels), 0.0)


def gauge_value(name: str, labels: "dict | None" = None) -> float:
    """Current value of a gauge (NaN when it was never set).

    The read-side complement of :func:`counter` — the monitor CLI used
    to re-parse the Prometheus text exposition to show its own gauges;
    this reads them straight from the registry instead.
    """
    return _registry.gauges.get(metric_key(name, labels), float("nan"))


# -- cross-process aggregation -----------------------------------------


def snapshot() -> dict:
    """Picklable copy of this process's metrics and trace events."""
    return {"metrics": _registry.snapshot(), "trace": _tracer.events_copy()}


def merge_snapshot(snap: dict) -> None:
    """Fold a worker's :func:`snapshot` into this process's telemetry."""
    _registry.merge_snapshot(snap.get("metrics", {}))
    _tracer.extend(snap.get("trace", []))


# -- exposition --------------------------------------------------------


def provenance() -> dict:
    """Where/when this telemetry (or benchmark baseline) was recorded."""
    import datetime
    import platform
    import sys

    try:
        sha = (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "git_sha": sha,
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "host": platform.node() or "unknown",
        "python": sys.version.split()[0],
    }


def dump(directory: str) -> "dict[str, str]":
    """Write ``metrics.prom``, ``metrics.json`` and ``trace.jsonl``.

    Returns the mapping of artifact name to written path.  The JSON
    exposition carries a ``provenance`` stanza (git sha, date, host) so
    a dumped directory is self-describing.
    """
    os.makedirs(directory, exist_ok=True)
    paths = {
        METRICS_PROM: os.path.join(directory, METRICS_PROM),
        METRICS_JSON: os.path.join(directory, METRICS_JSON),
        TRACE_JSONL: os.path.join(directory, TRACE_JSONL),
    }
    with open(paths[METRICS_PROM], "w", encoding="utf-8") as handle:
        handle.write(_registry.to_prometheus())
    with open(paths[METRICS_JSON], "w", encoding="utf-8") as handle:
        json.dump(
            {"provenance": provenance(), **_registry.to_json()},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    _tracer.write_jsonl(paths[TRACE_JSONL])
    return paths


def __getattr__(name: str):
    # The live layer (windowed aggregation, drift monitoring, the HTTP
    # exposition server) loads lazily so importing ``repro.obs`` stays
    # as cheap as the batch telemetry alone.
    if name in (
        "live", "drift", "fleet", "http", "attribution", "flight",
        "tsdb", "rules", "alertmgr",
    ):
        import importlib

        module = importlib.import_module(f"repro.obs.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
