"""Recording rules: precomputed series evaluated on every store flush.

A :class:`RecordingRule` names a derived series (Prometheus-style
``source:agg_window`` naming, e.g. ``drift_error_pct:mean_5m``),
the source metric it reads, a lookback window, an aggregation and an
optional ``by`` label grouping.  A :class:`RuleEngine` holds a list of
rules and is attached to a :class:`~repro.obs.tsdb.TSDB` via
``db.attach_rules(engine)`` — every ``db.flush(now_s)`` then evaluates
each rule over ``[now - window, now]`` and appends one sample per
group at ``now`` back into the store, so dashboards and alerts read a
cheap precomputed series instead of re-aggregating raw points.

Rule dict syntax (the shape ``/rules`` serves and docs describe)::

    {"record": "drift_error_pct:mean_5m",
     "source": "drift_error_pct",
     "window": "5m",          # parse_duration: s/m/h/d suffixes
     "agg": "mean",           # mean|min|max|sum|count|last|rate|p<NN>
     "by": ["subsystem"]}     # optional grouping; omit = one series

``agg="rate"`` uses the store's reset-aware counter rate;
``agg="p95"``-style quantiles use ``quantile_over_time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tsdb import parse_duration

_SIMPLE_AGGS = ("mean", "min", "max", "sum", "count", "last")


@dataclass(frozen=True)
class RecordingRule:
    """One derived series: ``record = agg(source[window]) by (labels)``."""

    record: str
    source: str
    window_s: float
    agg: str = "mean"
    by: "tuple[str, ...]" = ()
    matchers: "dict[str, str]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.record or not self.source:
            raise ValueError("rule record and source names are required")
        if self.window_s <= 0:
            raise ValueError("rule window must be positive")
        agg = self.agg
        if agg not in _SIMPLE_AGGS and agg != "rate" and not (
            agg.startswith("p") and agg[1:].isdigit()
        ):
            raise ValueError(
                f"agg must be one of {_SIMPLE_AGGS}, 'rate' or 'pNN': {agg!r}"
            )

    @classmethod
    def from_dict(cls, doc: dict) -> "RecordingRule":
        if "window_s" in doc:
            window_s = float(doc["window_s"])
        else:
            window_s = parse_duration(doc.get("window", "5m"))
        return cls(
            record=doc["record"],
            source=doc["source"],
            window_s=window_s,
            agg=doc.get("agg", "mean"),
            by=tuple(doc.get("by", ())),
            matchers=dict(doc.get("matchers", {})),
        )

    def to_dict(self) -> dict:
        return {
            "record": self.record,
            "source": self.source,
            "window_s": self.window_s,
            "agg": self.agg,
            "by": list(self.by),
            "matchers": dict(self.matchers),
        }


#: Rules the CLI installs by default when ``--store`` is given: the
#: series the drift/SLO/dc post-mortems actually read.
DEFAULT_RULES: "tuple[RecordingRule, ...]" = (
    RecordingRule(
        "drift_error_pct:mean_5m", "drift_error_pct", 300.0,
        agg="mean", by=("subsystem",),
    ),
    RecordingRule(
        "live_error_pct:max_5m", "live_error_pct", 300.0,
        agg="max", by=("subsystem",),
    ),
    RecordingRule(
        "live_power_watts:mean_5m", "live_power_watts", 300.0,
        agg="mean", by=("subsystem", "source"),
    ),
    RecordingRule(
        "serve_fleet_power_watts:mean_5m", "serve_fleet_power_watts", 300.0,
        agg="mean", by=("agg",),
    ),
)


class RuleEngine:
    """Evaluates recording rules against a store at flush time.

    Evaluation is idempotent per timestamp: a flush at the same (or an
    older) ``now_s`` as the previous one skips, so repeated flushes of
    a quiet store do not stack duplicate samples.
    """

    def __init__(self, rules: "list[RecordingRule] | None" = None) -> None:
        self.rules: "list[RecordingRule]" = list(
            rules if rules is not None else DEFAULT_RULES
        )
        self.evaluations = 0
        self.samples_recorded = 0
        self._last_eval_s = float("-inf")

    def evaluate(self, db, now_s: float) -> int:
        """Append every rule's current value at ``now_s``; returns count."""
        if now_s <= self._last_eval_s:
            return 0
        self._last_eval_s = now_s
        recorded = 0
        for rule in self.rules:
            recorded += self._evaluate_rule(db, rule, now_s)
        self.evaluations += 1
        self.samples_recorded += recorded
        return recorded

    def _evaluate_rule(self, db, rule: RecordingRule, now_s: float) -> int:
        start_s = now_s - rule.window_s
        if rule.agg == "rate":
            results = [
                {"labels": entry["labels"], "value": entry["rate"]}
                for entry in db.rate(
                    rule.source, rule.matchers or None, start_s, now_s
                )
            ]
            results = _group(results, rule.by, "mean")
        elif rule.agg.startswith("p") and rule.agg != "p":
            q = int(rule.agg[1:]) / 100.0
            results = [
                entry
                for entry in db.quantile_over_time(
                    rule.source, q, rule.matchers or None, start_s, now_s
                )
                if entry["value"] == entry["value"]
            ]
            results = _group(results, rule.by, "mean")
        else:
            results = [
                {
                    "labels": entry["labels"],
                    "value": entry["points"][-1][1]
                    if entry["points"] else None,
                }
                for entry in db.query_range(
                    rule.source,
                    rule.matchers or None,
                    start_s,
                    now_s,
                    step_s=rule.window_s,
                    agg=rule.agg,
                    by=rule.by,
                    tier="raw",
                )
            ]
        recorded = 0
        for entry in results:
            if entry["value"] is None:
                continue
            db.append(rule.record, entry["labels"], now_s, entry["value"])
            recorded += 1
        return recorded

    def document(self) -> dict:
        """The ``/rules`` payload."""
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "evaluations": self.evaluations,
            "samples_recorded": self.samples_recorded,
        }


def _group(results, by, fold):
    """Collapse per-series scalars onto ``by`` labels (mean fold)."""
    if not by:
        if not results:
            return []
        values = [entry["value"] for entry in results]
        return [{"labels": {}, "value": sum(values) / len(values)}]
    groups: "dict[tuple, list]" = {}
    labels_for: "dict[tuple, dict]" = {}
    for entry in results:
        group_labels = {label: entry["labels"].get(label, "") for label in by}
        key = tuple(sorted(group_labels.items()))
        groups.setdefault(key, []).append(entry["value"])
        labels_for[key] = group_labels
    return [
        {
            "labels": labels_for[key],
            "value": sum(values) / len(values),
        }
        for key, values in sorted(groups.items())
    ]
