"""HTTP exposition of live telemetry (off by default, opt-in).

:class:`ObservabilityServer` wraps ``http.server`` in a daemon thread
and serves the process's live observability state:

=============== =======================================================
route           payload
=============== =======================================================
/metrics        Prometheus text exposition of the metrics registry
/metrics.json   the same metrics as JSON (the ``metrics.json`` shape)
/alerts         the aggregated alert plane: drift-monitor state, SLO
                burn, dc alerts and the unified AlertManager document
                (absent sources are explicit ``null``, never 404)
/query          instant query against the attached store:
                ``?name=...&label=k=v&at=T``
/query_range    range query: ``?name=...&start=&end=&step=&agg=&by=``
                (label matchers repeat ``label=k=v``; regex ``k=~re``)
/rules          the recording-rule engine's rules + evaluation stats,
                and the store's shard/segment summary
/windows        the windowed registry's recent windows (when attached);
                ``?last=N`` pages the newest N windows
/healthz        liveness **and drift state**: 200 while healthy, 503
                with the unresolved alerts once the attached drift
                monitor has firing streams
/attribution    the latest per-term watt decomposition (when a flight
                recorder is attached and the estimator attributes)
/flightrecorder flight-recorder status; ``?dump=1`` writes a bundle
                and returns its path
/fleet          fleet-monitor summary: width, cross-lane power/error
                aggregates, alert rollups (when a fleet is attached)
/fleet/lanes    per-lane drill-down ranked worst-first by drift EWMA;
                ``?top=K`` limits to the K worst offenders
/fleet/lane/<i> one lane's full state: streams, history, latest window
/dc             the attached datacenter's latest scenario report:
                cap/violations, EP score, per-zone budgets and power
/nodes          streaming-service per-node summary + fleet aggregate
/nodes/<id>     one node's estimates, drift and attribution drill-down
/service        shard/queue/stage/SLO state of the streaming service
/service/kill_shard  **POST** ``?shard=i``: the chaos hook CI uses;
                403 unless the server opted in with ``chaos=True``
/slo            error-budget burn state (short/long windows, fast burn)
/ingest         **POST** newline-JSON counter samples into the service;
                200 whenever anything was accepted (read the receipt's
                ``accepted``/``shed``/``errors`` counts to decide what
                to resend), 429 when everything shed, 400 when every
                line was rejected
=============== =======================================================

Nothing is served unless :meth:`ObservabilityServer.start` is called
explicitly — merely importing this module (or enabling telemetry) opens
no sockets.  Scrapes read shared state through the registry's and
windowed registry's own locks, which is why
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.tracing.Tracer` are thread-safe.

    server = ObservabilityServer(port=0)  # 0 = ephemeral port
    port = server.start()
    ...
    server.stop()
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

logger = logging.getLogger(__name__)

#: Prometheus text exposition content type.
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObservabilityServer:
    """Serves live metrics, alerts and health from a background thread.

    Args:
        registry: metrics registry to expose (default: the process
            registry, ``obs.registry()``).
        drift: a :class:`~repro.obs.drift.DriftMonitor` for ``/alerts``
            (optional; the route reports an empty document without it).
        windows: a :class:`~repro.obs.live.WindowedRegistry` for
            ``/windows`` (optional).
        flight: a :class:`~repro.obs.flight.FlightRecorder` for
            ``/attribution`` and ``/flightrecorder`` (optional).
        fleet: a :class:`~repro.obs.fleet.FleetMonitor` for the
            ``/fleet*`` routes (optional).
        service: a :class:`~repro.serve.service.EstimationService` for
            the streaming routes — ``POST /ingest``, ``/nodes``,
            ``/nodes/<id>``, ``/service``, ``/slo`` — and the
            staleness/burn-aware ``/healthz`` verdict (optional).
        store: a :class:`~repro.obs.tsdb.TSDB` for ``/query`` and
            ``/query_range`` (optional; the routes answer
            ``{"store": null}`` without one).
        alerts: an :class:`~repro.obs.alertmgr.AlertManager` folded
            into the aggregated ``/alerts`` payload (optional).
        rules: a :class:`~repro.obs.rules.RuleEngine` served on
            ``/rules`` next to the store summary (optional).
        dc: a :class:`~repro.dc.datacenter.Datacenter` (or any object
            with a ``document()``/``last_report``) for ``/dc``
            (optional).
        chaos: opt-in for the destructive ``POST /service/kill_shard``
            chaos hook; off by default so a production scrape (or a
            curious curl) can never degrade the service.
        host: bind address (default loopback only).
        port: TCP port; 0 picks an ephemeral one, :meth:`start` returns
            the bound port.
    """

    ROUTES = (
        "/metrics",
        "/metrics.json",
        "/alerts",
        "/query",
        "/query_range",
        "/rules",
        "/windows",
        "/healthz",
        "/attribution",
        "/flightrecorder",
        "/fleet",
        "/fleet/lanes",
        "/fleet/lane/<i>",
        "/dc",
        "/nodes",
        "/nodes/<id>",
        "/service",
        "/service/kill_shard (POST, chaos=True)",
        "/slo",
        "/ingest (POST)",
    )

    def __init__(
        self,
        registry=None,
        drift=None,
        windows=None,
        flight=None,
        fleet=None,
        service=None,
        dc=None,
        store=None,
        alerts=None,
        rules=None,
        chaos: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if registry is None:
            from repro import obs

            registry = obs.registry()
        self.registry = registry
        self.drift = drift
        self.windows = windows
        self.flight = flight
        self.fleet = fleet
        self.service = service
        self.dc = dc
        self.store = store
        self.alerts = alerts
        self.rules = rules
        self.chaos = bool(chaos)
        self.host = host
        self.port = int(port)
        #: Free-form lifecycle marker surfaced on ``/healthz`` (the CLI
        #: sets "training" / "running" / "done").
        self.phase = "idle"
        self._httpd: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None
        self._started_monotonic = 0.0

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port
        handler = _make_handler(self)
        try:
            self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        except OSError as exc:
            # EADDRINUSE and friends come back as a bare errno; rewrap
            # with the address and the obvious fix so the CLI surfaces
            # something actionable instead of a traceback.
            raise OSError(
                exc.errno or 0,
                f"cannot bind observability endpoint to "
                f"{self.host}:{self.port} ({exc.strerror or exc}); "
                "pick another --port, or --port 0 for an ephemeral one",
            ) from exc
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._started_monotonic = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        logger.info("observability endpoint listening on %s", self.url())
        return self.port

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ObservabilityServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def url(self, path: str = "") -> str:
        """The server's base URL, optionally with a route appended."""
        return f"http://{self.host}:{self.port}{path}"

    @property
    def uptime_s(self) -> float:
        if self._httpd is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # -- route payloads ------------------------------------------------

    def payload(self, path: str, query: str = "") -> "tuple[int, str, str]":
        """(status, content-type, body) for one route."""
        if path in ("/metrics", "/metrics/"):
            return 200, _PROM_CONTENT_TYPE, self.registry.to_prometheus()
        if path == "/metrics.json":
            return 200, "application/json", _json_body(self.registry.to_json())
        if path == "/alerts":
            return 200, "application/json", _json_body(self.alerts_document())
        if path == "/query":
            return self._query_route(query)
        if path == "/query_range":
            return self._query_range_route(query)
        if path == "/rules":
            document = {
                "rules": (
                    self.rules.document() if self.rules is not None else None
                ),
                "store": (
                    self.store.document() if self.store is not None else None
                ),
            }
            return 200, "application/json", _json_body(document)
        if path == "/windows":
            if self.windows is None:
                return 200, "application/json", _json_body({"windows": []})
            last: "int | None" = 12
            raw = parse_qs(query).get("last")
            if raw:
                try:
                    last = int(raw[-1])
                except ValueError:
                    last = -1
                if last < 1:
                    return 400, "application/json", _json_body(
                        {"error": "last must be a positive integer"}
                    )
            return 200, "application/json", _json_body(
                self.windows.to_json(last=last)
            )
        if path == "/fleet":
            document = (
                self.fleet.fleet_document()
                if self.fleet is not None
                else {"fleet": None}
            )
            return 200, "application/json", _json_body(document)
        if path == "/fleet/lanes":
            if self.fleet is None:
                return 200, "application/json", _json_body({"fleet": None})
            top = 8
            raw = parse_qs(query).get("top")
            if raw:
                try:
                    top = int(raw[-1])
                except ValueError:
                    top = -1
                if top < 1:
                    return 400, "application/json", _json_body(
                        {"error": "top must be a positive integer"}
                    )
            return 200, "application/json", _json_body(
                self.fleet.lanes_document(top=top)
            )
        if path.startswith("/fleet/lane/"):
            if self.fleet is None:
                return 200, "application/json", _json_body({"fleet": None})
            try:
                lane = int(path[len("/fleet/lane/"):])
                document = self.fleet.lane_document(lane)
            except (ValueError, IndexError):
                return 404, "application/json", _json_body(
                    {"error": f"no such lane {path[len('/fleet/lane/'):]!r}"}
                )
            return 200, "application/json", _json_body(document)
        if path == "/attribution":
            document = (
                self.flight.attribution_document()
                if self.flight is not None
                else {"attribution": None}
            )
            return 200, "application/json", _json_body(document)
        if path == "/flightrecorder":
            if self.flight is None:
                return 200, "application/json", _json_body(
                    {"enabled": False, "bundles": []}
                )
            document = {"enabled": True}
            if "dump" in parse_qs(query):
                document["dumped"] = self.flight.trigger(
                    "http.request", detail={"query": query}
                )
            document.update(self.flight.to_json())
            return 200, "application/json", _json_body(document)
        if path == "/nodes":
            if self.service is None:
                return 200, "application/json", _json_body({"nodes": None})
            return 200, "application/json", _json_body(
                self.service.nodes_document()
            )
        if path == "/dc":
            # A Datacenter (serving its last_report) or anything with a
            # document() works as the attachment.
            if self.dc is None:
                return 200, "application/json", _json_body({"datacenter": None})
            report = getattr(self.dc, "last_report", self.dc)
            document = report.document() if report is not None else None
            return 200, "application/json", _json_body({"datacenter": document})
        if path.startswith("/nodes/"):
            if self.service is None:
                return 200, "application/json", _json_body({"nodes": None})
            node = path[len("/nodes/"):]
            document = self.service.node_document(node)
            if document is None:
                return 404, "application/json", _json_body(
                    {"error": f"no such node {node!r}"}
                )
            return 200, "application/json", _json_body(document)
        if path == "/service":
            if self.service is None:
                return 200, "application/json", _json_body({"service": None})
            return 200, "application/json", _json_body(
                self.service.service_document()
            )
        if path == "/slo":
            if self.service is None:
                return 200, "application/json", _json_body({"slo": None})
            return 200, "application/json", _json_body(self.service.slo.check())
        if path in ("/healthz", "/", ""):
            document = {
                "status": "ok",
                "phase": self.phase,
                "uptime_s": round(self.uptime_s, 3),
                "routes": list(self.ROUTES),
            }
            # Drift-aware health: firing alerts mean the estimates
            # should not steer anything, so report unhealthy (503) and
            # name the unresolved alerts in the body.
            if self.drift is not None and self.drift.firing:
                document["status"] = "drifting"
                document["firing"] = list(self.drift.firing)
                document["alerts"] = [
                    alert.to_dict() for alert in self.drift.unresolved()
                ]
                return 503, "application/json", _json_body(document)
            # Streaming-service health: stale estimates, fast-burning
            # SLOs and drifting nodes are 503 (same unresolved-alert
            # semantics); dead shards alone are degraded **but still
            # serving**, so they keep the 200.
            if self.service is not None:
                verdict = self.service.health()
                document["service"] = verdict
                document["status"] = verdict["status"]
                if not verdict["healthy"]:
                    return 503, "application/json", _json_body(document)
            return 200, "application/json", _json_body(document)
        return 404, "application/json", _json_body(
            {"error": f"unknown route {path!r}", "routes": list(self.ROUTES)}
        )

    def alerts_document(self) -> dict:
        """The aggregated ``/alerts`` payload.

        Every alert surface gets a key; unattached sources are an
        explicit ``null`` (the route is always 200 — "no monitor" is an
        answer, not an error).
        """
        slo_doc = None
        if self.service is not None:
            slo_doc = self.service.slo.check()
        dc_doc = None
        if self.dc is not None:
            report = getattr(self.dc, "last_report", self.dc)
            if report is not None:
                dc_doc = {
                    "cap_violations": getattr(report, "cap_violations", 0),
                    "boots_denied": getattr(report, "boots_denied", 0),
                    "cap_enforcements": getattr(report, "cap_enforcements", 0),
                    "drift_fallback_seconds": getattr(
                        report, "drift_fallback_seconds", 0
                    ),
                }
        return {
            "drift": self.drift.to_json() if self.drift is not None else None,
            "slo": slo_doc,
            "dc": dc_doc,
            "alerts": (
                self.alerts.document() if self.alerts is not None else None
            ),
        }

    def _query_route(self, query: str) -> "tuple[int, str, str]":
        if self.store is None:
            return 200, "application/json", _json_body({"store": None})
        params = parse_qs(query)
        name = (params.get("name") or [None])[-1]
        if not name:
            return 400, "application/json", _json_body(
                {"error": "query needs ?name=<metric>"}
            )
        from repro.obs.tsdb import parse_matchers

        try:
            matchers = parse_matchers(params.get("label"))
            at = params.get("at")
            result = self.store.query(
                name, matchers or None,
                at_s=float(at[-1]) if at else None,
            )
        except (ValueError, re.error) as exc:
            return 400, "application/json", _json_body({"error": str(exc)})
        return 200, "application/json", _json_body(
            {"name": name, "result": result}
        )

    def _query_range_route(self, query: str) -> "tuple[int, str, str]":
        if self.store is None:
            return 200, "application/json", _json_body({"store": None})
        params = parse_qs(query)
        name = (params.get("name") or [None])[-1]
        if not name:
            return 400, "application/json", _json_body(
                {"error": "query_range needs ?name=<metric>"}
            )
        from repro.obs.tsdb import parse_matchers

        def last(key, default=None):
            raw = params.get(key)
            return raw[-1] if raw else default

        try:
            matchers = parse_matchers(params.get("label"))
            by = last("by")
            step = last("step")
            result = self.store.query_range(
                name,
                matchers or None,
                start_s=float(last("start", 0.0)),
                end_s=float(last("end")) if last("end") is not None else None,
                step_s=float(step) if step is not None else None,
                agg=last("agg", "mean"),
                by=tuple(by.split(",")) if by else None,
                tier=last("tier", "auto"),
            )
        except (ValueError, re.error) as exc:
            return 400, "application/json", _json_body({"error": str(exc)})
        return 200, "application/json", _json_body(
            {"name": name, "result": result}
        )


def _json_body(document: dict) -> str:
    return json.dumps(document, indent=2, sort_keys=True, default=str) + "\n"


def _kill_shard(server: ObservabilityServer, query: str) -> "tuple[int, str]":
    """``POST /service/kill_shard?shard=i``: the chaos hook CI uses.

    Killing a shard is irreversible (there is no restart), so it only
    answers on an explicit POST *and* only when the server was built
    with ``chaos=True`` — a scraper following links can never trip it.
    """
    if not server.chaos:
        return 403, _json_body(
            {"error": "chaos hooks are disabled; start the server with chaos=True"}
        )
    raw = parse_qs(query).get("shard")
    try:
        index = int(raw[-1]) if raw else -1
        if index < 0:
            raise IndexError(index)
        killed = server.service.kill_shard(index)
    except (ValueError, IndexError):
        return 400, _json_body(
            {"error": f"kill_shard needs ?shard=i in [0, {len(server.service.shards)})"}
        )
    document = server.service.service_document()
    document["kill_shard"] = killed
    return 200, _json_body(document)


def _make_handler(server: ObservabilityServer):
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path, _, query = self.path.partition("?")
            try:
                status, content_type, body = server.payload(path, query)
            except Exception:  # pragma: no cover - defensive
                logger.exception("observability route %s failed", path)
                status, content_type, body = (
                    500,
                    "application/json",
                    _json_body({"error": "internal error"}),
                )
            encoded = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            path, _, query = self.path.partition("?")
            if path == "/service/kill_shard" and server.service is not None:
                status, body = _kill_shard(server, query)
            elif path != "/ingest" or server.service is None:
                body = _json_body({"error": f"cannot POST to {path!r}"})
                status = 404
            else:
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    data = self.rfile.read(length).decode("utf-8")
                    receipt = server.service.ingest(data, transport="http")
                    # Anything accepted was already enqueued and WILL be
                    # processed, so a non-2xx would invite a whole-body
                    # retry that duplicates those samples.  200 whenever
                    # something got in (clients resend from the receipt's
                    # counts); 429 = fully shed, back off; 400 = every
                    # line rejected.
                    if receipt["accepted"] or not (
                        receipt["shed"] or receipt["errors"]
                    ):
                        status = 200
                    elif receipt["shed"]:
                        status = 429
                    else:
                        status = 400
                    body = _json_body(receipt)
                except Exception:  # pragma: no cover - defensive
                    logger.exception("ingest POST failed")
                    status = 500
                    body = _json_body({"error": "internal error"})
            encoded = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            logger.debug("http: " + format, *args)

    return Handler
