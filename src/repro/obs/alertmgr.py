"""One alert plane over three disjoint surfaces: drift, SLO burn, dc.

Before this module, "is anything wrong?" required three different
queries: the drift monitor's ``firing`` tuple, the SLO engine's
``fast_burning`` names, and the datacenter report's cap/fallback
tallies.  :class:`AlertManager` polls all three through small source
adapters and maintains one deduplicated alert set with stable keys
(``source:name{label=value,...}``), grouping, silences, and
firing→resolved transition history.  With a store attached, every
transition also lands as an ``alerts_firing`` sample (1.0 on firing,
0.0 on resolve) so "what was alerting at 14:32?" stays answerable
after the process is gone.

Sources (attach any subset):

* ``attach_drift(monitor)`` — a scalar
  :class:`~repro.obs.drift.DriftMonitor` or vectorized
  :class:`~repro.obs.fleet.FleetDriftMonitor`; every entry of its
  ``firing`` tuple becomes one alert keyed by stream name.
* ``attach_slo(engine)`` — a :class:`~repro.serve.slo.SLOEngine`;
  every ``fast_burning`` SLO becomes one alert.
* ``attach_dc(datacenter)`` — a
  :class:`~repro.dc.datacenter.Datacenter`; a report with cap
  violations fires ``cap_violation``, and nonzero drift-fallback
  seconds fire ``drift_fallback`` until a cleaner report lands.

Silences are matcher dicts with an expiry (the caller's clock):
a silenced alert stays tracked — state transitions still record —
but is excluded from the ``firing`` rollup that feeds ``/healthz``
style decisions.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field


def dedup_key(source: str, name: str, labels: "dict[str, str]") -> str:
    """The stable identity of one alert across polls and restarts."""
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{source}:{name}{{{rendered}}}"


@dataclass
class Alert:
    """One deduplicated alert and its current state."""

    source: str
    name: str
    labels: "dict[str, str]"
    severity: str = "warning"
    state: str = "firing"
    since_s: float = 0.0
    last_seen_s: float = 0.0
    detail: "dict" = field(default_factory=dict)

    @property
    def key(self) -> str:
        return dedup_key(self.source, self.name, self.labels)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "source": self.source,
            "name": self.name,
            "labels": dict(self.labels),
            "severity": self.severity,
            "state": self.state,
            "since_s": self.since_s,
            "last_seen_s": self.last_seen_s,
            "detail": dict(self.detail),
        }


@dataclass
class Silence:
    """Mute alerts matching ``matchers`` until ``until_s``."""

    silence_id: int
    matchers: "dict[str, str]"
    until_s: float
    comment: str = ""

    def matches(self, alert: Alert) -> bool:
        fields = {"source": alert.source, "name": alert.name, **alert.labels}
        for label, wanted in self.matchers.items():
            have = fields.get(label)
            if wanted.startswith("=~"):
                if have is None or re.fullmatch(wanted[2:], have) is None:
                    return False
            elif have != wanted:
                return False
        return True

    def to_dict(self) -> dict:
        return {
            "id": self.silence_id,
            "matchers": dict(self.matchers),
            "until_s": self.until_s,
            "comment": self.comment,
        }


class AlertManager:
    """Polls the attached sources and folds them into one alert set."""

    def __init__(self, store=None, max_history: int = 256) -> None:
        #: Optional :class:`~repro.obs.tsdb.TSDB` receiving
        #: ``alerts_firing`` transition samples.
        self.store = store
        self.max_history = int(max_history)
        self.alerts: "dict[str, Alert]" = {}
        self.history: "list[dict]" = []
        self.silences: "list[Silence]" = []
        self._silence_ids = itertools.count(1)
        self._drift = None
        self._slo = None
        self._dc = None
        self.evaluations = 0

    # -- sources -------------------------------------------------------

    def attach_drift(self, monitor) -> None:
        self._drift = monitor

    def attach_slo(self, engine) -> None:
        self._slo = engine

    def attach_dc(self, datacenter) -> None:
        self._dc = datacenter

    # -- silences ------------------------------------------------------

    def silence(
        self, matchers: "dict[str, str]", until_s: float, comment: str = ""
    ) -> int:
        """Mute matching alerts until ``until_s``; returns the silence id."""
        entry = Silence(next(self._silence_ids), dict(matchers), float(until_s), comment)
        self.silences.append(entry)
        return entry.silence_id

    def expire_silences(self, now_s: float) -> None:
        self.silences = [s for s in self.silences if s.until_s > now_s]

    def _silenced(self, alert: Alert) -> bool:
        return any(s.matches(alert) for s in self.silences)

    # -- evaluation ----------------------------------------------------

    def evaluate(self, now_s: float) -> "list[dict]":
        """Poll every source; returns this round's transitions."""
        self.expire_silences(now_s)
        active: "dict[str, Alert]" = {}
        for alert in self._drift_alerts():
            active[alert.key] = alert
        for alert in self._slo_alerts():
            active[alert.key] = alert
        for alert in self._dc_alerts():
            active[alert.key] = alert

        transitions: "list[dict]" = []
        for key, alert in active.items():
            known = self.alerts.get(key)
            if known is None or known.state != "firing":
                alert.state = "firing"
                alert.since_s = now_s
                alert.last_seen_s = now_s
                self.alerts[key] = alert
                transitions.append(self._transition(alert, now_s))
            else:
                known.last_seen_s = now_s
                known.detail = alert.detail
        for key, known in self.alerts.items():
            if known.state == "firing" and key not in active:
                known.state = "resolved"
                known.last_seen_s = now_s
                transitions.append(self._transition(known, now_s))
        self.evaluations += 1
        return transitions

    def _transition(self, alert: Alert, now_s: float) -> dict:
        record = alert.to_dict()
        record["t_s"] = now_s
        self.history.append(record)
        del self.history[: -self.max_history]
        if self.store is not None:
            self.store.append(
                "alerts_firing",
                {"source": alert.source, "alert": alert.name, **alert.labels},
                now_s,
                1.0 if alert.state == "firing" else 0.0,
            )
        return record

    # -- source adapters -----------------------------------------------

    def _drift_alerts(self) -> "list[Alert]":
        monitor = self._drift
        if monitor is None:
            return []
        out = []
        slo_pct = getattr(monitor, "slo_pct", None)
        for stream in monitor.firing:
            # FleetDriftMonitor streams read "subsystem[lane]".
            name, _, lane = str(stream).partition("[")
            labels = {"subsystem": name}
            if lane:
                labels["lane"] = lane.rstrip("]")
            out.append(Alert(
                source="drift",
                name="drift_slo_breach",
                labels=labels,
                severity="critical",
                detail={"slo_pct": slo_pct},
            ))
        return out

    def _slo_alerts(self) -> "list[Alert]":
        engine = self._slo
        if engine is None:
            return []
        return [
            Alert(
                source="slo",
                name="fast_burn",
                labels={"slo": name},
                severity="critical",
            )
            for name in engine.fast_burning
        ]

    def _dc_alerts(self) -> "list[Alert]":
        datacenter = self._dc
        if datacenter is None:
            return []
        report = getattr(datacenter, "last_report", datacenter)
        if report is None:
            return []
        out = []
        violations = getattr(report, "cap_violations", 0)
        if violations:
            out.append(Alert(
                source="dc",
                name="cap_violation",
                labels={"policy": str(getattr(report, "policy", ""))},
                severity="critical",
                detail={"cap_violations": int(violations)},
            ))
        fallback = getattr(report, "drift_fallback_seconds", 0)
        if fallback:
            out.append(Alert(
                source="dc",
                name="drift_fallback",
                labels={"policy": str(getattr(report, "policy", ""))},
                severity="warning",
                detail={"drift_fallback_seconds": int(fallback)},
            ))
        return out

    # -- exposition ----------------------------------------------------

    @property
    def firing(self) -> "list[Alert]":
        """Currently firing, unsilenced alerts (stable key order)."""
        return [
            alert
            for key, alert in sorted(self.alerts.items())
            if alert.state == "firing" and not self._silenced(alert)
        ]

    def document(self) -> dict:
        """The aggregated ``/alerts`` block for this manager."""
        groups: "dict[str, list]" = {}
        for key, alert in sorted(self.alerts.items()):
            doc = alert.to_dict()
            doc["silenced"] = self._silenced(alert)
            groups.setdefault(alert.source, []).append(doc)
        return {
            "firing": [alert.key for alert in self.firing],
            "groups": groups,
            "silences": [s.to_dict() for s in self.silences],
            "history": list(self.history),
            "evaluations": self.evaluations,
        }
