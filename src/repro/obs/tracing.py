"""Lightweight span tracing: nested, monotonic-clock, JSONL output.

A span measures one region of code::

    with obs.span("sweep.run_spec", workload="gcc") as sp:
        ...
        sp.set("n_samples", run.n_samples)

Spans nest naturally through a per-tracer stack: a span opened while
another is active records the outer span's id as its ``parent``.  Each
finished span becomes one JSON object; :meth:`Tracer.write_jsonl` emits
them one per line in *completion* order (children before their parent,
the order a streaming consumer can re-tree without buffering).

Durations come from ``time.monotonic()``; the wall-clock ``ts`` field
is informational only.  Span ids embed the pid so worker-process spans
merged into the parent tracer can never collide.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager


class SpanHandle:
    """The live side of a span: attributes can be added while open."""

    __slots__ = ("id", "name", "parent", "attrs", "_start_monotonic", "_ts")

    def __init__(self, span_id: str, name: str, parent: "str | None", attrs: dict):
        self.id = span_id
        self.name = name
        self.parent = parent
        self.attrs = attrs
        self._start_monotonic = time.monotonic()
        self._ts = time.time()

    def set(self, key: str, value) -> None:
        """Attach one attribute to the span while it is open."""
        self.attrs[str(key)] = value


class Tracer:
    """Collects finished spans (and point events) for one process."""

    def __init__(self) -> None:
        self.events: "list[dict]" = []
        self._stack: "list[SpanHandle]" = []
        self._next_id = 0

    def _new_id(self) -> str:
        self._next_id += 1
        return f"{os.getpid()}-{self._next_id}"

    @property
    def current_span_id(self) -> "str | None":
        return self._stack[-1].id if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span; closing it appends one event to the log."""
        handle = SpanHandle(
            self._new_id(), str(name), self.current_span_id,
            {str(k): v for k, v in attrs.items()},
        )
        self._stack.append(handle)
        try:
            yield handle
        finally:
            popped = self._stack.pop()
            assert popped is handle, "span stack corrupted"
            self.events.append(
                {
                    "name": handle.name,
                    "id": handle.id,
                    "parent": handle.parent,
                    "ts": handle._ts,
                    "dur_s": time.monotonic() - handle._start_monotonic,
                    "attrs": handle.attrs,
                }
            )

    def event(self, name: str, **attrs) -> None:
        """A zero-duration point event under the current span."""
        self.events.append(
            {
                "name": str(name),
                "id": self._new_id(),
                "parent": self.current_span_id,
                "ts": time.time(),
                "dur_s": 0.0,
                "attrs": {str(k): v for k, v in attrs.items()},
            }
        )

    def extend(self, events: "list[dict]") -> None:
        """Append already-finished events (e.g. from a worker process)."""
        self.events.extend(events)

    def reset(self) -> None:
        self.events.clear()
        self._stack.clear()

    def write_jsonl(self, path: str) -> None:
        """One JSON object per line, in completion order."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True, default=str))
                handle.write("\n")


def read_jsonl(path: str) -> "list[dict]":
    """Load a trace file written by :meth:`Tracer.write_jsonl`."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
