"""Lightweight span tracing: nested, monotonic-clock, JSONL output.

A span measures one region of code::

    with obs.span("sweep.run_spec", workload="gcc") as sp:
        ...
        sp.set("n_samples", run.n_samples)

Spans nest naturally through a per-tracer stack: a span opened while
another is active records the outer span's id as its ``parent``.  Each
finished span becomes one JSON object; :meth:`Tracer.write_jsonl` emits
them one per line in *completion* order (children before their parent,
the order a streaming consumer can re-tree without buffering).

Durations come from ``time.monotonic()``; the wall-clock ``ts`` field
is informational only.  Span ids embed the pid so worker-process spans
merged into the parent tracer can never collide.

The tracer is **thread-safe**: the finished-event log and the id
counter are guarded by a lock, and the open-span stack is thread-local,
so spans nest per thread and a span opened on one thread never becomes
the parent of a span on another.  The live HTTP exposition server reads
the log through :meth:`Tracer.events_copy` while recording continues.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager


class SpanHandle:
    """The live side of a span: attributes can be added while open."""

    __slots__ = ("id", "name", "parent", "attrs", "_start_monotonic", "_ts")

    def __init__(self, span_id: str, name: str, parent: "str | None", attrs: dict):
        self.id = span_id
        self.name = name
        self.parent = parent
        self.attrs = attrs
        self._start_monotonic = time.monotonic()
        self._ts = time.time()

    def set(self, key: str, value) -> None:
        """Attach one attribute to the span while it is open."""
        self.attrs[str(key)] = value


class Tracer:
    """Collects finished spans (and point events) for one process."""

    def __init__(self) -> None:
        self.events: "list[dict]" = []
        self._local = threading.local()
        self._lock = threading.RLock()
        self._next_id = 0

    @property
    def _stack(self) -> "list[SpanHandle]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"{os.getpid()}-{self._next_id}"

    @property
    def current_span_id(self) -> "str | None":
        stack = self._stack
        return stack[-1].id if stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span; closing it appends one event to the log."""
        handle = SpanHandle(
            self._new_id(), str(name), self.current_span_id,
            {str(k): v for k, v in attrs.items()},
        )
        stack = self._stack
        stack.append(handle)
        try:
            yield handle
        except BaseException as exc:
            # A span that dies mid-flight is still recorded — tagged
            # with the exception type so retried sweep tasks leave an
            # errored span per failed attempt.
            handle.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            popped = stack.pop()
            assert popped is handle, "span stack corrupted"
            event = {
                "name": handle.name,
                "id": handle.id,
                "parent": handle.parent,
                "ts": handle._ts,
                "dur_s": time.monotonic() - handle._start_monotonic,
                "attrs": handle.attrs,
            }
            with self._lock:
                self.events.append(event)

    def event(self, name: str, **attrs) -> None:
        """A zero-duration point event under the current span."""
        event = {
            "name": str(name),
            "id": self._new_id(),
            "parent": self.current_span_id,
            "ts": time.time(),
            "dur_s": 0.0,
            "attrs": {str(k): v for k, v in attrs.items()},
        }
        with self._lock:
            self.events.append(event)

    def extend(self, events: "list[dict]") -> None:
        """Append already-finished events (e.g. from a worker process)."""
        with self._lock:
            self.events.extend(events)

    def events_copy(self) -> "list[dict]":
        """A consistent shallow copy of the finished-event log."""
        with self._lock:
            return list(self.events)

    def events_tail(self, n: int) -> "list[dict]":
        """The last ``n`` finished events (a cheap slice copy, for the
        flight recorder's bundles — no need to copy a long log)."""
        if n <= 0:
            return []
        with self._lock:
            return list(self.events[-n:])

    def reset(self) -> None:
        """Drop finished events and this thread's open-span stack."""
        with self._lock:
            self.events.clear()
        self._stack.clear()

    def write_jsonl(self, path: str) -> None:
        """One JSON object per line, in completion order."""
        events = self.events_copy()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True, default=str))
                handle.write("\n")


def read_jsonl(path: str) -> "list[dict]":
    """Load a trace file written by :meth:`Tracer.write_jsonl`."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
