"""Per-CPU performance-counter banks.

Models the Linux ``perfctr`` usage in the paper: software accumulates
the selected events per processor, reads the totals once per second and
clears the counters.  Reading is a handful of fast register accesses —
the reason the paper prefers on-chip counters over OS counters (no
system-call overhead).

Counts are accumulated in plain Python floats (one row of ``n_cpus``
accumulators per event) rather than a numpy array: the simulator's hot
loop performs dozens of scalar accumulations per tick, and a Python
``float`` add is several times cheaper than a numpy scalar indexed add
while rounding identically (both are IEEE-754 doubles).  Rows are
cleared in place so references obtained via :meth:`row` stay valid
across sampling windows.
"""

from __future__ import annotations

import numpy as np

from repro.core.events import Event


class CounterBank:
    """Accumulators for a fixed event set across ``n_cpus`` packages."""

    def __init__(self, events: "tuple[Event, ...] | list[Event]", n_cpus: int) -> None:
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if not events:
            raise ValueError("counter bank needs at least one event")
        self.events = tuple(events)
        self.n_cpus = n_cpus
        self._index = {event: i for i, event in enumerate(self.events)}
        self._rows: "list[list[float]]" = [
            [0.0] * n_cpus for _ in self.events
        ]

    def add(self, event: Event, cpu: int, count: float) -> None:
        """Accumulate ``count`` occurrences of ``event`` on ``cpu``."""
        if count < 0:
            raise ValueError(f"negative count for {event}: {count}")
        self._rows[self._index[event]][cpu] += count

    def add_all_cpus(self, event: Event, counts: "list[float] | np.ndarray") -> None:
        """Accumulate a per-CPU vector of counts at once."""
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (self.n_cpus,):
            raise ValueError(
                f"expected {self.n_cpus} per-CPU counts, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError(f"negative count for {event}")
        row = self._rows[self._index[event]]
        for cpu in range(self.n_cpus):
            row[cpu] += counts[cpu]

    def row(self, event: Event) -> "list[float]":
        """The live per-CPU accumulator row for ``event``.

        The returned list is the bank's own storage: callers on the
        simulator's fast path accumulate into it directly
        (``row[cpu] += count``), avoiding per-event method dispatch.
        The reference stays valid across :meth:`read_and_clear` because
        clearing zeroes rows in place.  Only valid for a plain
        ``CounterBank`` — multiplexed banks gate :meth:`add` and must be
        driven through it.
        """
        return self._rows[self._index[event]]

    def peek(self, event: Event) -> np.ndarray:
        """Current per-CPU totals without clearing."""
        return np.asarray(self._rows[self._index[event]], dtype=float)

    def read_and_clear(self) -> "dict[Event, np.ndarray]":
        """Counts since the last read; counters reset to zero."""
        snapshot = {}
        for event, i in self._index.items():
            row = self._rows[i]
            snapshot[event] = np.asarray(row, dtype=float)
            for cpu in range(self.n_cpus):
                row[cpu] = 0.0
        return snapshot
