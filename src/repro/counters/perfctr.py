"""Per-CPU performance-counter banks.

Models the Linux ``perfctr`` usage in the paper: software accumulates
the selected events per processor, reads the totals once per second and
clears the counters.  Reading is a handful of fast register accesses —
the reason the paper prefers on-chip counters over OS counters (no
system-call overhead).
"""

from __future__ import annotations

import numpy as np

from repro.core.events import Event


class CounterBank:
    """Accumulators for a fixed event set across ``n_cpus`` packages."""

    def __init__(self, events: "tuple[Event, ...] | list[Event]", n_cpus: int) -> None:
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if not events:
            raise ValueError("counter bank needs at least one event")
        self.events = tuple(events)
        self.n_cpus = n_cpus
        self._index = {event: i for i, event in enumerate(self.events)}
        self._counts = np.zeros((len(self.events), n_cpus), dtype=float)

    def add(self, event: Event, cpu: int, count: float) -> None:
        """Accumulate ``count`` occurrences of ``event`` on ``cpu``."""
        if count < 0:
            raise ValueError(f"negative count for {event}: {count}")
        self._counts[self._index[event], cpu] += count

    def add_all_cpus(self, event: Event, counts: "list[float] | np.ndarray") -> None:
        """Accumulate a per-CPU vector of counts at once."""
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (self.n_cpus,):
            raise ValueError(
                f"expected {self.n_cpus} per-CPU counts, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError(f"negative count for {event}")
        self._counts[self._index[event]] += counts

    def peek(self, event: Event) -> np.ndarray:
        """Current per-CPU totals without clearing."""
        return self._counts[self._index[event]].copy()

    def read_and_clear(self) -> "dict[Event, np.ndarray]":
        """Counts since the last read; counters reset to zero."""
        snapshot = {
            event: self._counts[i].copy() for event, i in self._index.items()
        }
        self._counts.fill(0.0)
        return snapshot
