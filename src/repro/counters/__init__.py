"""Performance-counter infrastructure (perfctr-like).

Per-CPU counter banks accumulate event counts; a 1 Hz sampler reads and
clears them with realistic period jitter and emits the synchronisation
pulse that lets the measurement side align power windows to counter
windows (paper Section 3.1.2/3.1.3).
"""

from repro.counters.perfctr import CounterBank
from repro.counters.sampler import CounterSampler

__all__ = ["CounterBank", "CounterSampler"]
