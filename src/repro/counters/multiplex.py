"""Counter multiplexing: more events than hardware counter slots.

Real PMUs have a fixed number of counter registers (the Pentium 4 had
18, many cores expose 4-8 programmable slots).  When a tool wants more
events than slots, drivers time-multiplex: each rotation interval a
different event group occupies the slots, and per-window counts are
extrapolated by ``window_time / observed_time``.

The paper's model needs ~8 trickle-down events simultaneously; on a
machine with fewer slots the extrapolation adds sampling error that
propagates into power estimates.  :class:`MultiplexedCounterBank` is a
drop-in :class:`~repro.counters.perfctr.CounterBank` that emulates this
behaviour, and the extension benches quantify the accuracy cost per
slot count — the practical answer to "could this run on a smaller
PMU?".

Only trickle-down (model-visible) events are multiplexed; the
simulator's ground-truth/local events are bookkeeping, not hardware
counters.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.events import Event, TRICKLE_DOWN_EVENTS
from repro.counters.perfctr import CounterBank


class MultiplexedCounterBank(CounterBank):
    """A counter bank with ``n_slots`` hardware counters, rotated.

    Args:
        events: full event list (as for CounterBank).
        n_cpus: processor count.
        n_slots: simultaneous hardware counters available.
        rotation_s: how long each event group holds the slots.
    """

    def __init__(
        self,
        events,
        n_cpus: int,
        n_slots: int,
        rotation_s: float = 0.1,
    ) -> None:
        super().__init__(events, n_cpus)
        if n_slots < 1:
            raise ValueError("need at least one counter slot")
        if rotation_s <= 0:
            raise ValueError("rotation_s must be positive")
        self.n_slots = n_slots
        self.rotation_s = rotation_s
        self._multiplexed = [e for e in self.events if e in TRICKLE_DOWN_EVENTS]
        n_groups = max(1, math.ceil(len(self._multiplexed) / n_slots))
        self._groups = [
            frozenset(self._multiplexed[i::n_groups]) for i in range(n_groups)
        ]
        self._active_group = 0
        self._rotation_elapsed = 0.0
        self._window_time = 0.0
        self._observed_time = {e: 0.0 for e in self._multiplexed}

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    @property
    def active_events(self) -> frozenset:
        """Events currently occupying the hardware slots."""
        return self._groups[self._active_group]

    def advance(self, dt_s: float) -> None:
        """One tick of wall time: account observation and maybe rotate."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        self._window_time += dt_s
        for event in self.active_events:
            self._observed_time[event] += dt_s
        self._rotation_elapsed += dt_s
        if self._rotation_elapsed >= self.rotation_s:
            self._rotation_elapsed = 0.0
            self._active_group = (self._active_group + 1) % len(self._groups)

    def add(self, event: Event, cpu: int, count: float) -> None:
        if event in self._observed_time and event not in self.active_events:
            return  # the hardware was not watching this event
        super().add(event, cpu, count)

    def add_all_cpus(self, event: Event, counts) -> None:
        if event in self._observed_time and event not in self.active_events:
            return
        super().add_all_cpus(event, counts)

    def read_and_clear(self):
        """Extrapolated counts: observed * (window / observed time)."""
        raw = super().read_and_clear()
        window = self._window_time
        for event in self._multiplexed:
            observed = self._observed_time[event]
            if observed > 0.0 and window > 0.0:
                raw[event] = raw[event] * (window / observed)
            elif window > 0.0:
                # Never scheduled during this window: report zero and
                # let the caller treat it as a dropped sample (real
                # drivers do the same).
                raw[event] = np.zeros_like(raw[event])
            self._observed_time[event] = 0.0
        self._window_time = 0.0
        return raw
