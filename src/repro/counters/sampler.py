"""The 1 Hz counter sampling loop.

The target system samples its own counters once per second; the actual
period jitters by a few milliseconds because of cache effects and
interrupt latency (which is why every model input is normalised per
cycle).  At each sampling the target writes one byte to a serial port —
the synchronisation pulse the DAQ records to align power data.  In the
simulator both sides share a clock, so the pulse is an explicit window
boundary handed to the measurement layer.
"""

from __future__ import annotations

import numpy as np

from repro.core.events import Event
from repro.core.traces import CounterTrace
from repro.counters.perfctr import CounterBank
from repro.simulator.config import MeasurementConfig


class CounterSampler:
    """Collects jittered 1 Hz windows of counter readings."""

    def __init__(
        self,
        bank: CounterBank,
        config: MeasurementConfig,
        rng: np.random.Generator,
    ) -> None:
        self.bank = bank
        self.config = config
        self._rng = rng
        self._window_start_s = 0.0
        self._next_deadline_s = self._jittered_deadline(0.0)
        self._timestamps: list[float] = []
        self._durations: list[float] = []
        self._samples: list[dict[Event, np.ndarray]] = []

    def _jittered_deadline(self, start_s: float) -> float:
        jitter = float(self._rng.normal(0.0, self.config.sample_jitter_s))
        period = max(self.config.sample_period_s + jitter, 1.0e-3)
        return start_s + period

    def disable(self) -> None:
        """Stop sampling (an external agent owns the counters).

        Used when a control loop reads the counter bank itself — two
        readers of clear-on-read counters would steal each other's
        counts.
        """
        self._next_deadline_s = float("inf")

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def last_window(
        self,
    ) -> "tuple[float, float, dict[Event, np.ndarray]] | None":
        """The most recently closed window, or None before the first.

        Returns ``(timestamp_s, duration_s, counts)`` — the same data
        the window contributed to :meth:`finish` — so a live monitor
        can estimate power from the window a sampling pulse just
        closed without waiting for the run to end.
        """
        if not self._samples:
            return None
        return self._timestamps[-1], self._durations[-1], self._samples[-1]

    def maybe_sample(self, now_s: float) -> float | None:
        """Close the window if the deadline passed; return pulse time.

        Called once per tick with the post-tick time.  Returns the
        window-end timestamp (the sync pulse) when a sample was taken,
        else None.
        """
        if now_s + 1.0e-12 < self._next_deadline_s:
            return None
        counts = self.bank.read_and_clear()
        self._timestamps.append(now_s)
        self._durations.append(now_s - self._window_start_s)
        self._samples.append(counts)
        self._window_start_s = now_s
        self._next_deadline_s = self._jittered_deadline(now_s)
        return now_s

    def finish(self) -> CounterTrace:
        """Assemble the collected windows into a CounterTrace."""
        if not self._samples:
            raise ValueError(
                "no counter samples collected; run longer than one sample period"
            )
        events = self.bank.events
        counts = {
            event: np.vstack([sample[event] for sample in self._samples])
            for event in events
        }
        return CounterTrace(
            timestamps=np.asarray(self._timestamps),
            durations=np.asarray(self._durations),
            counts=counts,
        )
