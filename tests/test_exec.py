"""Tests for the execution engine: parallel sweeps and the run cache.

The engine's contract is strict: a parallel sweep must be
**bit-identical** to the serial one (every run's RNG streams derive
only from the base seed and the workload name), and a cache hit must
return exactly the run that was stored — no warmup re-dropping, no
float drift through the JSON round trip.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentContext
from repro.core.events import Subsystem
from repro.exec import (
    RunCache,
    SweepSpec,
    default_workers,
    run_key,
    run_spec,
    sweep,
    sweep_specs,
)
from repro.simulator.config import SystemConfig, fast_config
from repro.simulator.system import Server
from repro.workloads.registry import get_workload

DURATION_S = 20.0


def _assert_runs_identical(a, b) -> None:
    assert a.workload == b.workload
    assert np.array_equal(a.counters.timestamps, b.counters.timestamps)
    assert np.array_equal(a.counters.durations, b.counters.durations)
    assert set(a.counters.events) == set(b.counters.events)
    for event in a.counters.events:
        assert np.array_equal(a.counters.per_cpu(event), b.counters.per_cpu(event))
    for subsystem in a.power.subsystems:
        assert np.array_equal(a.power.power(subsystem), b.power.power(subsystem))


class TestSweepDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        """n_workers=4 must reproduce n_workers=1 exactly."""
        names = ["idle", "gcc", "DiskLoad"]
        config = fast_config()
        serial = sweep(names, config=config, seed=7, duration_s=DURATION_S, n_workers=1)
        parallel = sweep(
            names, config=config, seed=7, duration_s=DURATION_S, n_workers=4
        )
        assert list(serial) == names == list(parallel)
        for name in names:
            _assert_runs_identical(serial[name], parallel[name])

    def test_run_spec_matches_simulate_workload(self):
        from repro.simulator.system import simulate_workload

        spec = SweepSpec(
            workload="idle", seed=3, duration_s=DURATION_S, config=fast_config()
        )
        direct = simulate_workload(
            get_workload("idle"), duration_s=DURATION_S, seed=3, config=fast_config()
        )
        _assert_runs_identical(run_spec(spec), direct)

    def test_warmup_applied_in_worker(self):
        config = fast_config()
        raw = run_spec(
            SweepSpec(workload="idle", seed=3, duration_s=DURATION_S, config=config)
        )
        warm = run_spec(
            SweepSpec(
                workload="idle",
                seed=3,
                duration_s=DURATION_S,
                config=config,
                warmup_windows=3,
            )
        )
        assert warm.n_samples == raw.n_samples - 3
        _assert_runs_identical(warm, raw.drop_warmup(3))

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4, reason="needs >=4 CPUs for a speedup to exist"
    )
    def test_parallel_sweep_is_faster(self):
        import time

        names = ["idle", "gcc", "mcf", "DiskLoad"]
        config = fast_config()
        t0 = time.perf_counter()
        sweep(names, config=config, seed=11, duration_s=DURATION_S, n_workers=1)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        sweep(names, config=config, seed=11, duration_s=DURATION_S, n_workers=4)
        parallel_s = time.perf_counter() - t0
        # Lenient bound: pool startup and pickling eat into the ideal 4x.
        assert parallel_s < serial_s / 1.3


class TestSweepFailureSemantics:
    def test_duplicate_workload_names_raise(self):
        """``dict(zip(...))`` used to collapse duplicates last-wins,
        silently dropping runs; duplicates are now a hard error."""
        with pytest.raises(ValueError, match="duplicate workload name"):
            sweep(
                ["idle", "gcc", "idle"],
                config=fast_config(),
                duration_s=DURATION_S,
                n_workers=1,
            )

    def test_unique_workload_names_unaffected(self):
        runs = sweep(
            ["idle"], config=fast_config(), duration_s=DURATION_S, n_workers=1
        )
        assert list(runs) == ["idle"]

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        assert default_workers() == 1

    def test_default_workers_bad_env_falls_back(self, monkeypatch, caplog):
        """A non-integer override used to crash with ``ValueError``
        before the sweep even started; it now warns and uses the CPU
        count."""
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "lots")
        with caplog.at_level("WARNING", logger="repro.exec.sweep"):
            assert default_workers() == (os.cpu_count() or 1)
        assert "REPRO_SWEEP_WORKERS" in caplog.text


class TestRunKey:
    def test_key_is_stable(self):
        config = fast_config()
        assert run_key("gcc", 7, 20.0, config) == run_key("gcc", 7, 20.0, config)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workload": "mcf"},
            {"seed": 8},
            {"duration_s": 21.0},
            {"pstate": 1},
            {"warmup_windows": 2},
        ],
    )
    def test_key_changes_with_any_parameter(self, kwargs):
        base = dict(
            workload="gcc",
            seed=7,
            duration_s=20.0,
            config=fast_config(),
            pstate=0,
            warmup_windows=0,
        )
        changed = {**base, **kwargs}
        assert run_key(**base) != run_key(**changed)

    def test_key_sees_deep_config_changes(self):
        """A retuned nested power constant must change the key."""
        from dataclasses import replace

        base = fast_config()
        retuned = replace(base, cpu=replace(base.cpu, uop_power_w=9.99))
        assert run_key("gcc", 7, 20.0, base) != run_key("gcc", 7, 20.0, retuned)
        # Tick length too (the old filename scheme's only config field).
        assert run_key("gcc", 7, 20.0, base) != run_key(
            "gcc", 7, 20.0, SystemConfig(tick_s=1.0e-3)
        )


class TestRunCache:
    def test_round_trip_returns_identical_run(self, tmp_path):
        cache = RunCache(str(tmp_path))
        spec = SweepSpec(
            workload="idle", seed=5, duration_s=DURATION_S, config=fast_config()
        )
        run = run_spec(spec)
        cache.store(spec.key(), run)
        loaded = cache.load(spec.key())
        assert loaded is not None
        _assert_runs_identical(run, loaded)

    def test_disabled_cache_is_inert(self):
        cache = RunCache(None)
        assert not cache.enabled
        assert cache.load("deadbeef") is None
        assert cache.store("deadbeef", None) is None  # run unused when root is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = "0" * 64
        os.makedirs(cache.root, exist_ok=True)
        with open(cache.path_for(key), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.load(key) is None
        assert cache.stats.misses == 1

    def test_stats_and_index(self, tmp_path):
        cache = RunCache(str(tmp_path))
        spec = SweepSpec(
            workload="idle", seed=5, duration_s=DURATION_S, config=fast_config()
        )
        result = sweep_specs([spec], n_workers=1, cache=cache)
        assert result.simulated == [0]
        again = sweep_specs([spec], n_workers=1, cache=cache)
        assert again.simulated == []
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1
        assert "1 hit(s)" in cache.stats.describe()
        index = cache.index()
        assert list(index.values())[0]["workload"] == "idle"
        # No torn temp files left behind.
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_atomic_store_replaces_corrupt_entry(self, tmp_path):
        cache = RunCache(str(tmp_path))
        spec = SweepSpec(
            workload="idle", seed=5, duration_s=DURATION_S, config=fast_config()
        )
        run = run_spec(spec)
        os.makedirs(cache.root, exist_ok=True)
        with open(cache.path_for(spec.key()), "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert cache.load(spec.key()) is None
        cache.store(spec.key(), run)
        loaded = cache.load(spec.key())
        assert loaded is not None
        with open(cache.path_for(spec.key()), encoding="utf-8") as handle:
            json.load(handle)  # valid JSON now


class TestExperimentContextCache:
    def test_disk_cache_round_trip_is_idempotent(self, tmp_path):
        """A cached run must load exactly as stored — the former
        implementation stored the raw run and re-dropped warmup on
        every load, so the stored and returned traces disagreed."""
        kwargs = dict(
            config=fast_config(),
            seed=9,
            duration_s=DURATION_S,
            warmup_windows=3,
            cache_dir=str(tmp_path),
        )
        first = ExperimentContext(**kwargs).run("idle")
        second_context = ExperimentContext(**kwargs)
        second = second_context.run("idle")
        assert second_context.cache.stats.hits == 1
        _assert_runs_identical(first, second)
        # The stored trace already lacks its warmup windows.
        fresh = ExperimentContext(**{**kwargs, "cache_dir": None}).run("idle")
        assert first.n_samples == fresh.n_samples
        _assert_runs_identical(first, fresh)

    def test_runs_parallel_matches_run_serial(self, tmp_path):
        names = ("idle", "gcc")
        kwargs = dict(
            config=fast_config(), seed=9, duration_s=DURATION_S, warmup_windows=3
        )
        serial_context = ExperimentContext(**kwargs, n_workers=1)
        parallel_context = ExperimentContext(**kwargs, n_workers=2)
        serial = {name: serial_context.run(name) for name in names}
        parallel = parallel_context.runs(names)
        for name in names:
            _assert_runs_identical(serial[name], parallel[name])


class TestBatchedTickEquivalence:
    def test_run_ticks_matches_single_tick_loop(self):
        """The batched hot path must be bit-identical to tick-by-tick."""
        config = fast_config()
        batched = Server(config, get_workload("SPECjbb"), seed=3)
        stepped = Server(config, get_workload("SPECjbb"), seed=3)
        energy_batched = batched.run_ticks(300)
        energy_stepped = 0.0
        for _ in range(300):
            breakdown = stepped.tick()
            energy_stepped += breakdown.total_w * config.tick_s
        assert energy_batched == energy_stepped
        assert batched.counters._rows == stepped.counters._rows
        for subsystem in Subsystem:
            assert (
                batched.energy._energy_j[subsystem]
                == stepped.energy._energy_j[subsystem]
            )
        a, b = batched._last_breakdown, stepped._last_breakdown
        assert (a.cpu_w, a.chipset_w, a.memory_w, a.io_w, a.disk_w) == (
            b.cpu_w,
            b.chipset_w,
            b.memory_w,
            b.io_w,
            b.disk_w,
        )
