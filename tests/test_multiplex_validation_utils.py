"""Tests for counter multiplexing and the validation utilities
(holdout, temporal cross-validation)."""

import numpy as np
import pytest

from repro.core.events import Event, Subsystem, TRICKLE_DOWN_EVENTS
from repro.core.training import ModelTrainer
from repro.core.validation import (
    holdout_validation,
    temporal_cross_validation,
    validate_suite,
)
from repro.counters.multiplex import MultiplexedCounterBank
from repro.simulator.system import Server
from repro.workloads.registry import get_workload
from tests.conftest import TEST_SEED


class TestMultiplexedCounterBank:
    def make(self, n_slots=4, rotation_s=0.1):
        return MultiplexedCounterBank(
            tuple(Event), 2, n_slots=n_slots, rotation_s=rotation_s
        )

    def test_group_partition_covers_all_multiplexed_events(self):
        bank = self.make(n_slots=4)
        covered = set()
        for group in bank._groups:
            assert len(group) <= 4
            covered |= group
        assert covered == {e for e in Event if e in TRICKLE_DOWN_EVENTS}

    def test_enough_slots_means_one_group(self):
        bank = self.make(n_slots=len(TRICKLE_DOWN_EVENTS))
        assert bank.n_groups == 1

    def test_inactive_events_are_dropped(self):
        bank = self.make(n_slots=2)
        inactive = next(
            e for e in TRICKLE_DOWN_EVENTS if e not in bank.active_events
        )
        bank.add(inactive, 0, 100.0)
        assert bank.peek(inactive)[0] == 0.0

    def test_active_events_are_counted(self):
        bank = self.make(n_slots=2)
        active = next(iter(bank.active_events))
        bank.add(active, 0, 100.0)
        assert bank.peek(active)[0] == 100.0

    def test_local_events_never_multiplexed(self):
        bank = self.make(n_slots=2)
        bank.add(Event.DRAM_READS, 0, 50.0)
        assert bank.peek(Event.DRAM_READS)[0] == 50.0

    def test_rotation_advances_groups(self):
        bank = self.make(n_slots=2, rotation_s=0.1)
        first = bank.active_events
        for _ in range(11):
            bank.advance(0.01)
        assert bank.active_events != first

    def test_extrapolation_recovers_steady_rates(self):
        """A constant-rate event is reconstructed exactly by the
        window/observed scaling."""
        bank = self.make(n_slots=2, rotation_s=0.05)
        event = next(iter(TRICKLE_DOWN_EVENTS & set(bank.events)))
        for _ in range(100):  # 1 s window at 10 ms ticks
            bank.advance(0.01)
            if event in bank.active_events:
                bank.add(event, 0, 10.0)
        counts = bank.read_and_clear()
        # True total would be 100 ticks * 10 = 1000.
        assert counts[event][0] == pytest.approx(1000.0, rel=0.15)

    def test_unscheduled_event_reports_zero(self):
        bank = self.make(n_slots=2, rotation_s=100.0)  # never rotates
        inactive = next(
            e for e in TRICKLE_DOWN_EVENTS if e not in bank.active_events
        )
        bank.advance(0.5)
        counts = bank.read_and_clear()
        assert counts[inactive][0] == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MultiplexedCounterBank(tuple(Event), 2, n_slots=0)
        with pytest.raises(ValueError):
            MultiplexedCounterBank(tuple(Event), 2, n_slots=2, rotation_s=0.0)
        bank = self.make()
        with pytest.raises(ValueError):
            bank.advance(0.0)

    def test_server_integration(self, config):
        bank = MultiplexedCounterBank(
            tuple(Event), config.num_packages, n_slots=4
        )
        server = Server(
            config, get_workload("gcc"), seed=TEST_SEED, counter_bank=bank
        )
        run = server.run(30.0)
        # All events present and non-degenerate despite multiplexing.
        for event in (Event.CYCLES, Event.FETCHED_UOPS, Event.BUS_TRANSACTIONS):
            assert run.counters.total(event).sum() > 0.0

    def test_mismatched_bank_rejected(self, config):
        bank = MultiplexedCounterBank(tuple(Event), 2, n_slots=4)
        with pytest.raises(ValueError, match="CPU count"):
            Server(config, get_workload("idle"), seed=1, counter_bank=bank)


class TestHoldoutValidation:
    def test_full_fraction_equals_plain_training(self, training_runs):
        trainer = ModelTrainer()
        report = holdout_validation(trainer, training_runs, 1.0)
        baseline = validate_suite(trainer.train(training_runs), training_runs)
        for workload in report.workloads:
            for subsystem in Subsystem:
                assert report.errors[workload][subsystem] == pytest.approx(
                    baseline.errors[workload][subsystem], rel=1e-9
                )

    def test_small_fraction_still_trains(self, training_runs):
        report = holdout_validation(ModelTrainer(), training_runs, 0.15)
        assert report.subsystem_average(Subsystem.IO) < 5.0

    def test_invalid_fraction_rejected(self, training_runs):
        with pytest.raises(ValueError):
            holdout_validation(ModelTrainer(), training_runs, 0.0)
        with pytest.raises(ValueError):
            holdout_validation(ModelTrainer(), training_runs, 1.5)

    def test_missing_run_is_clear_error(self, idle_run):
        with pytest.raises(ValueError, match="needs a run"):
            holdout_validation(ModelTrainer(), {"idle": idle_run}, 0.5)


class TestTemporalCrossValidation:
    def test_produces_one_report_per_fold(self, training_runs):
        reports = temporal_cross_validation(ModelTrainer(), training_runs, 3)
        assert len(reports) == 3
        for report in reports:
            assert set(report.workloads) == set(training_runs)

    def test_folds_are_stable(self, training_runs):
        reports = temporal_cross_validation(ModelTrainer(), training_runs, 3)
        overall = [report.overall_average() for report in reports]
        assert max(overall) - min(overall) < 6.0

    def test_too_few_folds_rejected(self, training_runs):
        with pytest.raises(ValueError):
            temporal_cross_validation(ModelTrainer(), training_runs, 1)
